"""Database servers: ideal and bounded-resource."""

import pytest

from repro.simdb.database import (
    DbParams,
    IdealDatabase,
    ProfiledDatabase,
    SimulatedDatabase,
)
from repro.simdb.des import Simulation
from repro.simdb.profiler import DbFunction


class TestIdealDatabase:
    def test_query_duration_equals_cost(self):
        sim = Simulation()
        db = IdealDatabase(sim)
        done = []
        db.submit(3, lambda processed, completed: done.append((sim.now, processed, completed)))
        sim.run()
        assert done == [(3.0, 3, True)]

    def test_unbounded_parallelism(self):
        sim = Simulation()
        db = IdealDatabase(sim)
        done = []
        for _ in range(50):
            db.submit(2, lambda processed, completed: done.append(sim.now))
        sim.run()
        assert all(when == 2.0 for when in done)

    def test_unit_duration_scaling(self):
        sim = Simulation()
        db = IdealDatabase(sim, unit_duration=0.5)
        done = []
        db.submit(4, lambda p, c: done.append(sim.now))
        sim.run()
        assert done == [2.0]

    def test_cancellation_at_unit_boundary(self):
        sim = Simulation()
        db = IdealDatabase(sim)
        done = []
        handle = db.submit(5, lambda processed, completed: done.append((processed, completed)))
        sim.run(until=1.5)  # one unit processed, second in flight
        handle.cancel()
        sim.run()
        assert done == [(2, False)]  # the in-flight unit still completes
        assert db.queries_cancelled == 1
        assert db.total_units == 2

    def test_cancel_after_completion_is_noop(self):
        sim = Simulation()
        db = IdealDatabase(sim)
        done = []
        handle = db.submit(1, lambda p, c: done.append(c))
        sim.run()
        handle.cancel()
        sim.run()
        assert done == [True]
        assert db.queries_cancelled == 0

    def test_gmpl_tracking(self):
        sim = Simulation()
        db = IdealDatabase(sim)
        db.submit(2, lambda p, c: None)
        db.submit(2, lambda p, c: None)
        assert db.gmpl == 2
        sim.run()
        assert db.gmpl == 0
        assert db.mean_gmpl() == pytest.approx(2.0)  # 2 active over [0, 2]

    def test_validation(self):
        sim = Simulation()
        with pytest.raises(ValueError):
            IdealDatabase(sim, unit_duration=0)
        with pytest.raises(ValueError):
            IdealDatabase(sim).submit(0, lambda p, c: None)


class TestSimulatedDatabase:
    def test_all_hits_is_pure_cpu(self):
        params = DbParams(pct_io_hit=100.0, cpu_ms=8.0)
        sim = Simulation()
        db = SimulatedDatabase(sim, params)
        done = []
        db.submit(2, lambda p, c: done.append(sim.now))
        sim.run()
        assert done == [16.0]  # 2 units × 8 ms CPU, no disk

    def test_all_misses_pay_io_delay(self):
        params = DbParams(pct_io_hit=0.0, cpu_ms=8.0, io_delay_ms=5.0)
        sim = Simulation()
        db = SimulatedDatabase(sim, params)
        done = []
        db.submit(1, lambda p, c: done.append(sim.now))
        sim.run()
        assert done == [13.0]  # 5 ms disk + 8 ms CPU

    def test_multi_page_units(self):
        params = DbParams(pct_io_hit=0.0, unit_io_cost=3, cpu_ms=8.0, io_delay_ms=5.0)
        sim = Simulation()
        db = SimulatedDatabase(sim, params)
        done = []
        db.submit(1, lambda p, c: done.append(sim.now))
        sim.run()
        assert done == [23.0]  # 3 pages × 5 ms + 8 ms CPU

    def test_cpu_contention_serializes(self):
        params = DbParams(num_cpus=1, pct_io_hit=100.0, cpu_ms=10.0)
        sim = Simulation()
        db = SimulatedDatabase(sim, params)
        done = []
        for _ in range(3):
            db.submit(1, lambda p, c: done.append(sim.now))
        sim.run()
        assert done == [10.0, 20.0, 30.0]

    def test_determinism_per_seed(self):
        def run(seed):
            sim = Simulation()
            db = SimulatedDatabase(sim, DbParams(), seed=seed)
            finish = []
            for _ in range(20):
                db.submit(2, lambda p, c: finish.append(sim.now))
            sim.run()
            # Completion times can coincide across seeds when the CPU queue
            # hides disk jitter, so also observe the buffer-miss count.
            return finish, db.disks.completions

        assert run(1) == run(1)
        miss_counts = {run(seed)[1] for seed in range(1, 6)}
        assert len(miss_counts) > 1  # different seeds draw different hits

    def test_work_accounting(self):
        sim = Simulation()
        db = SimulatedDatabase(sim, DbParams())
        db.submit(3, lambda p, c: None)
        db.submit(2, lambda p, c: None)
        sim.run()
        assert db.total_units == 5
        assert db.queries_completed == 2


class TestProfiledDatabase:
    RISING = DbFunction(((1.0, 10.0), (2.0, 20.0), (4.0, 40.0)))

    def test_single_query_runs_at_zero_load_unit_time(self):
        sim = Simulation()
        db = ProfiledDatabase(sim, self.RISING)
        done = []
        db.submit(3, lambda p, c: done.append((p, c)))
        sim.run()
        assert done == [(3, True)]
        assert sim.now == 30.0  # 3 units × Db(1) = 10 ms each
        assert db.total_units == 3

    def test_contention_slows_units(self):
        sim = Simulation()
        db = ProfiledDatabase(sim, self.RISING)
        db.submit(1, lambda p, c: None)
        db.submit(1, lambda p, c: None)
        sim.run()
        # First submit sees Gmpl 1 (10 ms); second sees Gmpl 2 (20 ms).
        assert sim.now == 20.0
        assert db.mean_gmpl() > 1.0

    def test_cancellation_at_unit_boundary(self):
        sim = Simulation()
        db = ProfiledDatabase(sim, self.RISING)
        outcome = []
        handle = db.submit(5, lambda p, c: outcome.append((p, c)))
        sim.schedule(12.0, handle.cancel)
        sim.run()
        assert outcome == [(2, False)]  # cancelled after the 2nd unit
        assert db.queries_cancelled == 1

    def test_rejects_non_callable_function(self):
        with pytest.raises(TypeError):
            ProfiledDatabase(Simulation(), db_function=3.5)

    def test_rejects_non_positive_unit_time(self):
        sim = Simulation()
        db = ProfiledDatabase(sim, lambda gmpl: 0.0)
        with pytest.raises(ValueError, match="non-positive"):
            db.submit(1, lambda p, c: None)


class TestMeanGmplWindow:
    """Windowed mean Gmpl must divide the *windowed* integral (bugfix)."""

    @staticmethod
    def _piecewise_db():
        # q1 active over [0, 4); q2 over [1, 3) → Gmpl trace:
        # [0,1): 1   [1,3): 2   [3,4): 1   [4,6]: 0
        sim = Simulation()
        db = IdealDatabase(sim)
        db.submit(4, lambda p, c: None)
        sim.run(until=1.0)
        db.submit(2, lambda p, c: None)
        sim.run(until=6.0)
        return sim, db

    def test_full_history_mean(self):
        _, db = self._piecewise_db()
        assert db.mean_gmpl() == pytest.approx(6.0 / 6.0)

    def test_window_starting_at_change_point(self):
        _, db = self._piecewise_db()
        # Integral over [2, 6] = 2·1 + 1·1 = 3; mean = 3/4, not 6/4.
        assert db.mean_gmpl(since=2.0) == pytest.approx(0.75)

    def test_window_starting_between_change_points(self):
        _, db = self._piecewise_db()
        # Integral over [3.5, 6] = 1·0.5 = 0.5; mean = 0.5/2.5.
        assert db.mean_gmpl(since=3.5) == pytest.approx(0.2)

    def test_window_in_idle_tail_is_zero(self):
        _, db = self._piecewise_db()
        assert db.mean_gmpl(since=4.5) == 0.0

    def test_window_with_active_tail(self):
        sim = Simulation()
        db = IdealDatabase(sim)
        db.submit(10, lambda p, c: None)
        sim.run(until=6.0)
        # Still active: integral over [2, 6] = 4·1.
        assert db.mean_gmpl(since=2.0) == pytest.approx(1.0)

    def test_window_before_server_start(self):
        sim = Simulation()
        sim.run(until=5.0)
        db = IdealDatabase(sim)
        db.submit(2, lambda p, c: None)
        sim.run()
        # Nothing existed before t=5; the pre-history contributes zero.
        assert db.mean_gmpl(since=1.0) == pytest.approx(2.0 / 6.0)

    def test_future_window_is_zero(self):
        _, db = self._piecewise_db()
        assert db.mean_gmpl(since=99.0) == 0.0

    def test_trim_bounds_the_trace(self):
        _, db = self._piecewise_db()
        before = db.mean_gmpl(since=3.5)
        dropped = db.trim_gmpl_history(keep_since=3.0)
        assert dropped > 0
        # Windows at or after the trim point stay exact ...
        assert db.mean_gmpl(since=3.5) == pytest.approx(before)
        assert db.mean_gmpl() != 0.0
        # ... and trimming again from the same point is a no-op.
        assert db.trim_gmpl_history(keep_since=3.0) == 0


class TestCoalescedKernel:
    RISING = DbFunction(((1.0, 10.0), (2.0, 20.0), (4.0, 40.0)))

    def test_kernel_argument_validated(self):
        with pytest.raises(ValueError, match="kernel"):
            IdealDatabase(Simulation(), kernel="speculative")

    def test_coalesced_is_the_default(self):
        assert IdealDatabase(Simulation()).kernel == "coalesced"
        assert ProfiledDatabase(Simulation(), self.RISING).kernel == "coalesced"

    def test_one_event_per_query(self):
        sim = Simulation()
        db = IdealDatabase(sim)
        for _ in range(5):
            db.submit(40, lambda p, c: None)
        sim.run()
        assert db.total_units == 200
        assert sim.events_executed == 5  # vs 200 under the per-unit kernel

    def test_per_unit_kernel_still_available(self):
        sim = Simulation()
        db = IdealDatabase(sim, kernel="per-unit")
        db.submit(40, lambda p, c: None)
        sim.run()
        assert sim.events_executed == 40

    def test_cancel_mid_unit_counts_inflight_unit(self):
        sim = Simulation()
        db = IdealDatabase(sim)
        done = []
        handle = db.submit(9, lambda p, c: done.append((sim.now, p, c)))
        sim.run(until=3.4)
        handle.cancel()
        sim.run()
        assert done == [(4.0, 4, False)]
        assert db.total_units == 4

    def test_cancel_on_last_unit_completes(self):
        sim = Simulation()
        db = IdealDatabase(sim)
        done = []
        handle = db.submit(3, lambda p, c: done.append((sim.now, p, c)))
        sim.run(until=2.5)
        handle.cancel()
        sim.run()
        assert done == [(3.0, 3, True)]
        assert db.queries_cancelled == 0

    def test_profiled_gmpl_change_reprices_future_units_only(self):
        sim = Simulation()
        db = ProfiledDatabase(sim, self.RISING)
        finish = []
        db.submit(2, lambda p, c: finish.append(sim.now))
        sim.run(until=5.0)
        db.submit(1, lambda p, c: finish.append(sim.now))
        sim.run()
        # First query: unit 1 at Db(1)=10ms ends at 10 (already started when
        # the second arrives), unit 2 starts at 10 under Gmpl 2 → 20ms.
        # Second query: one unit at Db(2)=20ms from t=5.
        assert finish == [25.0, 30.0]

    def test_fractional_unit_duration_is_bit_identical(self):
        # 0.1 is not exactly representable: the completion instant must
        # come from the same float accumulation the per-unit kernel does.
        finishes = {}
        for kernel in ("coalesced", "per-unit"):
            sim = Simulation()
            db = IdealDatabase(sim, unit_duration=0.1, kernel=kernel)
            db.submit(11, lambda p, c: None)
            sim.run()
            finishes[kernel] = sim.now
        assert finishes["coalesced"] == finishes["per-unit"]

    def test_work_conservation_under_cancellation_storm(self):
        for kernel in ("coalesced", "per-unit"):
            sim = Simulation()
            db = IdealDatabase(sim, kernel=kernel)
            handles = [db.submit(7, lambda p, c: None) for _ in range(10)]
            sim.run(until=3.5)
            for handle in handles[::2]:
                handle.cancel()
            sim.run()
            assert db.total_units == 5 * 7 + 5 * 4
            assert db.queries_cancelled == 5


class TestDbParams:
    def test_expected_unit_service(self):
        params = DbParams(pct_io_hit=50.0, cpu_ms=8.0, io_delay_ms=5.0)
        assert params.expected_unit_service_ms() == pytest.approx(10.5)

    def test_cpu_bound_throughput(self):
        params = DbParams()  # 4 CPUs × 8 ms vs 10 disks × 2.5 ms demand
        assert params.max_unit_throughput_per_ms() == pytest.approx(0.5)

    def test_disk_bound_throughput(self):
        params = DbParams(num_disks=1, pct_io_hit=0.0, io_delay_ms=20.0)
        # Disk demand 20 ms/unit on one disk = 0.05 units/ms < CPU's 0.5.
        assert params.max_unit_throughput_per_ms() == pytest.approx(0.05)

    def test_no_io_never_disk_bound(self):
        params = DbParams(pct_io_hit=100.0)
        assert params.max_unit_throughput_per_ms() == pytest.approx(0.5)
