"""Instance runtime: the evaluation phase (stability cascade, conditions)."""

import pytest

from repro import (
    Attribute,
    AttributeState,
    Comparison,
    DecisionFlowSchema,
    NULL,
    Op,
    Strategy,
    SynthesisTask,
)
from repro.core.instance import InstanceRuntime
from repro.core.conditions import UNRESOLVED
from repro.errors import ExecutionError
from tests._support import add_inputs, diamond_schema, q, syn

S = AttributeState


def make_instance(schema, code, source_values):
    instance = InstanceRuntime(schema, Strategy.parse(code), "i1", source_values, 0.0)
    instance.start()
    return instance


class TestStart:
    def test_sources_stable_and_conditions_resolved(self):
        schema, source_values = diamond_schema()
        instance = make_instance(schema, "PCE0", source_values)
        assert instance.cells["s"].state is S.VALUE
        assert instance.cells["a"].state is S.READY_ENABLED
        assert instance.cells["b"].state is S.DISABLED  # s=5 fails s>10

    def test_double_start_rejected(self):
        schema, source_values = diamond_schema()
        instance = make_instance(schema, "PCE0", source_values)
        with pytest.raises(ExecutionError, match="already started"):
            instance.start()

    def test_missing_source_rejected(self):
        schema, _ = diamond_schema()
        with pytest.raises(ExecutionError, match="missing source"):
            InstanceRuntime(schema, Strategy.parse("PCE0"), "i", {}, 0.0)

    def test_zero_input_task_ready_immediately(self):
        schema = DecisionFlowSchema(
            [Attribute("s"), Attribute("t", task=q("t", value=1), is_target=True)]
        )
        instance = make_instance(schema, "PCE0", {"s": 0})
        assert instance.cells["t"].state is S.READY_ENABLED


class TestEagerVsNaive:
    def schema_with_late_condition(self):
        """t's condition = (s > 10) AND (x > 0); s decides it at start."""
        return DecisionFlowSchema(
            [
                Attribute("s"),
                Attribute("x", task=q("x", inputs=("s",), value=5)),
                Attribute(
                    "t",
                    task=q("t", value=1),
                    condition=Comparison("s", Op.GT, 10) & Comparison("x", Op.GT, 0),
                    is_target=True,
                ),
            ]
        )

    def test_eager_resolves_from_partial_information(self):
        schema = self.schema_with_late_condition()
        instance = make_instance(schema, "PCE0", {"s": 5})
        # Eager (P): s=5 falsifies the conjunction although x is unstable.
        assert instance.cells["t"].state is S.DISABLED
        assert instance.targets_stable()

    def test_naive_waits_for_all_condition_inputs(self):
        schema = self.schema_with_late_condition()
        instance = make_instance(schema, "NCE0", {"s": 5})
        assert instance.cells["t"].enablement.name == "UNKNOWN"
        assert not instance.targets_stable()


class TestInlineSynthesis:
    def test_synthesis_chain_completes_without_queries(self):
        schema = DecisionFlowSchema(
            [
                Attribute("s"),
                Attribute("a", task=syn("a", ("s",), lambda v: v["s"] + 1)),
                Attribute("b", task=syn("b", ("a",), lambda v: v["a"] * 2)),
                Attribute("t", task=syn("t", ("b",), lambda v: v["b"] - 1), is_target=True),
            ]
        )
        instance = make_instance(schema, "PCE0", {"s": 10})
        assert instance.targets_stable()
        assert instance.cells["t"].value == 21
        assert instance.metrics.synthesis_executed == 3

    def test_speculative_synthesis_runs_before_condition(self):
        schema = DecisionFlowSchema(
            [
                Attribute("s"),
                Attribute("gate", task=q("gate", inputs=("s",), value=1)),
                Attribute(
                    "a",
                    task=syn("a", ("s",), lambda v: 7),
                    condition=Comparison("gate", Op.GT, 0),
                ),
                Attribute("t", task=q("t", inputs=("a",), value=0), is_target=True),
            ]
        )
        speculative = make_instance(schema, "PSE100", {"s": 0})
        assert speculative.cells["a"].state is S.COMPUTED
        conservative = make_instance(schema, "PCE100", {"s": 0})
        # Inputs (just the source) are stable, so the cell is READY — but a
        # conservative instance must not compute it before its condition.
        assert conservative.cells["a"].state is S.READY

    def test_disabled_synthesis_not_executed(self):
        schema = DecisionFlowSchema(
            [
                Attribute("s"),
                Attribute(
                    "a",
                    task=syn("a", ("s",), lambda v: 7),
                    condition=Comparison("s", Op.GT, 10),
                ),
                Attribute("t", task=syn("t", ("a",), add_inputs), is_target=True),
            ]
        )
        instance = make_instance(schema, "PCE0", {"s": 5})
        assert instance.cells["a"].state is S.DISABLED
        assert instance.cells["t"].value == 0  # ⊥ treated as 0 by add_inputs
        assert instance.metrics.synthesis_executed == 1


class TestQueryResults:
    def test_apply_accepted(self):
        schema, source_values = diamond_schema()
        instance = make_instance(schema, "PCE0", source_values)
        assert instance.apply_query_result("a", 1) is True
        assert instance.cells["a"].state is S.VALUE

    def test_apply_discarded_when_disabled(self):
        schema = DecisionFlowSchema(
            [
                Attribute("s"),
                Attribute(
                    "x",
                    task=q("x", inputs=(), value=9),
                    condition=Comparison("s", Op.GT, 10),
                ),
                Attribute("t", task=q("t", value=0), is_target=True),
            ]
        )
        instance = make_instance(schema, "NSE0", {"s": 5})
        # Under N the condition on x is known at start (s is stable), but
        # force the speculative-discard path by resolving after readiness.
        cell = instance.cells["x"]
        assert cell.state is S.DISABLED
        assert instance.apply_query_result("x", 9) is False
        assert cell.value is NULL

    def test_stable_values_raises_on_unstable_input(self):
        schema, source_values = diamond_schema()
        instance = make_instance(schema, "PCE0", source_values)
        with pytest.raises(ExecutionError, match="not stable"):
            instance.stable_values(("a",))

    def test_resolver(self):
        schema, source_values = diamond_schema()
        instance = make_instance(schema, "PCE0", source_values)
        assert instance.resolve_stable("s") == 5
        assert instance.resolve_stable("a") is UNRESOLVED
        assert instance.resolve_stable("b") is NULL


class TestFinalization:
    def test_finalize_counts(self):
        schema, source_values = diamond_schema()
        instance = make_instance(schema, "PCE0", source_values)
        instance.apply_query_result("a", 1)
        instance.drain()
        assert instance.targets_stable()
        instance.finalize_metrics()
        metrics = instance.metrics
        assert metrics.attrs_value == 2      # a, t
        assert metrics.attrs_disabled == 1   # b
        assert metrics.attrs_unstable == 0

    def test_state_and_value_maps(self):
        schema, source_values = diamond_schema()
        instance = make_instance(schema, "PCE0", source_values)
        states = instance.state_map()
        assert states["b"] is S.DISABLED
        values = instance.value_map()
        assert values["s"] == 5 and values["b"] is NULL
        assert "a" not in values  # unstable values are not reported
