"""Unit tests for repro.obs: registry, tracer, and the export formats.

The observability layer has two contracts the rest of the repo leans on:

* **Mergeability** — registry snapshots from independent shards combine
  like :class:`MetricsSummary.merge`: counters and histogram buckets
  add, gauges overwrite, and an ``extra_labels`` relabel keeps per-shard
  gauges (clocks, Gmpl) from summing into nonsense.
* **Zero-cost disarm** — the null instruments and :data:`NULL_OBS` are
  shared singletons whose methods do nothing, so a disarmed engine can
  hold them unconditionally.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BOUNDS,
    DEFAULT_TRACE_CAPACITY,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NULL_OBS,
    MetricsRegistry,
    NullRegistry,
    NullTracer,
    Observability,
    SpanTracer,
    export_chrome_trace,
    histogram_quantile,
)


class TestRegistry:
    def test_counters_are_get_or_create_and_label_keyed(self):
        registry = MetricsRegistry()
        a = registry.counter("hits", shard="0")
        b = registry.counter("hits", shard="0")
        c = registry.counter("hits", shard="1")
        assert a is b and a is not c
        a.inc()
        a.inc(4)
        assert a.value == 5
        assert c.value == 0

    def test_gauge_overwrites(self):
        gauge = MetricsRegistry().gauge("sim_time")
        gauge.set(10.0)
        gauge.set(3.5)
        assert gauge.value == 3.5

    def test_histogram_buckets_and_percentiles(self):
        hist = MetricsRegistry().histogram("lat", bounds=(1.0, 2.0, 4.0))
        for value in (0.5, 0.5, 1.5, 3.0, 100.0):
            hist.observe(value)
        assert hist.counts == [2, 1, 1, 1]  # last slot is overflow
        assert hist.count == 5
        assert hist.sum == pytest.approx(105.5)
        assert 0.0 < hist.percentile(0.5) <= 2.0
        # Overflow observations clamp to the top finite bound.
        assert hist.percentile(1.0) == 4.0

    def test_histogram_rejects_bound_redefinition(self):
        registry = MetricsRegistry()
        registry.histogram("lat", bounds=(1.0, 2.0))
        with pytest.raises(ValueError):
            registry.histogram("lat", bounds=(5.0, 6.0))

    def test_quantile_of_empty_histogram_is_zero(self):
        assert histogram_quantile((1.0, 2.0), [0, 0, 0], 0.99) == 0.0

    def test_snapshot_is_json_able(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.gauge("g", shard="0").set(1.5)
        registry.histogram("h").observe(0.01)
        snapshot = registry.snapshot()
        assert snapshot["enabled"] is True
        assert json.loads(json.dumps(snapshot)) == snapshot
        (hist,) = snapshot["histograms"]
        assert tuple(hist["bounds"]) == DEFAULT_LATENCY_BOUNDS
        assert len(hist["counts"]) == len(DEFAULT_LATENCY_BOUNDS) + 1

    def test_merge_adds_counters_and_buckets_overwrites_gauges(self):
        shard0, shard1, merged = (
            MetricsRegistry(),
            MetricsRegistry(),
            MetricsRegistry(),
        )
        shard0.counter("hits").inc(3)
        shard1.counter("hits").inc(4)
        shard0.histogram("lat", bounds=(1.0,)).observe(0.5)
        shard1.histogram("lat", bounds=(1.0,)).observe(2.0)
        shard0.gauge("clock").set(10.0)
        shard1.gauge("clock").set(20.0)
        merged.merge_snapshot(shard0.snapshot())
        merged.merge_snapshot(shard1.snapshot())
        assert merged.counter("hits").value == 7
        assert merged.histogram("lat", bounds=(1.0,)).counts == [1, 1]
        assert merged.gauge("clock").value == 20.0  # last write wins

    def test_merge_with_extra_labels_keeps_shards_apart(self):
        shard0, shard1, merged = (
            MetricsRegistry(),
            MetricsRegistry(),
            MetricsRegistry(),
        )
        shard0.gauge("clock").set(10.0)
        shard1.gauge("clock").set(20.0)
        merged.merge_snapshot(shard0.snapshot(), extra_labels={"shard": 0})
        merged.merge_snapshot(shard1.snapshot(), extra_labels={"shard": 1})
        assert merged.gauge("clock", shard="0").value == 10.0
        assert merged.gauge("clock", shard="1").value == 20.0

    def test_prometheus_exposition_shape(self):
        registry = MetricsRegistry()
        registry.counter("queries", shard="0").inc(2)
        registry.gauge("sim_time").set(1.5)
        hist = registry.histogram("lat", bounds=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(5.0)
        text = registry.to_prometheus()
        lines = text.splitlines()
        assert "# TYPE repro_queries counter" in lines
        assert 'repro_queries{shard="0"} 2' in lines
        assert "repro_sim_time 1.5" in lines
        # Cumulative buckets with the mandatory +Inf terminal.
        assert 'repro_lat_bucket{le="0.1"} 1' in lines
        assert 'repro_lat_bucket{le="1"} 1' in lines
        assert 'repro_lat_bucket{le="+Inf"} 2' in lines
        assert "repro_lat_count 2" in lines
        assert text.endswith("\n")


class TestNullInstruments:
    def test_null_registry_returns_shared_singletons(self):
        registry = NullRegistry()
        assert registry.counter("a") is NULL_COUNTER
        assert registry.counter("b", shard="1") is NULL_COUNTER
        assert registry.gauge("g") is NULL_GAUGE
        assert registry.histogram("h") is NULL_HISTOGRAM

    def test_null_instruments_absorb_everything(self):
        NULL_COUNTER.inc(100)
        NULL_GAUGE.set(5.0)
        NULL_HISTOGRAM.observe(1.0)
        assert NULL_COUNTER.value == 0
        snapshot = NullRegistry().snapshot()
        assert snapshot == {
            "enabled": False, "counters": [], "gauges": [], "histograms": [],
        }
        assert NullRegistry().to_prometheus() == ""

    def test_null_obs_bundle_is_disarmed(self):
        assert NULL_OBS.enabled is False
        assert isinstance(NULL_OBS.tracer, NullTracer)
        NULL_OBS.tracer.record("x", 0.0, 1.0)
        NULL_OBS.tracer.instant("y")
        assert NULL_OBS.tracer.events() == []
        assert len(NULL_OBS.tracer) == 0

    def test_armed_bundle_factory(self):
        obs = Observability.create(trace_capacity=8)
        assert obs.enabled is True
        assert isinstance(obs.registry, MetricsRegistry)
        assert isinstance(obs.tracer, SpanTracer)


class TestTracer:
    def test_span_and_instant_recording(self):
        tracer = SpanTracer()
        start = tracer.now()
        tracer.record("phase", start, start + 0.001, args={"n": 1})
        tracer.instant("marker")
        events = tracer.events()
        assert len(events) == 2
        phase, name, _ts, dur, args = events[0]
        assert (phase, name, args) == ("X", "phase", {"n": 1})
        assert dur == pytest.approx(1000.0, rel=0.01)  # microseconds
        assert events[1][0] == "i"

    def test_ring_buffer_bounds_memory(self):
        tracer = SpanTracer(capacity=4)
        for index in range(10):
            tracer.instant(f"e{index}")
        events = tracer.events()
        assert len(events) == 4
        assert events[0][1] == "e6"  # oldest entries evicted
        tracer.clear()
        assert len(tracer) == 0
        assert DEFAULT_TRACE_CAPACITY >= 4096

    def test_chrome_trace_export_shape(self):
        tracer = SpanTracer()
        t0 = tracer.now()
        tracer.record("span", t0, t0 + 0.002)
        tracer.instant("mark")
        doc = export_chrome_trace([(0, "lane", tracer.events())])
        assert json.loads(json.dumps(doc)) == doc
        events = doc["traceEvents"]
        metadata = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        assert metadata[0]["args"]["name"] == "lane"
        assert spans[0]["dur"] == pytest.approx(2000.0, rel=0.01)
        assert instants[0]["s"] == "t"
        assert all(e["pid"] == 0 for e in events)
        assert doc["metadata"]["armed"] is True

    def test_disarmed_export_is_valid_and_empty(self):
        doc = export_chrome_trace([], armed=False)
        assert doc["traceEvents"] == []
        assert doc["metadata"]["armed"] is False
