"""The python -m repro command-line interface."""

import pytest

from repro.__main__ import EXPERIMENTS, build_parser, main


class TestList:
    def test_lists_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_descriptions_shown(self, capsys):
        main(["list"])
        out = capsys.readouterr().out
        assert "Figure 5(a)" in out


class TestRun:
    def test_run_table1(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Simulation parameters" in out

    def test_run_fig5a_with_one_seed(self, capsys):
        assert main(["run", "fig5a", "--seeds", "1"]) == 0
        out = capsys.readouterr().out
        assert "Fig 5(a)" in out
        assert "PCC0" in out

    def test_out_directory_written(self, tmp_path, capsys):
        main(["run", "table1", "--out", str(tmp_path)])
        capsys.readouterr()
        written = list(tmp_path.glob("*.txt"))
        assert len(written) == 1
        assert "Simulation parameters" in written[0].read_text()

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig99"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
