"""The python -m repro command-line interface."""

import json

import pytest

from repro.__main__ import EXPERIMENTS, build_parser, main


class TestList:
    def test_lists_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_descriptions_shown(self, capsys):
        main(["list"])
        out = capsys.readouterr().out
        assert "Figure 5(a)" in out


class TestRun:
    def test_run_table1(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Simulation parameters" in out

    def test_run_fig5a_with_one_seed(self, capsys):
        assert main(["run", "fig5a", "--seeds", "1"]) == 0
        out = capsys.readouterr().out
        assert "Fig 5(a)" in out
        assert "PCC0" in out

    def test_out_directory_written(self, tmp_path, capsys):
        main(["run", "table1", "--out", str(tmp_path)])
        capsys.readouterr()
        written = list(tmp_path.glob("*.txt"))
        assert len(written) == 1
        assert "Simulation parameters" in written[0].read_text()

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig99"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestRunJson:
    def test_json_output_parses_and_mirrors_table(self, capsys):
        assert main(["run", "table1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["figure_id"] == "Table 1"
        assert payload["headers"] == ["Parameter", "Range", "Description"]
        assert any(row[0] == "nb_rows" for row in payload["rows"])
        assert payload["records"][0]["Parameter"] == payload["rows"][0][0]
        assert payload["notes"]

    def test_json_out_directory_written(self, tmp_path, capsys):
        main(["run", "table1", "--out", str(tmp_path), "--json"])
        capsys.readouterr()
        written = list(tmp_path.glob("*.json"))
        assert len(written) == 1
        assert json.loads(written[0].read_text())["figure_id"] == "Table 1"

    def test_json_experiment_rows_numeric(self, capsys):
        assert main(["run", "fig5a", "--seeds", "1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "PCC0" in payload["headers"]
        assert all(isinstance(row[0], int) for row in payload["rows"])


class TestSimulate:
    def test_closed_loop_text_output(self, capsys):
        assert main(
            ["simulate", "--code", "PSE80", "--nb-nodes", "16", "--instances", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "PSE80" in out and "ideal" in out
        assert "mean Work" in out

    def test_open_stream_json_output(self, capsys):
        assert main(
            [
                "simulate",
                "--code", "PCE100",
                "--backend", "bounded",
                "--nb-nodes", "16",
                "--instances", "10",
                "--rate", "20",
                "--json",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["backend"] == "bounded"
        assert payload["time_unit"] == "ms"
        assert payload["instances"] == 10
        assert payload["mean_work"] > 0
        assert payload["mode"].startswith("open")

    def test_share_and_drain_flags_accepted(self, capsys):
        assert main(
            [
                "simulate",
                "--nb-nodes", "12",
                "--instances", "3",
                "--concurrency", "2",
                "--share",
                "--halt", "drain",
                "--json",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["instances"] == 3
        assert payload["mode"] == "closed x2"

    def test_bad_backend_reported(self):
        with pytest.raises(ValueError, match="unknown backend"):
            main(["simulate", "--backend", "quantum", "--instances", "1"])

    def test_seed_changes_bounded_results(self, capsys):
        def run_with_seed(seed):
            main(
                [
                    "simulate",
                    "--backend", "bounded",
                    "--nb-nodes", "12",
                    "--instances", "5",
                    "--seed", str(seed),
                    "--json",
                ]
            )
            return json.loads(capsys.readouterr().out)

        assert run_with_seed(0) == run_with_seed(0)  # deterministic
        assert run_with_seed(0)["mean_elapsed"] != run_with_seed(9)["mean_elapsed"]

    def test_sharded_simulate_matches_plain(self, capsys):
        def run(extra):
            assert main(
                [
                    "simulate",
                    "--code", "PSE80",
                    "--nb-nodes", "16",
                    "--instances", "8",
                    "--json",
                    *extra,
                ]
            ) == 0
            return json.loads(capsys.readouterr().out)

        plain = run([])
        sharded = run(["--shards", "2"])
        assert sharded["shards"] == 2 and sharded["executor"] == "serial"
        assert "2 shards" in sharded["mode"]
        # On the ideal backend partitioning never changes results.
        for key in ("instances", "mean_work", "mean_elapsed", "total_work"):
            assert sharded[key] == plain[key], key

    def test_process_executor_flag_accepted(self, capsys):
        assert main(
            [
                "simulate",
                "--code", "PCE0",
                "--nb-nodes", "12",
                "--instances", "4",
                "--shards", "2",
                "--executor", "process",
                "--json",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["executor"] == "process"
        assert payload["instances"] == 4
        assert payload["total_work"] > 0


class TestSimulateDispatchAndCache:
    def _run(self, capsys, extra):
        assert main(
            [
                "simulate",
                "--nb-nodes", "12",
                "--instances", "6",
                "--concurrency", "3",
                "--json",
                *extra,
            ]
        ) == 0
        return json.loads(capsys.readouterr().out)

    def test_pooled_dispatch_is_invisible_in_results(self, capsys):
        plain = self._run(capsys, [])
        pooled = self._run(capsys, ["--dispatch", "pooled"])
        assert pooled["dispatch"] == "pooled"
        assert plain["dispatch"] == "per-event"
        # Identical workload, identical outcome numbers.
        for key in ("instances", "mean_work", "mean_elapsed", "total_work", "sim_time"):
            assert pooled[key] == plain[key], key

    def test_query_cache_counters_in_json(self, capsys):
        payload = self._run(capsys, ["--dispatch", "pooled", "--query-cache"])
        assert payload["query_cache"] is True
        assert payload["query_cache_misses"] > 0
        # A closed loop over one source valuation shares aggressively.
        assert payload["query_cache_hits"] + payload["query_cache_coalesced"] > 0

    def test_l2_counters_and_placement_in_sharded_json(self, capsys):
        payload = self._run(
            capsys,
            ["--query-cache", "--shards", "2", "--placement", "least-loaded"],
        )
        assert payload["placement"] == "least-loaded"
        assert "least-loaded" in payload["mode"]
        # Single-round CLI runs never observe the tier (commit is at
        # round boundaries), but the counters are always reported.
        assert payload["query_cache_l2_hits"] == 0
        assert payload["query_cache_l2_misses"] >= 0
        assert payload["query_cache_l2_promotions"] >= 0

    def test_query_cache_text_summary_line(self, capsys):
        assert main(
            [
                "simulate",
                "--nb-nodes", "12",
                "--instances", "4",
                "--query-cache",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "query cache:" in out


class TestServeParser:
    def test_serve_flags_parse(self):
        args = build_parser().parse_args(
            [
                "serve",
                "--port", "0",
                "--code", "PSE80",
                "--db", "runs.sqlite",
                "--high-water", "32",
                "--ticks-per-second", "500",
                "--dispatch", "pooled",
                "--query-cache",
            ]
        )
        assert args.command == "serve"
        assert args.port == 0
        assert str(args.db) == "runs.sqlite"
        assert args.high_water == 32
        assert args.ticks_per_second == 500.0
        assert args.dispatch == "pooled"
        assert args.query_cache is True

    def test_serve_rejects_unknown_executor(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--executor", "quantum"])


class TestServe:
    @staticmethod
    def _interrupt_serve_forever(monkeypatch):
        """Make serve_forever raise SIGINT's KeyboardInterrupt immediately.

        The real serve_forever's finally-block marks the server as shut
        down (that is what makes the later server.shutdown() in
        run_serve's cleanup safe); the fake must do the same or the
        cleanup would block forever.
        """
        from repro.server.http import DecisionServer

        def fake_serve_forever(self, poll_interval=0.5):
            self._BaseServer__is_shut_down.set()
            raise KeyboardInterrupt

        monkeypatch.setattr(DecisionServer, "serve_forever", fake_serve_forever)

    def test_sigint_exits_130_after_graceful_shutdown(
        self, monkeypatch, capsys
    ):
        self._interrupt_serve_forever(monkeypatch)
        code = main(["serve", "--port", "0", "--nb-nodes", "12"])
        captured = capsys.readouterr()
        assert code == 130
        assert "interrupted" in captured.err
        assert "serving" in captured.out  # banner printed before the loop
        assert "shut down cleanly" in captured.out  # cleanup still ran

    def test_json_banner_and_shutdown_report(self, monkeypatch, capsys, tmp_path):
        self._interrupt_serve_forever(monkeypatch)
        db = tmp_path / "runs.sqlite"
        code = main(
            ["serve", "--port", "0", "--nb-nodes", "12", "--db", str(db), "--json"]
        )
        assert code == 130
        lines = capsys.readouterr().out.strip().splitlines()
        banner = json.loads(lines[0])
        closing = json.loads(lines[1])
        assert banner["db"] == str(db)
        assert banner["url"].startswith("http://127.0.0.1:")
        assert len(banner["config_hash"]) == 16
        assert closing["shutdown"]["accepted"] == 0

    def test_serve_runs_on_the_process_executor(self, monkeypatch, capsys):
        # The one-shot process executor used to be refused here; the
        # persistent-worker fleet serves an open system directly.
        self._interrupt_serve_forever(monkeypatch)
        code = main(
            [
                "serve",
                "--port", "0",
                "--nb-nodes", "12",
                "--shards", "2",
                "--executor", "process",
                "--json",
            ]
        )
        assert code == 130
        banner = json.loads(capsys.readouterr().out.strip().splitlines()[0])
        assert banner["shards"] == 2
        assert banner["executor"] == "process"
        assert banner["placement"] == "hash"


class TestJsonErrorPaths:
    def test_json_mode_wraps_errors_as_json_and_exits_1(self, capsys):
        code = main(
            ["simulate", "--backend", "quantum", "--instances", "1", "--json"]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["error"]["type"] == "ValueError"
        assert "unknown backend" in payload["error"]["message"]

    def test_serve_json_mode_wraps_errors_too(self, capsys):
        code = main(
            ["serve", "--port", "0", "--backend", "quantum", "--json"]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["error"]["type"] == "ValueError"

    def test_without_json_errors_still_raise(self):
        # The legacy contract: plain CLI failures surface the traceback.
        with pytest.raises(ValueError, match="unknown backend"):
            main(["simulate", "--backend", "quantum", "--instances", "1"])


class TestSimulateObservability:
    BASE = ["simulate", "--code", "PSE80", "--nb-nodes", "16", "--instances", "4"]

    def test_json_reports_pooled_dispatch_counters(self, capsys):
        assert main([*self.BASE, "--dispatch", "pooled", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["pooled_batches"] > 0
        assert payload["pooled_events"] >= payload["pooled_batches"]

    def test_plain_dispatch_reports_zero_pooled_counters(self, capsys):
        assert main([*self.BASE, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["pooled_batches"] == 0
        assert payload["pooled_events"] == 0
        assert payload["observe"] is False
        assert "observability" not in payload

    def test_observe_adds_registry_snapshot(self, capsys):
        assert main([*self.BASE, "--observe", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["observe"] is True
        snapshot = payload["observability"]
        assert snapshot["enabled"] is True
        counters = {
            (c["name"], tuple(sorted(c["labels"].items()))): c["value"]
            for c in snapshot["counters"]
        }
        launched = sum(
            value for (name, _), value in counters.items()
            if name == "engine_queries_launched"
        )
        assert launched > 0

    def test_observe_does_not_change_results(self, capsys):
        def run(extra):
            assert main([*self.BASE, "--seed", "3", "--json", *extra]) == 0
            return json.loads(capsys.readouterr().out)

        plain = run([])
        observed = run(["--observe"])
        for key in ("instances", "mean_work", "mean_elapsed", "total_work"):
            assert observed[key] == plain[key], key

    def test_trace_writes_loadable_chrome_trace(self, tmp_path, capsys):
        out = tmp_path / "flight.json"
        assert main([*self.BASE, "--trace", str(out), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        # --trace implies --observe.
        assert payload["observe"] is True
        assert payload["trace"]["path"] == str(out)
        assert payload["trace"]["events"] > 0
        doc = json.loads(out.read_text())
        assert len(doc["traceEvents"]) == payload["trace"]["events"]
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert "engine.round" in names
        assert "query" in names
        assert doc["metadata"]["armed"] is True

    def test_trace_text_mode_mentions_the_path(self, tmp_path, capsys):
        out = tmp_path / "flight.json"
        assert main([*self.BASE, "--trace", str(out)]) == 0
        text = capsys.readouterr().out
        assert str(out) in text
        assert out.exists()
