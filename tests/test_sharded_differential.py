"""Differential harness: the sharded runtime vs a plain DecisionService.

The :class:`~repro.runtime.ShardedDecisionService` claims the
``DecisionService`` facade with hash-partitioned execution.  This suite
pins the claim down in three rings:

* **shards=1 is the service, bit for bit** — every backend, both
  engines, sharing and concurrency included: identical value maps, every
  metrics counter, database totals, and the exact event sequence.
* **Partitioning is invisible when instances don't interact** — on the
  ideal backend (unbounded resources) under full overlap, and on the
  ideal/profiled backends with non-overlapping arrivals: shards ∈ {2, 4}
  produce identical per-instance results and merged database totals,
  with the event stream equal as a multiset.
* **On a contended stochastic backend only values are invariant** — the
  bounded database draws per-replica service times, so response times
  legitimately differ across partitionings, but decision outcomes must
  not.

Result sharing is deliberately per-shard (shards share nothing), so the
cross-shard rings run with sharing off; the shards=1 ring keeps it on.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import fields

import pytest

from repro.api import DecisionService, ExecutionConfig
from repro.api.events import InstanceCompleteEvent, LaunchEvent, QueryDoneEvent
from repro.core.metrics import InstanceMetrics
from repro.runtime import ShardedDecisionService

from tests._support import backend_options, scenario_pattern

METRIC_FIELDS = tuple(f.name for f in fields(InstanceMetrics))

#: Arrival gap guaranteeing no overlap on any backend (ideal units or ms).
NO_OVERLAP = 1.0e6

ENGINES = ("reference", "batched")


def build_config(
    code: str,
    backend: str,
    engine: str,
    seed: int,
    *,
    shards: int = 1,
    share: bool = False,
    failure_prob: float = 0.0,
    dispatch: str = "per-event",
    query_cache: bool = False,
    cohorts: bool = False,
) -> ExecutionConfig:
    return ExecutionConfig.from_code(
        code,
        backend=backend,
        engine=engine,
        share_results=share,
        backend_options=backend_options(backend, seed, failure_prob),
        shards=shards,
        dispatch=dispatch,
        query_cache=query_cache,
        cohorts=cohorts,
    )


def project_event(event) -> tuple:
    """A hashable, comparable projection of one typed service event."""
    if isinstance(event, LaunchEvent):
        return ("launch", event.time, event.instance_id, event.attribute,
                event.speculative, event.shared)
    if isinstance(event, QueryDoneEvent):
        return ("done", event.time, event.instance_id, event.attribute,
                event.units, event.completed)
    if isinstance(event, InstanceCompleteEvent):
        return ("complete", event.time, event.instance_id)
    raise AssertionError(f"unexpected event {event!r}")


def run_plain(pattern, config: ExecutionConfig, arrivals) -> dict:
    service = DecisionService(pattern.schema, config.replace(shards=1))
    log = service.attach_log()
    service.submit_stream(arrivals, values=pattern.source_values)
    database = service.database
    return {
        "values": [
            (h.instance_id, h.done,
             tuple(sorted((n, repr(v)) for n, v in h.instance.value_map().items())))
            for h in service.handles
        ],
        "metrics": [
            tuple(getattr(h.metrics, name) for name in METRIC_FIELDS)
            for h in service.handles
        ],
        "totals": (
            database.total_units,
            database.queries_completed,
            database.queries_cancelled,
            database.queries_failed,
        ),
        "events": [project_event(e) for e in log.events],
        "summary": service.summary(),
    }


def run_sharded(pattern, config: ExecutionConfig, arrivals) -> dict:
    service = ShardedDecisionService(pattern.schema, config)
    log = service.attach_log()
    service.submit_stream(arrivals, values=pattern.source_values)
    stats = service.stats()
    assert len(stats) == config.shards
    return {
        "values": [
            (h.instance_id, h.done,
             tuple(sorted((n, repr(v)) for n, v in h.value_map().items())))
            for h in service.handles
        ],
        "metrics": [
            tuple(getattr(h.metrics, name) for name in METRIC_FIELDS)
            for h in service.handles
        ],
        "totals": (
            sum(s.total_units for s in stats),
            sum(s.queries_completed for s in stats),
            sum(s.queries_cancelled for s in stats),
            sum(s.queries_failed for s in stats),
        ),
        "events": [project_event(e) for e in log.events],
        "summary": service.summary(),
        "observability": service.observability(),
        "dispatch": service.dispatch_stats(),
    }


def assert_summaries_close(sharded, plain, exact: bool) -> None:
    assert sharded.count == plain.count
    assert sharded.total_work == plain.total_work
    for name in ("mean_work", "std_work", "mean_elapsed", "std_elapsed",
                 "mean_speculative_wasted_units", "mean_unneeded_detected",
                 "mean_queries_launched"):
        if exact:
            assert getattr(sharded, name) == getattr(plain, name), name
        else:
            assert getattr(sharded, name) == pytest.approx(getattr(plain, name)), name


# -- ring 1: one shard is the plain service, bit for bit -----------------------


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("backend", ["ideal", "profiled", "bounded"])
@pytest.mark.parametrize("code,share", [("PSE50", True), ("PSE100", False)])
def test_single_shard_is_bit_identical(backend, engine, code, share):
    seed = 11
    pattern = scenario_pattern(seed)
    config = build_config(code, backend, engine, seed, shards=1, share=share)
    arrivals = [index * 2.0 for index in range(5)]
    plain = run_plain(pattern, config, arrivals)
    sharded = run_sharded(pattern, config, arrivals)
    assert sharded["values"] == plain["values"]
    assert sharded["metrics"] == plain["metrics"]
    assert sharded["totals"] == plain["totals"]
    assert sharded["events"] == plain["events"]  # exact sequence, same clock
    assert_summaries_close(sharded["summary"], plain["summary"], exact=True)


# -- ring 2: partitioning is invisible without database coupling ---------------


@pytest.mark.parametrize("seed", [0, 3])
@pytest.mark.parametrize("shards", [2, 4])
@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize(
    "backend,spacing,code",
    [
        ("ideal", 0.0, "PSE100"),        # full overlap: no contention coupling
        ("ideal", 2.0, "PSE50"),
        ("ideal", NO_OVERLAP, "PCE0"),
        ("profiled", NO_OVERLAP, "PSE50"),   # Gmpl-priced, so no overlap
        ("profiled", NO_OVERLAP, "PSE100"),
    ],
)
def test_sharded_matches_single_when_uncoupled(backend, spacing, code, engine, shards, seed):
    pattern = scenario_pattern(seed)
    config = build_config(code, backend, engine, seed, shards=shards)
    arrivals = [index * spacing for index in range(6)]
    plain = run_plain(pattern, config, arrivals)
    sharded = run_sharded(pattern, config, arrivals)
    assert sharded["values"] == plain["values"]
    assert sharded["metrics"] == plain["metrics"]
    assert sharded["totals"] == plain["totals"]
    # Shard clocks are independent: global order is conventional, the
    # event population is not.
    assert Counter(sharded["events"]) == Counter(plain["events"])
    assert_summaries_close(sharded["summary"], plain["summary"], exact=False)


# -- ring 3: stochastic contention varies times, never decisions ---------------


@pytest.mark.parametrize("shards", [2, 4])
@pytest.mark.parametrize("engine", ENGINES)
def test_bounded_backend_values_invariant_under_sharding(engine, shards):
    seed = 5
    pattern = scenario_pattern(seed, nb_nodes=16)
    config = build_config("PCE0", "bounded", engine, seed, shards=shards)
    arrivals = [index * NO_OVERLAP for index in range(4)]
    plain = run_plain(pattern, config, arrivals)
    sharded = run_sharded(pattern, config, arrivals)
    assert sharded["values"] == plain["values"]
    assert sharded["summary"].count == plain["summary"].count


# -- ring 4: pooled dispatch (× query cache) is invisible at any shard count ---


@pytest.mark.parametrize("query_cache", [False, True], ids=["nocache", "cache"])
@pytest.mark.parametrize("shards", [1, 4])
@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("backend", ["ideal", "profiled", "bounded"])
def test_pooled_dispatch_invisible_at_any_shard_count(
    backend, engine, shards, query_cache
):
    """Same shard count, per-event vs pooled drain (cache on/off): every
    shard's calendar must produce the identical trace — values, all
    metrics counters, database totals, and the exact event sequence
    (shard clocks are shared between the two runs, so even the merged
    global order must match event for event)."""
    seed = 7
    pattern = scenario_pattern(seed, nb_nodes=16 if backend == "bounded" else 24)
    arrivals = [index * 1.5 for index in range(6)]
    per_event = run_sharded(
        pattern,
        build_config(
            "PSE50", backend, engine, seed, shards=shards, query_cache=query_cache
        ),
        arrivals,
    )
    pooled = run_sharded(
        pattern,
        build_config(
            "PSE50", backend, engine, seed, shards=shards,
            dispatch="pooled", query_cache=query_cache,
        ),
        arrivals,
    )
    assert pooled["values"] == per_event["values"]
    assert pooled["metrics"] == per_event["metrics"]
    assert pooled["totals"] == per_event["totals"]
    assert pooled["events"] == per_event["events"]
    assert_summaries_close(pooled["summary"], per_event["summary"], exact=True)
    assert pooled["summary"].query_cache_misses == per_event["summary"].query_cache_misses
    assert pooled["summary"].query_cache_hits == per_event["summary"].query_cache_hits
    assert (
        pooled["summary"].query_cache_coalesced
        == per_event["summary"].query_cache_coalesced
    )


# -- ring 5: cohort execution is invisible at any shard count ------------------


@pytest.mark.parametrize("query_cache", [False, True], ids=["nocache", "cache"])
@pytest.mark.parametrize("shards", [1, 4])
@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("backend", ["ideal", "profiled", "bounded"])
def test_cohorts_invisible_at_any_shard_count(backend, engine, shards, query_cache):
    """Same shard count, cohorts off vs on (cache on/off, both engines,
    every backend): each shard's cohort grouping must reproduce the
    identical trace — values, all metrics counters, database totals, and
    the exact event sequence — while the merged summary surfaces the
    hit/split totals."""
    seed = 9
    pattern = scenario_pattern(seed, nb_nodes=16 if backend == "bounded" else 24)
    # Same-instant bursts (the cohort case) mixed with spaced arrivals.
    arrivals = [0.0, 0.0, 0.0, 1.5, 1.5, 3.0]
    individual = run_sharded(
        pattern,
        build_config(
            "PSE100", backend, engine, seed, shards=shards,
            dispatch="pooled", query_cache=query_cache,
        ),
        arrivals,
    )
    cohorted = run_sharded(
        pattern,
        build_config(
            "PSE100", backend, engine, seed, shards=shards,
            dispatch="pooled", query_cache=query_cache, cohorts=True,
        ),
        arrivals,
    )
    assert cohorted["values"] == individual["values"]
    assert cohorted["metrics"] == individual["metrics"]
    assert cohorted["totals"] == individual["totals"]
    assert cohorted["events"] == individual["events"]
    assert_summaries_close(cohorted["summary"], individual["summary"], exact=True)
    assert individual["summary"].cohort_hits == 0
    assert individual["summary"].cohort_splits == 0
    if engine == "batched" and shards == 1:
        # All three t=0 arrivals land in one shard: the burst must
        # actually cohort, so the equality above isn't vacuous.
        assert cohorted["summary"].cohort_hits > 0
    if engine == "reference":
        assert cohorted["summary"].cohort_hits == 0


@pytest.mark.parametrize("executor", ["serial", "process"])
def test_cohort_config_survives_executors(executor):
    """cohorts travels to shard workers; hit/split counters merge back
    summed (never averaged) across shards."""
    pattern = scenario_pattern(0)
    config = build_config(
        "PSE100", "ideal", "batched", 0,
        shards=2, dispatch="pooled", query_cache=True, cohorts=True,
    ).replace(executor=executor)
    service = ShardedDecisionService(pattern.schema, config)
    for _ in range(8):
        service.submit(pattern.source_values)
    service.run()
    summary = service.summary()
    assert summary.count == 8
    # Every shard saw a same-instant burst of one valuation: all six
    # non-representative instances must be cohort hits across the two
    # shards combined, identically on both executors.
    assert summary.cohort_hits == 6
    assert summary.cohort_splits == 0
    serial = ShardedDecisionService(pattern.schema, config.replace(executor="serial"))
    for _ in range(8):
        serial.submit(pattern.source_values)
    serial.run()
    assert serial.summary() == summary


@pytest.mark.parametrize("executor", ["serial", "process"])
def test_pooled_cache_config_survives_executors(executor):
    """dispatch/query_cache travel to shard workers; counters merge back."""
    pattern = scenario_pattern(0)
    config = build_config(
        "PSE100", "ideal", "batched", 0,
        shards=2, dispatch="pooled", query_cache=True,
    ).replace(executor=executor)
    service = ShardedDecisionService(pattern.schema, config)
    for _ in range(8):
        service.submit(pattern.source_values)
    service.run()
    summary = service.summary()
    assert summary.count == 8
    # Every shard saw repeats of the same source valuation, so the cache
    # must have removed db work on both executors identically.
    assert summary.query_cache_misses > 0
    assert summary.query_cache_hits + summary.query_cache_coalesced > 0
    serial = ShardedDecisionService(
        pattern.schema, config.replace(executor="serial")
    )
    for _ in range(8):
        serial.submit(pattern.source_values)
    serial.run()
    assert serial.summary() == summary


@pytest.mark.parametrize("shards", [1, 4])
@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("backend", ["ideal", "profiled", "bounded"])
def test_armed_observability_invisible_at_any_shard_count(backend, engine, shards):
    """observe=True (tracer + registry armed in every shard) must not
    perturb execution: values, every metrics counter, database totals,
    and the exact merged event sequence match the disarmed run."""
    seed = 7
    pattern = scenario_pattern(seed, nb_nodes=16 if backend == "bounded" else 24)
    arrivals = [index * 1.5 for index in range(6)]
    config = build_config(
        "PSE50", backend, engine, seed,
        shards=shards, dispatch="pooled", query_cache=True,
    )
    disarmed = run_sharded(pattern, config, arrivals)
    armed = run_sharded(pattern, config.replace(observe=True), arrivals)
    assert armed["values"] == disarmed["values"]
    assert armed["metrics"] == disarmed["metrics"]
    assert armed["totals"] == disarmed["totals"]
    assert armed["events"] == disarmed["events"]
    assert_summaries_close(armed["summary"], disarmed["summary"], exact=True)
    assert armed["dispatch"] == disarmed["dispatch"]
    # The disarmed run reports the stub; the armed run has real content
    # with every instrument carrying its shard label.
    assert disarmed["observability"] == {
        "enabled": False, "counters": [], "gauges": [], "histograms": [],
    }
    snapshot = armed["observability"]
    assert snapshot["enabled"] is True
    assert snapshot["counters"]
    assert all("shard" in c["labels"] for c in snapshot["counters"])
    rounds = sum(
        c["value"] for c in snapshot["counters"]
        if c["name"] == "engine_scheduling_rounds"
    )
    assert rounds > 0


@pytest.mark.parametrize("executor", ["serial", "process"])
def test_observability_merges_across_executors(executor):
    """observe travels to shard workers; registry snapshots and trace
    events ship back in the outcome and merge shard-labeled, identically
    on both executors."""
    pattern = scenario_pattern(0)
    config = build_config(
        "PSE100", "ideal", "batched", 0,
        shards=2, dispatch="pooled", query_cache=True,
    ).replace(executor=executor, observe=True)
    service = ShardedDecisionService(pattern.schema, config)
    for _ in range(8):
        service.submit(pattern.source_values)
    service.run()
    snapshot = service.observability()
    assert snapshot["enabled"] is True
    shards_seen = {c["labels"]["shard"] for c in snapshot["counters"]}
    assert shards_seen == {"0", "1"}
    trace = service.chrome_trace()
    assert trace["metadata"]["armed"] is True
    span_pids = {e["pid"] for e in trace["traceEvents"] if e["ph"] == "X"}
    assert span_pids == {0, 1}
    assert service.dispatch_stats()["pooled_batches"] > 0


def test_multiple_shards_actually_used():
    """The CRC routing genuinely spreads a population across shards."""
    pattern = scenario_pattern(0)
    config = build_config("PCE0", "ideal", "batched", 0, shards=4)
    service = ShardedDecisionService(pattern.schema, config)
    handles = [service.submit(pattern.source_values) for _ in range(32)]
    service.run()
    assert len({h.shard for h in handles}) == 4
    assert all(h.done for h in handles)


# -- ring 6: persistent workers run multi-round, and are the serial executor ---


def plain_backend_options(backend: str, seed: int) -> dict:
    """Backend options that survive ``core.serialize`` to the workers.

    Persistent workers receive their config as plain data, so the
    profiled backend profiles its Db function on demand (seeded, hence
    identical in every shard and on both executors) instead of taking
    the suite's prebuilt :data:`RISING_DB` object.
    """
    if backend == "profiled":
        return {"seed": seed, "completions_per_level": 120, "warmup": 40}
    return {"seed": seed, "failure_prob": 0.0}


def run_rounds(pattern, config: ExecutionConfig, executor: str, batches) -> dict:
    """Drive several submit→run rounds on one service; trace everything."""
    service = ShardedDecisionService(
        pattern.schema, config.replace(executor=executor)
    )
    log = service.attach_log()
    per_round = []
    for arrivals in batches:
        service.submit_stream(arrivals, values=pattern.source_values)
        summary = service.summary()
        per_round.append(
            (service.now, summary.count, summary.query_cache_l2_hits)
        )
    stats = service.stats()
    trace = {
        "per_round": per_round,
        "values": [
            (h.instance_id, h.done,
             tuple(sorted((n, repr(v)) for n, v in h.value_map().items())))
            for h in service.handles
        ],
        "metrics": [
            tuple(getattr(h.metrics, name) for name in METRIC_FIELDS)
            for h in service.handles
        ],
        "totals": (
            sum(s.total_units for s in stats),
            sum(s.queries_completed for s in stats),
            sum(s.queries_cancelled for s in stats),
            sum(s.queries_failed for s in stats),
        ),
        "events": [project_event(e) for e in log.events],
        "summary": service.summary(),
        "health": service.worker_health()["alive"],
    }
    service.close()
    return trace


@pytest.mark.parametrize("cohorts", [False, True], ids=["individual", "cohorted"])
@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("backend", ["ideal", "profiled", "bounded"])
def test_persistent_multi_round_matches_serial(backend, engine, cohorts):
    """Three incremental rounds on one worker fleet — L2 tier armed —
    reproduce the serial executor's trace bit for bit: values, every
    metrics counter (L1 and L2 cache counters included via the summary),
    database totals, and the merged event stream."""
    seed = 13
    pattern = scenario_pattern(seed, nb_nodes=16 if backend == "bounded" else 24)
    code = "PSE100" if cohorts else "PSE50"
    config = build_config(
        code, backend, engine, seed, shards=2,
        dispatch="pooled", query_cache=True, cohorts=cohorts,
    ).replace(backend_options=plain_backend_options(backend, seed))
    batches = [
        [0.0, 0.0, 0.0, 1.5],  # a same-instant burst (the cohort case)
        [NO_OVERLAP, NO_OVERLAP, NO_OVERLAP + 1.5],
        [2 * NO_OVERLAP, 2 * NO_OVERLAP],
    ]
    serial = run_rounds(pattern, config, "serial", batches)
    process = run_rounds(pattern, config, "process", batches)
    assert process["values"] == serial["values"]
    assert process["metrics"] == serial["metrics"]
    assert process["totals"] == serial["totals"]
    assert Counter(process["events"]) == Counter(serial["events"])
    assert process["per_round"] == serial["per_round"]
    assert process["summary"] == serial["summary"]
    assert serial["health"] and process["health"]
    assert serial["summary"].count == 9


def _pin_to_shard(shard: int, shards: int, prefix: str) -> str:
    from repro.runtime import shard_of

    for index in range(10_000):
        candidate = f"{prefix}-{index}"
        if shard_of(candidate, shards) == shard:
            return candidate
    raise AssertionError("no id found")  # pragma: no cover


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("backend", ["ideal", "profiled"])
def test_cross_shard_l2_reuse_matches_serial(backend, engine):
    """A population whose rounds alternate shards — each round's shard
    has a cold L1, so reuse can only cross the shard split through the
    L2 tier — produces real cross-shard hits, identically on both
    executors."""
    seed = 17
    pattern = scenario_pattern(seed)
    config = build_config(
        "PSE50", backend, engine, seed, shards=2, query_cache=True
    ).replace(backend_options=plain_backend_options(backend, seed))

    def drive(executor):
        service = ShardedDecisionService(
            pattern.schema, config.replace(executor=executor)
        )
        for round_index in range(3):
            for index in range(6):
                service.submit(
                    pattern.source_values,
                    instance_id=_pin_to_shard(
                        round_index % 2, 2, f"r{round_index}-{index}"
                    ),
                )
            service.run()
        trace = {
            "values": [
                (h.instance_id,
                 tuple(sorted((n, repr(v)) for n, v in h.value_map().items())))
                for h in service.handles
            ],
            "summary": service.summary(),
        }
        service.close()
        return trace

    serial = drive("serial")
    process = drive("process")
    assert process == serial
    summary = serial["summary"]
    assert summary.query_cache_l2_promotions > 0
    assert summary.query_cache_l2_hits > 0  # real cross-shard reuse
    assert summary.count == 18
