"""Cross-layer invariants on generated Table-1 patterns.

These tie the workload generator, the engine and the declarative
semantics together with exact laws rather than statistical trends.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import PatternParams, Strategy, generate_pattern
from repro.bench.runner import run_pattern_once

CASES = [
    PatternParams(nb_nodes=24, nb_rows=3, pct_enabled=25, seed=2),
    PatternParams(nb_nodes=24, nb_rows=3, pct_enabled=75, seed=3),
    PatternParams(nb_nodes=32, nb_rows=4, pct_enabled=50, seed=4),
]


class TestExactWorkLaws:
    @pytest.mark.parametrize("params", CASES, ids=lambda p: f"e{p.pct_enabled:g}s{p.seed}")
    def test_nce0_work_equals_enabled_cost(self, params):
        """Under N + Earliest + sequential, the engine executes exactly the
        enabled attributes: the target is topologically deepest, so every
        enabled attribute is scheduled before it.  Work must equal the
        complete snapshot's enabled query cost — an exact reconciliation of
        engine accounting against declarative semantics."""
        pattern = generate_pattern(params)
        metrics = run_pattern_once(pattern, Strategy.parse("NCE0"))
        assert metrics.work_units == pattern.enabled_cost()

    @pytest.mark.parametrize("params", CASES, ids=lambda p: f"e{p.pct_enabled:g}s{p.seed}")
    def test_p_work_never_exceeds_n_work(self, params):
        """Propagation only removes work under conservative sequential
        execution with the same heuristic."""
        pattern = generate_pattern(params)
        p_work = run_pattern_once(pattern, Strategy.parse("PCE0")).work_units
        n_work = run_pattern_once(pattern, Strategy.parse("NCE0")).work_units
        assert p_work <= n_work

    @pytest.mark.parametrize("code", ["PCE0", "PCC0", "NCE0", "NSE0"])
    def test_sequential_time_equals_work(self, code):
        """At %Permitted = 0 there is never more than one query in flight,
        so TimeInUnits == Work on the ideal database (the paper relies on
        this when reading Figure 5 as both work and response time)."""
        pattern = generate_pattern(CASES[2])
        metrics = run_pattern_once(pattern, Strategy.parse(code))
        assert metrics.elapsed == pytest.approx(float(metrics.work_units))


class TestTimingBounds:
    @pytest.mark.parametrize("params", CASES, ids=lambda p: f"e{p.pct_enabled:g}s{p.seed}")
    def test_parallelism_is_monotone_in_time(self, params):
        pattern = generate_pattern(params)
        times = [
            run_pattern_once(pattern, Strategy.parse(f"PCE{p}")).elapsed
            for p in (0, 50, 100)
        ]
        assert times[2] <= times[1] + 1e-9 <= times[0] + 1e-9

    def test_full_parallel_time_at_least_critical_path(self):
        """TimeInUnits at 100% can never beat the costed depth of the
        target's enabled ancestry."""
        pattern = generate_pattern(CASES[0])
        metrics = run_pattern_once(pattern, Strategy.parse("PSE100"))
        # The target itself must execute: its cost alone is a lower bound.
        assert metrics.elapsed >= pattern.schema["tgt"].cost

    def test_speculation_never_slower_than_conservative_at_full_parallelism(self):
        for params in CASES:
            pattern = generate_pattern(params)
            speculative = run_pattern_once(pattern, Strategy.parse("PSE100")).elapsed
            conservative = run_pattern_once(pattern, Strategy.parse("PCE100")).elapsed
            assert speculative <= conservative + 1e-9


class TestPropagationScaling:
    def test_event_count_scales_linearly_with_schema_size(self):
        """The paper claims the Propagation Algorithm is linear in the size
        of the decision flow.  Simulation events per internal node must stay
        roughly flat as the schema grows (a quadratic regression would blow
        this ratio up)."""
        from repro import Engine, IdealDatabase, Simulation

        events_per_node = []
        for nb_nodes in (16, 32, 64, 128):
            params = PatternParams(
                nb_nodes=nb_nodes, nb_rows=4, pct_enabled=50, seed=1
            )
            pattern = generate_pattern(params)
            simulation = Simulation()
            engine = Engine(
                pattern.schema, Strategy.parse("PSE100"), IdealDatabase(simulation)
            )
            engine.run_single(pattern.source_values)
            events_per_node.append(simulation.events_executed / nb_nodes)
        assert max(events_per_node) <= 3.0 * min(events_per_node)


@settings(max_examples=25, deadline=None)
@given(
    pct_enabled=st.integers(0, 100),
    nb_rows=st.integers(1, 6),
    seed=st.integers(0, 20),
)
def test_nce0_reconciliation_holds_generally(pct_enabled, nb_rows, seed):
    params = PatternParams(
        nb_nodes=18, nb_rows=min(nb_rows, 18), pct_enabled=pct_enabled, seed=seed
    )
    pattern = generate_pattern(params)
    metrics = run_pattern_once(pattern, Strategy.parse("NCE0"))
    assert metrics.work_units == pattern.enabled_cost()
