"""Cross-instance result sharing (overlapping data, paper §6 future work)."""

import pytest

from repro import (
    Attribute,
    Comparison,
    DecisionFlowSchema,
    Engine,
    IdealDatabase,
    Op,
    QueryTask,
    Simulation,
    Strategy,
    SynthesisTask,
)
from repro.core.sharing import ResultShare, UNSET, freeze, share_key
from tests._support import q


class TestFreeze:
    def test_scalars_pass_through(self):
        assert freeze(5) == 5
        assert freeze("x") == "x"
        assert freeze(None) is None

    def test_dicts_order_insensitive(self):
        assert freeze({"a": 1, "b": 2}) == freeze({"b": 2, "a": 1})

    def test_nested_structures(self):
        a = freeze({"k": [1, {"x": {2, 3}}]})
        b = freeze({"k": [1, {"x": {3, 2}}]})
        assert a == b
        assert isinstance(hash(a), int)

    def test_lists_and_tuples_equivalent(self):
        assert freeze([1, 2]) == freeze((1, 2))

    def test_distinct_values_distinct_keys(self):
        assert freeze({"a": 1}) != freeze({"a": 2})

    def test_unhashable_leaf_falls_back_to_repr(self):
        class Weird:
            __hash__ = None

            def __repr__(self):
                return "Weird()"

        assert freeze(Weird()) == ("repr", "Weird()")

    def test_share_key_includes_task_name(self):
        assert share_key("q1", {"a": 1}) != share_key("q2", {"a": 1})


class TestResultShare:
    def test_miss_then_publish_then_hit(self):
        share = ResultShare()
        key = share_key("q", {"a": 1})
        assert share.get(key) is UNSET
        share.mark_pending(key)
        share.publish(key, 42)
        assert share.get(key) == 42
        assert share.hits == 1

    def test_waiters_notified_in_order(self):
        share = ResultShare()
        key = share_key("q", {})
        share.mark_pending(key)
        seen = []
        share.join(key, lambda v: seen.append(("first", v)))
        share.join(key, lambda v: seen.append(("second", v)))
        notified = share.publish(key, 7)
        assert notified == 2
        assert seen == [("first", 7), ("second", 7)]

    def test_failed_publish_not_cached(self):
        share = ResultShare()
        key = share_key("q", {})
        share.mark_pending(key)
        seen = []
        share.join(key, seen.append)
        share.publish(key, "boom", cache=False)
        assert seen == ["boom"]
        assert share.get(key) is UNSET  # retried next time

    def test_double_pending_rejected(self):
        share = ResultShare()
        key = share_key("q", {})
        share.mark_pending(key)
        with pytest.raises(ValueError):
            share.mark_pending(key)

    def test_abandon_returns_waiters(self):
        share = ResultShare()
        key = share_key("q", {})
        share.mark_pending(key)
        share.join(key, lambda v: None)
        stranded = share.abandon(key)
        assert len(stranded) == 1
        assert not share.is_pending(key)


def shared_engine(schema, code="PCE100"):
    simulation = Simulation()
    database = IdealDatabase(simulation)
    engine = Engine(schema, Strategy.parse(code), database, share_results=True)
    return engine, simulation, database


def keyed_schema():
    """One query whose result depends on the source value."""
    return DecisionFlowSchema(
        [
            Attribute("customer"),
            Attribute(
                "profile",
                task=QueryTask(
                    "q_profile", ("customer",), lambda v: f"profile-of-{v['customer']}", cost=4
                ),
            ),
            Attribute(
                "t",
                task=QueryTask("q_t", ("profile",), lambda v: v["profile"], cost=1),
                is_target=True,
            ),
        ]
    )


class TestEngineSharing:
    def test_identical_instances_share_all_queries(self):
        engine, simulation, database = shared_engine(keyed_schema())
        first = engine.submit_instance({"customer": "alice"})
        second = engine.submit_instance({"customer": "alice"})
        simulation.run()
        assert first.done and second.done
        assert first.cells["t"].value == second.cells["t"].value == "profile-of-alice"
        # The database ran each distinct query once: 4 + 1 units, not 10.
        assert database.total_units == 5
        assert second.metrics.shared_joins + second.metrics.shared_hits >= 1
        assert second.metrics.work_units == 0

    def test_distinct_inputs_do_not_share(self):
        engine, simulation, database = shared_engine(keyed_schema())
        engine.submit_instance({"customer": "alice"})
        engine.submit_instance({"customer": "bob"})
        simulation.run()
        assert database.total_units == 10  # no overlap, no sharing

    def test_later_instance_hits_cache(self):
        engine, simulation, database = shared_engine(keyed_schema())
        engine.submit_instance({"customer": "alice"}, at=0.0)
        late = engine.submit_instance({"customer": "alice"}, at=100.0)
        simulation.run()
        assert late.done
        assert late.metrics.shared_hits == 2  # both queries served from cache
        assert late.metrics.queries_launched == 0
        assert late.elapsed_is_zero if False else late.metrics.elapsed == 0.0
        assert database.total_units == 5

    def test_concurrent_instances_join_inflight_query(self):
        engine, simulation, database = shared_engine(keyed_schema())
        engine.submit_instance({"customer": "alice"}, at=0.0)
        joiner = engine.submit_instance({"customer": "alice"}, at=1.0)
        simulation.run()
        assert joiner.done
        assert joiner.metrics.shared_joins >= 1
        assert database.total_units == 5

    def test_sharing_preserves_results_vs_unshared(self):
        schema = keyed_schema()
        engine, simulation, _ = shared_engine(schema)
        shared_instances = [
            engine.submit_instance({"customer": "alice"}),
            engine.submit_instance({"customer": "alice"}),
        ]
        simulation.run()

        lone_sim = Simulation()
        lone = Engine(schema, Strategy.parse("PCE100"), IdealDatabase(lone_sim))
        reference = lone.submit_instance({"customer": "alice"})
        lone_sim.run()

        for instance in shared_instances:
            assert instance.cells["t"].value == reference.cells["t"].value

    def test_sharing_off_by_default(self):
        simulation = Simulation()
        database = IdealDatabase(simulation)
        engine = Engine(keyed_schema(), Strategy.parse("PCE100"), database)
        engine.submit_instance({"customer": "alice"})
        engine.submit_instance({"customer": "alice"})
        simulation.run()
        assert database.total_units == 10
        assert engine.share is None

    def test_shared_repr(self):
        engine, _, _ = shared_engine(keyed_schema())
        assert "shared" in repr(engine)

    def test_many_instances_work_scales_with_distinct_profiles(self):
        engine, simulation, database = shared_engine(keyed_schema())
        for index in range(12):
            engine.submit_instance({"customer": f"c{index % 3}"}, at=float(index))
        simulation.run()
        assert all(i.done for i in engine.instances)
        assert database.total_units == 3 * 5  # one query pair per profile


def speculative_share_schema():
    """A speculative 10-unit query (`big`) keyed only by the shared `s`.

    `big` is guarded by a condition on the per-instance `c`, so an
    instance with flag=0 disables it and finishes at t=2 while the big
    query it issued speculatively is still in flight.
    """
    return DecisionFlowSchema(
        [
            Attribute("s"),
            Attribute("flag"),
            Attribute("c", task=QueryTask("q_c", ("flag",), lambda v: v["flag"], 2)),
            Attribute(
                "big",
                task=QueryTask("q_big", ("s",), lambda v: f"big-{v['s']}", 10),
                condition=Comparison("c", Op.EQ, 1),
            ),
            Attribute(
                "t",
                task=SynthesisTask("s_t", ("c", "big"), lambda v: (v["c"], v["big"])),
                is_target=True,
            ),
        ],
        name="spec-share",
    )


class TestDrainPolicyWithSharing:
    """halt_policy='drain' × share_results=True (satellite coverage).

    The issuer of a shared query can finish (its targets stabilize with
    the speculative attribute disabled) while the query is still in
    flight; instances that joined the query must still resolve.
    """

    def run_pair(self, halt_policy):
        simulation = Simulation()
        database = IdealDatabase(simulation)
        engine = Engine(
            speculative_share_schema(),
            Strategy.parse("PSE100"),
            database,
            halt_policy=halt_policy,
            share_results=True,
        )
        issuer = engine.submit_instance({"s": "k", "flag": 0})
        waiter = engine.submit_instance({"s": "k", "flag": 1})
        simulation.run()
        return issuer, waiter, database

    def test_drain_waiter_resolves_after_issuer_finishes(self):
        issuer, waiter, database = self.run_pair("drain")
        assert issuer.done and waiter.done
        assert issuer.metrics.finish_time == 2.0  # finished with big in flight
        assert waiter.metrics.finish_time == 10.0  # resolved by the drained query
        assert waiter.cells["t"].value == (1, "big-k")
        assert waiter.metrics.shared_joins == 1
        assert database.total_units == 14  # 2 + 2 + one big(10), never reissued

    def test_drain_books_inflight_units_to_the_issuer(self):
        issuer, waiter, _ = self.run_pair("drain")
        assert issuer.metrics.work_units == 12  # its c plus the drained big
        assert waiter.metrics.work_units == 2  # only its own c

    def test_cancel_policy_spares_queries_with_waiters(self):
        # Under halt_policy='cancel' the issuer's completion must not kill
        # the in-flight query, because another instance joined it.
        issuer, waiter, database = self.run_pair("cancel")
        assert issuer.done and waiter.done
        assert waiter.cells["t"].value == (1, "big-k")
        assert database.total_units == 14
        assert issuer.metrics.queries_cancelled == 0


class TestJoinsAndParallelismBudget:
    """A joined query is free, so it must not eat a %Permitted slot."""

    @staticmethod
    def budget_schema():
        # profile is first in topo order and expensive (shared across
        # instances); locA/locB depend on a per-instance region, so they
        # never share.  The target is synthesized from all three.
        return DecisionFlowSchema(
            [
                Attribute("customer"),
                Attribute("region"),
                Attribute(
                    "profile",
                    task=QueryTask(
                        "q_profile", ("customer",), lambda v: f"p-{v['customer']}", cost=10
                    ),
                ),
                Attribute(
                    "locA",
                    task=QueryTask("q_locA", ("region",), lambda v: f"a-{v['region']}", cost=2),
                ),
                Attribute(
                    "locB",
                    task=QueryTask("q_locB", ("region",), lambda v: f"b-{v['region']}", cost=4),
                ),
                Attribute(
                    "t",
                    task=SynthesisTask(
                        "t_all", ("profile", "locA", "locB"), lambda v: tuple(sorted(v))
                    ),
                    is_target=True,
                ),
            ]
        )

    def test_joined_query_does_not_throttle_launches(self):
        simulation = Simulation()
        database = IdealDatabase(simulation)
        engine = Engine(
            self.budget_schema(),
            Strategy.parse("PCE50"),
            database,
            share_results=True,
        )
        engine.submit_instance({"customer": "alice", "region": "eu"}, at=0.0)
        joiner = engine.submit_instance({"customer": "alice", "region": "us"}, at=0.5)
        simulation.run()
        assert joiner.done
        assert joiner.metrics.shared_joins == 1
        # Timeline for the joiner: join profile + launch locA at 0.5 (one
        # real slot of the 50% budget); when locA finishes at 2.5 the join
        # must not block the remaining slot, so locB runs 2.5 → 6.5 and the
        # instance completes as soon as the shared profile lands at 10.
        # Counting the join as in flight would defer locB to t=10 and the
        # finish to t=14.
        assert joiner.metrics.finish_time == 10.0
