"""Dataflow skeletons (the rows × columns grid)."""

import pytest

from repro.workload.skeleton import SOURCE, TARGET, build_skeleton, node_name


class TestShape:
    def test_divisible_grid(self):
        skeleton = build_skeleton(16, 4)
        assert len(skeleton.rows) == 4
        assert all(len(row) == 4 for row in skeleton.rows)
        assert skeleton.ncols == 4

    def test_uneven_rows_differ_by_at_most_one(self):
        skeleton = build_skeleton(64, 3)
        lengths = [len(row) for row in skeleton.rows]
        assert sum(lengths) == 64
        assert max(lengths) - min(lengths) <= 1

    def test_single_row_is_a_chain(self):
        skeleton = build_skeleton(8, 1)
        assert skeleton.ncols == 8

    def test_columns(self):
        skeleton = build_skeleton(8, 2)
        assert skeleton.column[SOURCE] == 0
        assert skeleton.column[node_name(0, 0)] == 1
        assert skeleton.column[node_name(1, 3)] == 4
        assert skeleton.column[TARGET] == skeleton.ncols + 1


class TestEdges:
    def test_edge_count(self):
        # nb_rows source edges + (nb_nodes - nb_rows) chain edges + nb_rows target edges
        skeleton = build_skeleton(12, 3)
        assert len(skeleton.data_edges) == 12 + 3

    def test_source_feeds_first_of_each_row(self):
        skeleton = build_skeleton(6, 2)
        assert (SOURCE, node_name(0, 0)) in skeleton.data_edges
        assert (SOURCE, node_name(1, 0)) in skeleton.data_edges

    def test_rows_are_chains(self):
        skeleton = build_skeleton(6, 2)
        assert (node_name(0, 0), node_name(0, 1)) in skeleton.data_edges
        assert (node_name(0, 2), TARGET) in skeleton.data_edges

    def test_no_cross_row_edges_in_skeleton(self):
        skeleton = build_skeleton(8, 2)
        cross = [
            (a, b)
            for a, b in skeleton.data_edges
            if a not in (SOURCE,) and b not in (TARGET,)
            and a.split("_")[0] != b.split("_")[0]
        ]
        assert cross == []

    def test_data_inputs_ordered_and_correct(self):
        skeleton = build_skeleton(6, 2)
        assert skeleton.data_inputs(node_name(0, 1)) == [node_name(0, 0)]
        assert skeleton.data_inputs(TARGET) == [node_name(0, 2), node_name(1, 2)]

    def test_internal_names_are_column_major(self):
        skeleton = build_skeleton(4, 2)
        assert skeleton.internal_names == ["n0_0", "n1_0", "n0_1", "n1_1"]
