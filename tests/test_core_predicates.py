"""Leaf predicates: comparisons, null tests, user predicates."""

import pytest

from repro import NULL
from repro.core.conditions import UNRESOLVED, resolver_from_mapping
from repro.core.predicates import AttrRef, Comparison, IsNull, Op, UserPredicate, attr
from repro.core.tri import Tri


def resolve_of(**values):
    return resolver_from_mapping(values)


class TestComparison:
    @pytest.mark.parametrize(
        "op,left,right,expected",
        [
            (Op.EQ, 5, 5, Tri.TRUE),
            (Op.EQ, 5, 6, Tri.FALSE),
            (Op.NE, 5, 6, Tri.TRUE),
            (Op.LT, 5, 6, Tri.TRUE),
            (Op.LE, 5, 5, Tri.TRUE),
            (Op.GT, 5, 5, Tri.FALSE),
            (Op.GE, 5, 5, Tri.TRUE),
            (Op.IN, 5, (4, 5, 6), Tri.TRUE),
            (Op.IN, 7, (4, 5, 6), Tri.FALSE),
        ],
    )
    def test_operators(self, op, left, right, expected):
        assert Comparison("a", op, right).eval_tri(resolve_of(a=left)) is expected

    def test_unresolved_is_unknown(self):
        assert Comparison("a", Op.EQ, 5).eval_tri(resolve_of()) is Tri.UNKNOWN

    @pytest.mark.parametrize("op", list(Op))
    def test_null_left_operand_is_false(self, op):
        right = (1, 2) if op is Op.IN else 5
        assert Comparison("a", op, right).eval_tri(resolve_of(a=NULL)) is Tri.FALSE

    def test_attr_ref_right_operand(self):
        cond = Comparison("a", Op.GT, attr("b"))
        assert cond.refs() == {"a", "b"}
        assert cond.eval_tri(resolve_of(a=5, b=3)) is Tri.TRUE
        assert cond.eval_tri(resolve_of(a=5)) is Tri.UNKNOWN
        assert cond.eval_tri(resolve_of(a=5, b=NULL)) is Tri.FALSE

    def test_string_values(self):
        cond = Comparison("a", Op.EQ, "gold")
        assert cond.eval_tri(resolve_of(a="gold")) is Tri.TRUE
        assert cond.eval_tri(resolve_of(a="silver")) is Tri.FALSE

    def test_hashable_with_unhashable_constant(self):
        cond = Comparison("a", Op.IN, [1, 2, 3])
        assert isinstance(hash(cond), int)

    def test_repr_contains_operator(self):
        assert ">=" in repr(Comparison("a", Op.GE, 3))


class TestAttrRef:
    def test_equality(self):
        assert AttrRef("x") == AttrRef("x") != AttrRef("y")
        assert len({AttrRef("x"), AttrRef("x")}) == 1

    def test_repr(self):
        assert repr(attr("x")) == "@x"


class TestIsNull:
    def test_true_on_null(self):
        assert IsNull("a").eval_tri(resolve_of(a=NULL)) is Tri.TRUE

    def test_false_on_value(self):
        assert IsNull("a").eval_tri(resolve_of(a=0)) is Tri.FALSE

    def test_false_on_none_value(self):
        # Python None is an ordinary value, distinct from ⊥.
        assert IsNull("a").eval_tri(resolve_of(a=None)) is Tri.FALSE

    def test_unknown_when_unresolved(self):
        assert IsNull("a").eval_tri(resolve_of()) is Tri.UNKNOWN

    def test_refs(self):
        assert IsNull("a").refs() == {"a"}


class TestUserPredicate:
    def test_evaluates_with_all_inputs(self):
        pred = UserPredicate("both_big", ("a", "b"), lambda v: v["a"] > 5 and v["b"] > 5)
        assert pred.eval_tri(resolve_of(a=6, b=7)) is Tri.TRUE
        assert pred.eval_tri(resolve_of(a=6, b=2)) is Tri.FALSE

    def test_unknown_until_all_inputs_stable(self):
        pred = UserPredicate("p", ("a", "b"), lambda v: True)
        assert pred.eval_tri(resolve_of(a=6)) is Tri.UNKNOWN

    def test_null_is_passed_through(self):
        pred = UserPredicate("sees_null", ("a",), lambda v: v["a"] is NULL)
        assert pred.eval_tri(resolve_of(a=NULL)) is Tri.TRUE

    def test_result_coerced_to_bool(self):
        pred = UserPredicate("truthy", ("a",), lambda v: v["a"])
        assert pred.eval_tri(resolve_of(a=3)) is Tri.TRUE
        assert pred.eval_tri(resolve_of(a=0)) is Tri.FALSE

    def test_repr(self):
        pred = UserPredicate("p", ("a", "b"), lambda v: True)
        assert repr(pred) == "p(a, b)"
