"""Schema validation and accessors."""

import pytest

from repro import Attribute, Comparison, DecisionFlowSchema, Op, TRUE
from repro.errors import SchemaError
from tests._support import diamond_schema, q


class TestValidation:
    def test_duplicate_names(self):
        with pytest.raises(SchemaError, match="duplicate"):
            DecisionFlowSchema([Attribute("a", task=q("a"), is_target=True), Attribute("a", task=q("a"))])

    def test_empty_schema(self):
        with pytest.raises(SchemaError, match="at least one attribute"):
            DecisionFlowSchema([])

    def test_source_with_condition_rejected(self):
        bad = Attribute("s", task=None, condition=TRUE)
        bad.condition = Comparison("s", Op.GT, 0)  # bypass constructor default
        with pytest.raises(SchemaError, match="TRUE condition"):
            DecisionFlowSchema([bad, Attribute("t", task=q("t"), is_target=True)])

    def test_source_cannot_be_target(self):
        with pytest.raises(SchemaError, match="source and target"):
            DecisionFlowSchema([Attribute("s", task=None, is_target=True)])

    def test_non_source_needs_task(self):
        # task=None means source; is_target forces the conflict check first.
        ghost = Attribute("x")
        ghost.is_target = True
        with pytest.raises(SchemaError):
            DecisionFlowSchema([ghost])

    def test_target_required(self):
        with pytest.raises(SchemaError, match="target"):
            DecisionFlowSchema([Attribute("s"), Attribute("a", task=q("a"))])


class TestAccessors:
    def test_roles(self):
        schema, _ = diamond_schema()
        assert schema.source_names == ("s",)
        assert schema.target_names == ("t",)
        assert schema.internal_names == ("a", "b")
        assert schema.non_source_names == ("a", "b", "t")

    def test_mapping_protocol(self):
        schema, _ = diamond_schema()
        assert "a" in schema
        assert "ghost" not in schema
        assert len(schema) == 4
        assert [a.name for a in schema] == ["s", "a", "b", "t"]
        assert schema["b"].cost == 3

    def test_total_query_cost(self):
        schema, _ = diamond_schema()
        assert schema.total_query_cost() == 5  # a costs 2, b costs 3, t is synthesis

    def test_query_names(self):
        schema, _ = diamond_schema()
        assert schema.query_names() == ("a", "b")

    def test_describe(self):
        schema, _ = diamond_schema()
        text = schema.describe()
        assert "4 attributes" in text
        assert "1 source" in text
        assert "total cost 5" in text

    def test_repr(self):
        schema, _ = diamond_schema()
        assert "diamond" in repr(schema)
