"""Smoke tests for every figure definition (tiny sizes; shapes checked by
the benchmark suite itself at full scale)."""

import pytest

from repro.bench import figures

TINY = (0,)  # single seed keeps these fast


class TestTable1:
    def test_rows(self):
        result = figures.table1()
        assert len(result.rows) == 16
        assert "Parameter" in result.headers
        assert "cpu_ms" in result.notes[0]


class TestFig5:
    def test_fig5a(self):
        result = figures.fig5a(seeds=TINY)
        assert result.headers == ["%enabled", "PCC0", "PCE0", "NCC0", "NCE0"]
        assert [row[0] for row in result.rows] == list(range(10, 101, 10))
        assert result.chart

    def test_fig5b(self):
        result = figures.fig5b(seeds=TINY)
        assert [row[0] for row in result.rows] == list(range(2, 9))


class TestFig6:
    def test_fig6a_and_b_share_x(self):
        a = figures.fig6a(seeds=TINY)
        b = figures.fig6b(seeds=TINY)
        assert [r[0] for r in a.rows] == [r[0] for r in b.rows]
        assert a.headers[1:] == ["PC*100", "PS*100", "PCE0"]


class TestFig7:
    def test_fig7a(self):
        result = figures.fig7a(seeds=TINY)
        assert [row[0] for row in result.rows] == [0, 20, 40, 60, 80, 100]

    def test_fig7b_work_monotone_families(self):
        result = figures.fig7b(seeds=TINY)
        for row in result.rows:
            values = dict(zip(result.headers[1:], row[1:]))
            assert values["PSE*"] >= values["PCE*"] - 1e-9


class TestFig8:
    def test_fig8a_structure(self):
        result = figures.fig8a(seeds=TINY)
        enabled_values = {row[0] for row in result.rows}
        assert enabled_values == {10, 25, 50, 75, 100}
        assert result.headers == ["%enabled", "Work", "minT", "strategy"]

    def test_fig8b_structure(self):
        result = figures.fig8b(seeds=TINY)
        assert {row[0] for row in result.rows} == {1, 2, 4, 8, 16}


class TestFig9:
    def test_fig9a_small(self):
        result = figures.fig9a(gmpl_levels=(1, 4, 8), completions_per_level=300)
        assert [row[0] for row in result.rows] == [1, 4, 8]
        assert all(row[1] > 5.0 for row in result.rows)

    def test_fig9b_small(self):
        result = figures.fig9b(
            seeds=TINY,
            n_instances=60,
            warmup_instances=15,
            profile_completions=300,
            measurement_seeds=(0,),
        )
        assert result.headers[0] == "strategy"
        codes = [row[0] for row in result.rows]
        assert "PC*100" in codes and "PCE0" in codes
        # Feasible rows carry both predictions and measurements.
        feasible = [row for row in result.rows if row[4] is not None]
        assert feasible
        for row in feasible:
            assert row[5] is not None and row[6] is not None


class TestAblations:
    def test_halt_policy(self):
        result = figures.ablation_halt_policy(seeds=TINY)
        assert len(result.rows) == 3

    def test_cancel_unneeded(self):
        result = figures.ablation_cancel_unneeded(seeds=TINY)
        assert len(result.rows) == 3

    def test_render_includes_notes_and_chart(self):
        result = figures.fig5a(seeds=TINY)
        text = result.render()
        assert "Fig 5(a)" in text
        assert "note:" in text
