"""Business-rule synthesis tasks and combining policies."""

import pytest

from repro import NULL
from repro.core.conditions import TRUE
from repro.core.predicates import Comparison, IsNull, Op
from repro.core.rules import CombiningPolicy, Rule, RuleSetTask, rule_set


def make_task(policy="collect", default=NULL):
    rules = [
        Rule("gold", Comparison("tier", Op.EQ, "gold"), 100),
        Rule("big_cart", Comparison("cart", Op.GE, 50), 40),
        Rule("base", TRUE, 1),
    ]
    return rule_set("score", ("tier", "cart"), rules, policy=policy, default=default)


class TestRuleFiring:
    def test_all_firing_collect(self):
        task = make_task()
        assert task.compute({"tier": "gold", "cart": 60}) == [100, 40, 1]

    def test_partial_firing(self):
        task = make_task()
        assert task.compute({"tier": "silver", "cart": 60}) == [40, 1]

    def test_null_inputs_fail_comparisons_but_not_rules(self):
        task = make_task()
        assert task.compute({"tier": NULL, "cart": NULL}) == [1]

    def test_no_rule_fires_returns_default(self):
        rules = [Rule("never", Comparison("x", Op.GT, 100), 1)]
        task = rule_set("r", ("x",), rules, default="fallback")
        assert task.compute({"x": 1}) == "fallback"

    def test_default_defaults_to_null(self):
        rules = [Rule("never", Comparison("x", Op.GT, 100), 1)]
        task = rule_set("r", ("x",), rules)
        assert task.compute({"x": 1}) is NULL

    def test_callable_contribution(self):
        rules = [Rule("double", TRUE, lambda v: v["x"] * 2)]
        task = rule_set("r", ("x",), rules, policy="first")
        assert task.compute({"x": 21}) == 42

    def test_null_test_rule(self):
        rules = [Rule("missing", IsNull("x"), "was-null")]
        task = rule_set("r", ("x",), rules, policy="first", default="had-value")
        assert task.compute({"x": NULL}) == "was-null"
        assert task.compute({"x": 5}) == "had-value"


class TestPolicies:
    @pytest.mark.parametrize(
        "policy,expected",
        [
            ("collect", [100, 40, 1]),
            ("first", 100),
            ("last", 1),
            ("sum", 141),
            ("max", 100),
            ("min", 1),
            ("any", True),
            ("all", True),
        ],
    )
    def test_each_policy(self, policy, expected):
        task = make_task(policy=policy)
        assert task.compute({"tier": "gold", "cart": 60}) == expected

    def test_unknown_policy(self):
        with pytest.raises(KeyError, match="unknown combining policy"):
            make_task(policy="mystery")

    def test_registry_listing(self):
        names = CombiningPolicy.names()
        assert "collect" in names and "sum" in names

    def test_custom_policy_registration(self):
        CombiningPolicy.register("head2", lambda contributions: contributions[:2])
        task = make_task(policy="head2")
        assert task.compute({"tier": "gold", "cart": 60}) == [100, 40]


class TestValidation:
    def test_rule_refs_must_be_inputs(self):
        rules = [Rule("bad", Comparison("not_an_input", Op.GT, 1), 1)]
        with pytest.raises(ValueError, match="not_an_input"):
            RuleSetTask("r", ("x",), rules)

    def test_repr(self):
        assert "rules=3" in repr(make_task())
