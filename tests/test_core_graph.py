"""Dependency graph: edges, topological machinery, cycle detection."""

import pytest

from repro import Attribute, Comparison, IsNull, Op
from repro.core.graph import DependencyGraph, EdgeKind
from repro.errors import CycleError, UnknownAttributeError
from tests._support import q


def build(attrs):
    return DependencyGraph({a.name: a for a in attrs})


def sample_graph():
    """s → a → c; s → b → c (b also enables c); c → t."""
    return build(
        [
            Attribute("s"),
            Attribute("a", task=q("a", inputs=("s",))),
            Attribute("b", task=q("b", inputs=("s",))),
            Attribute(
                "c",
                task=q("c", inputs=("a", "b")),
                condition=Comparison("b", Op.GT, 0),
            ),
            Attribute("t", task=q("t", inputs=("c",)), is_target=True),
        ]
    )


class TestStructure:
    def test_data_inputs_and_consumers(self):
        graph = sample_graph()
        assert graph.data_inputs["c"] == ("a", "b")
        assert graph.data_consumers["s"] == ["a", "b"]
        assert graph.data_consumers["c"] == ["t"]

    def test_enabling_edges(self):
        graph = sample_graph()
        assert graph.cond_inputs["c"] == {"b"}
        assert graph.enabling_consumers["b"] == ["c"]
        assert graph.enabling_consumers["a"] == []

    def test_edges_listing(self):
        graph = sample_graph()
        edges = set(graph.edges())
        assert ("b", "c", EdgeKind.DATA) in edges
        assert ("b", "c", EdgeKind.ENABLING) in edges
        assert graph.edge_count() == len(edges)

    def test_parents_children(self):
        graph = sample_graph()
        assert graph.parents["c"] == {"a", "b"}
        assert graph.children["s"] == {"a", "b"}

    def test_duplicate_data_inputs_deduplicated(self):
        graph = build(
            [
                Attribute("s"),
                Attribute("a", task=q("a", inputs=("s",)), condition=IsNull("s")),
                Attribute("t", task=q("t", inputs=("a",)), is_target=True),
            ]
        )
        # s appears as both data and enabling parent of a: one of each kind.
        assert sum(1 for e in graph.edges() if e[0] == "s" and e[1] == "a") == 2


class TestTopology:
    def test_topo_order_respects_dependencies(self):
        graph = sample_graph()
        position = {name: i for i, name in enumerate(graph.topo_order)}
        for parent, child, _kind in graph.edges():
            assert position[parent] < position[child]

    def test_topo_ties_broken_by_declaration_order(self):
        graph = sample_graph()
        assert graph.topo_order.index("a") < graph.topo_order.index("b")

    def test_depth_is_longest_path(self):
        graph = sample_graph()
        assert graph.depth["s"] == 0
        assert graph.depth["a"] == graph.depth["b"] == 1
        assert graph.depth["c"] == 2
        assert graph.depth["t"] == 3
        assert graph.diameter() == 3

    def test_ancestors_descendants(self):
        graph = sample_graph()
        assert graph.ancestors("c") == {"s", "a", "b"}
        assert graph.descendants("s") == {"a", "b", "c", "t"}
        assert graph.ancestors("s") == frozenset()
        assert graph.descendants("t") == frozenset()


class TestValidation:
    def test_unknown_data_reference(self):
        with pytest.raises(UnknownAttributeError, match="ghost"):
            build([Attribute("a", task=q("a", inputs=("ghost",)))])

    def test_unknown_condition_reference(self):
        with pytest.raises(UnknownAttributeError, match="ghost"):
            build([Attribute("a", task=q("a"), condition=IsNull("ghost"))])

    def test_two_cycle_detected(self):
        with pytest.raises(CycleError):
            build(
                [
                    Attribute("a", task=q("a", inputs=("b",))),
                    Attribute("b", task=q("b", inputs=("a",))),
                ]
            )

    def test_self_loop_via_condition(self):
        with pytest.raises(CycleError):
            build([Attribute("a", task=q("a"), condition=IsNull("a"))])

    def test_cycle_message_names_participants(self):
        try:
            build(
                [
                    Attribute("x", task=q("x", inputs=("y",))),
                    Attribute("y", task=q("y", inputs=("x",))),
                ]
            )
        except CycleError as error:
            assert "x" in str(error) and "y" in str(error)
        else:
            pytest.fail("cycle not detected")
