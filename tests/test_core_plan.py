"""CompiledPlan unit tests: condition compilation, ranks, templates, cache."""

from __future__ import annotations

import random

import pytest

from repro import (
    Attribute,
    BatchedEngine,
    Engine,
    Comparison,
    CompiledPlan,
    DecisionFlowSchema,
    ExceptionValue,
    IdealDatabase,
    IsException,
    IsNull,
    NULL,
    Op,
    PatternParams,
    Simulation,
    Strategy,
    UserPredicate,
    generate_pattern,
)
from repro.api import ExecutionConfig
from repro.core.conditions import And, FALSE, Literal, Not, Or, TRUE, UNRESOLVED
from repro.core.plan import compile_condition
from repro.core.predicates import attr
from repro.core.scheduler import permitted_slots, rank_key
from repro.errors import ExecutionError
from tests._support import chain_schema, diamond_schema, q


NAMES = ("a", "b", "c", "d")
INDEX = {name: i for i, name in enumerate(NAMES)}


def random_condition(rng: random.Random, depth: int = 0):
    roll = rng.random()
    if depth >= 3 or roll < 0.45:
        kind = rng.randrange(5)
        name = rng.choice(NAMES)
        if kind == 0:
            return Comparison(name, rng.choice(list(Op)[:6]), rng.randint(0, 5))
        if kind == 1:
            return Comparison(name, rng.choice(list(Op)[:6]), attr(rng.choice(NAMES)))
        if kind == 2:
            return IsNull(name)
        if kind == 3:
            return IsException(name)
        return Literal(rng.random() < 0.5)
    children = [random_condition(rng, depth + 1) for _ in range(rng.randint(1, 3))]
    pick = rng.random()
    if pick < 0.4:
        return And(*children)
    if pick < 0.8:
        return Or(*children)
    return Not(children[0])


def random_valuation(rng: random.Random) -> list[object]:
    pool = [UNRESOLVED, NULL, ExceptionValue("down"), 0, 1, 3, 5]
    return [rng.choice(pool) for _ in NAMES]


def test_compiled_conditions_match_eval_tri():
    """Property: closures agree with the interpreter on random ASTs/valuations."""
    rng = random.Random(42)
    for _ in range(300):
        condition = random_condition(rng)
        compiled = compile_condition(condition, INDEX)
        for _ in range(8):
            sv = random_valuation(rng)
            interpreted = condition.eval_tri(lambda name: sv[INDEX[name]])
            assert compiled(sv) == interpreted.value, (condition, sv)


def test_compiled_user_predicate_and_fallback():
    pred = UserPredicate("both_small", ("a", "b"), lambda v: v["a"] + v["b"] < 4)
    compiled = compile_condition(pred, INDEX)
    assert compiled([2, 3, 0, 0]) == 0
    assert compiled([1, 1, 0, 0]) == 2
    assert compiled([UNRESOLVED, 1, 0, 0]) == 1

    class Custom(And):  # unknown subclass exercises the interpreted fallback
        pass

    custom = Custom(Comparison("a", Op.GT, 1))
    assert compile_condition(custom, INDEX)([5, 0, 0, 0]) == 2


def test_literal_conditions_compile_to_constants():
    assert compile_condition(TRUE, INDEX)([UNRESOLVED] * 4) == 2
    assert compile_condition(FALSE, INDEX)([UNRESOLVED] * 4) == 0


@pytest.mark.parametrize("code", ["PSE50", "PCC50"])
def test_rank_scalars_agree_with_rank_key(code):
    """The plan's scalar ranks induce exactly the scheduler's ordering."""
    pattern = generate_pattern(PatternParams(nb_nodes=24, nb_rows=4, seed=5))
    strategy = Strategy.parse(code)
    plan = CompiledPlan(pattern.schema, strategy)

    from repro.core.instance import InstanceRuntime

    instance = InstanceRuntime(pattern.schema, strategy, "i", pattern.source_values, 0.0)
    queries = list(pattern.schema.query_names())
    by_key = sorted(queries, key=lambda name: rank_key(instance, name))
    by_scalar = sorted(queries, key=lambda name: plan.rank[plan.index[name]])
    assert by_scalar == by_key


def test_permitted_slots_matches_formula():
    assert permitted_slots(4, 0, 0) == 1      # sequential floor
    assert permitted_slots(4, 1, 0) == 0      # one already in flight
    assert permitted_slots(4, 0, 100) == 4    # launch the whole pool
    assert permitted_slots(2, 2, 50) == 0
    assert permitted_slots(3, 1, 50) == 1


def test_plan_templates_and_edges():
    schema, _ = diamond_schema()
    plan = CompiledPlan(schema, Strategy.parse("PSE100"))
    assert plan.names == schema.names
    assert [plan.names[i] for i in plan.source_idx] == list(schema.source_names)
    assert [plan.names[i] for i in plan.target_idx] == list(schema.target_names)
    # Source template: computed+enabled; everything else pending/unknown.
    s = plan.index["s"]
    assert plan.readiness0[s] == 2 and plan.enablement0[s] == 1
    t = plan.index["t"]
    assert plan.readiness0[t] == 0 and plan.enablement0[t] == 0
    assert plan.pending0[t] == 2  # a and b are non-source data inputs
    assert plan.edges.edge_count == schema.graph.edge_count()


def test_start_cache_reused_across_identical_sources():
    pattern = generate_pattern(PatternParams(nb_nodes=16, nb_rows=4, seed=2))
    sim = Simulation()
    engine = BatchedEngine(pattern.schema, Strategy.parse("PSE100"), IdealDatabase(sim))
    assert engine.plan.start_cache_ok  # generated patterns are query-only
    for _ in range(4):
        engine.submit_instance(pattern.source_values)
    source_name = pattern.schema.source_names[0]
    engine.submit_instance({source_name: -1})  # different valuation -> second entry
    sim.run()
    assert len(engine.plan._start_cache) == 2
    assert all(instance.done for instance in engine.instances)


def test_start_cache_disabled_for_user_code_schemas():
    """Synthesis tasks (and user predicates) must run per instance, so
    schemas containing them never replay cached start states."""
    schema, source_values = diamond_schema()  # diamond's target is synthesis
    sim = Simulation()
    engine = BatchedEngine(schema, Strategy.parse("PSE100"), IdealDatabase(sim))
    assert not engine.plan.start_cache_ok
    for _ in range(3):
        engine.submit_instance(source_values)
    sim.run()
    assert engine.plan._start_cache == {}
    assert all(instance.done for instance in engine.instances)


def test_synthesis_results_are_per_instance_objects():
    """Each instance owns a fresh synthesis result (no cross-instance
    aliasing through any cache), exactly like the reference engine."""
    from repro import Attribute, SynthesisTask

    attributes = [
        Attribute("s"),
        Attribute("box", task=SynthesisTask("box", ("s",), lambda v: [v["s"]]), is_target=True),
    ]
    schema = DecisionFlowSchema(attributes, name="boxer")
    sim = Simulation()
    engine = BatchedEngine(schema, Strategy.parse("PCE0"), IdealDatabase(sim))
    for _ in range(3):
        engine.submit_instance({"s": 9})
    sim.run()
    boxes = [instance.cells["box"].value for instance in engine.instances]
    assert boxes == [[9], [9], [9]]
    assert len({id(box) for box in boxes}) == 3, "synthesis results aliased"


def test_start_cache_keys_distinguish_equal_but_typed_values():
    """1, True and 1.0 are ==-equal; the cache must not conflate them."""
    from repro import Attribute

    attributes = [
        Attribute("s"),
        Attribute("t", task=q("t", inputs=("s",), fn=lambda v: repr(v["s"])), is_target=True),
    ]
    schema = DecisionFlowSchema(attributes, name="typed")
    results = {}
    for engine_cls in (Engine, BatchedEngine):
        sim = Simulation()
        engine = engine_cls(schema, Strategy.parse("PCE0"), IdealDatabase(sim))
        for value in (1, True, 1.0):
            engine.submit_instance({"s": value})
        sim.run()
        results[engine_cls] = [
            instance.cells["t"].value for instance in engine.instances
        ]
    assert results[Engine] == ["1", "True", "1.0"]
    assert results[BatchedEngine] == results[Engine]


def test_start_cache_never_aliases_source_objects():
    """A cache hit must not substitute the first submitter's ==-equal
    source objects into later instances (regression)."""
    schema, _ = chain_schema(length=2)
    sim = Simulation()
    engine = BatchedEngine(schema, Strategy.parse("PCE0"), IdealDatabase(sim))
    first, second = float("7.5"), float("7.5")  # ==, same type, distinct objects
    assert first is not second
    engine.submit_instance({"s": first})
    engine.submit_instance({"s": second})
    sim.run()
    values = [instance.cells["s"].value for instance in engine.instances]
    assert values[0] is first and values[1] is second


def test_typed_freeze_handles_unorderable_dict_keys():
    """Mixed-type dict keys must degrade to a cache miss, not a crash."""
    schema, _ = chain_schema(length=2)
    for engine_cls in (Engine, BatchedEngine):
        sim = Simulation()
        engine = engine_cls(schema, Strategy.parse("PCE0"), IdealDatabase(sim))
        engine.submit_instance({"s": {1: "a", "b": 2}})
        engine.submit_instance({"s": {1: "a", "b": 2}})
        sim.run()
        assert all(instance.done for instance in engine.instances)


def test_start_cache_is_bounded_and_keeps_hot_entries():
    """Unique valuations churn within the cap; hot entries survive (LRU)."""
    from repro.core.plan import START_CACHE_LIMIT

    schema, _ = chain_schema(length=2)
    sim = Simulation()
    engine = BatchedEngine(schema, Strategy.parse("PCE0"), IdealDatabase(sim))
    hot_key = engine.plan.start_key({"s": -7})
    engine.submit_instance({"s": -7})
    for value in range(START_CACHE_LIMIT + 40):
        engine.submit_instance({"s": value})
        engine.submit_instance({"s": -7})  # re-hit the hot valuation
    sim.run()
    assert all(instance.done for instance in engine.instances)
    assert len(engine.plan._start_cache) == START_CACHE_LIMIT
    assert hot_key in engine.plan._start_cache, "LRU evicted the hot entry"


def test_batched_engine_validation_parity():
    schema, source_values = diamond_schema()
    sim = Simulation()
    engine = BatchedEngine(schema, Strategy.parse("PCE0"), IdealDatabase(sim))
    with pytest.raises(ExecutionError, match="missing source values"):
        engine.submit_instance({})
    engine.submit_instance(source_values, instance_id="dup")
    with pytest.raises(ExecutionError, match="duplicate instance id"):
        engine.submit_instance(source_values, instance_id="dup")
    sim.run()
    with pytest.raises(ExecutionError, match="past time"):
        engine.submit_instance(source_values, at=-1.0)


def test_batched_run_single_and_cell_views():
    schema, source_values = chain_schema(length=3)
    sim = Simulation()
    engine = BatchedEngine(schema, Strategy.parse("PCE0"), IdealDatabase(sim))
    metrics = engine.run_single(source_values)
    assert metrics.done
    instance = engine.instances[0]
    cell = instance.cells["c3"]
    assert cell.stable and cell.value == 3
    assert instance.cells["c1"].state.name == "VALUE"
    assert instance.value_map()["c2"] == 2
    assert set(instance.state_map()) == set(schema.names)
    assert "c3" in instance.cells and len(instance.cells) == len(schema.names)


def test_execution_config_engine_field():
    config = ExecutionConfig(engine="batched")
    assert config.engine == "batched"
    assert "engine=batched" in repr(config)
    assert config.replace(engine="reference").engine == "reference"
    assert ExecutionConfig.from_code("PSE80", engine="batched").engine == "batched"
    with pytest.raises(ValueError, match="engine must be one of"):
        ExecutionConfig(engine="vectorized")


def test_batched_engine_repr_and_plan_repr():
    schema, source_values = diamond_schema()
    sim = Simulation()
    engine = BatchedEngine(schema, Strategy.parse("PSE50"), IdealDatabase(sim))
    engine.submit_instance(source_values)
    sim.run()
    assert "BatchedEngine" in repr(engine) and "1/1 done" in repr(engine)
    assert "CompiledPlan" in repr(engine.plan)
