"""Condition AST: construction, Kleene evaluation, monotonicity."""

import pytest
from hypothesis import given, strategies as st

from repro import NULL
from repro.core.conditions import (
    FALSE,
    TRUE,
    And,
    Literal,
    Not,
    Or,
    UNRESOLVED,
    conjoin,
    resolver_from_mapping,
)
from repro.core.predicates import Comparison, IsNull, Op
from repro.core.tri import Tri


def resolve_of(**values):
    return resolver_from_mapping(values)


class TestLiterals:
    def test_true_false(self):
        assert TRUE.eval_tri(resolve_of()) is Tri.TRUE
        assert FALSE.eval_tri(resolve_of()) is Tri.FALSE

    def test_no_refs(self):
        assert TRUE.refs() == frozenset()

    def test_eval_bool(self):
        assert TRUE.eval_bool(resolve_of()) is True
        assert FALSE.eval_bool(resolve_of()) is False


class TestConnectives:
    def test_and_false_short_circuit_with_unknown(self):
        # Eager evaluation: one false conjunct decides the conjunction even
        # though the other input is not yet stable.
        cond = And(Comparison("a", Op.GT, 10), Comparison("b", Op.GT, 0))
        assert cond.eval_tri(resolve_of(a=5)) is Tri.FALSE

    def test_or_true_short_circuit_with_unknown(self):
        cond = Or(Comparison("a", Op.GT, 10), Comparison("b", Op.GT, 0))
        assert cond.eval_tri(resolve_of(a=50)) is Tri.TRUE

    def test_and_unknown_when_undecided(self):
        cond = And(Comparison("a", Op.GT, 10), Comparison("b", Op.GT, 0))
        assert cond.eval_tri(resolve_of(a=50)) is Tri.UNKNOWN

    def test_or_unknown_when_undecided(self):
        cond = Or(Comparison("a", Op.GT, 10), Comparison("b", Op.GT, 0))
        assert cond.eval_tri(resolve_of(a=5)) is Tri.UNKNOWN

    def test_flattening(self):
        cond = And(And(TRUE, FALSE), TRUE)
        assert len(cond.children) == 3
        cond = Or(Or(TRUE, FALSE), Or(TRUE, TRUE))
        assert len(cond.children) == 4

    def test_refs_union(self):
        cond = And(Comparison("a", Op.GT, 1), Or(IsNull("b"), Comparison("c", Op.LE, 2)))
        assert cond.refs() == {"a", "b", "c"}

    def test_not(self):
        cond = Not(Comparison("a", Op.GT, 10))
        assert cond.eval_tri(resolve_of(a=5)) is Tri.TRUE
        assert cond.eval_tri(resolve_of(a=50)) is Tri.FALSE
        assert cond.eval_tri(resolve_of()) is Tri.UNKNOWN

    def test_operator_sugar(self):
        a = Comparison("a", Op.GT, 1)
        b = Comparison("b", Op.GT, 1)
        assert (a & b) == And(a, b)
        assert (a | b) == Or(a, b)
        assert (~a) == Not(a)

    def test_type_errors(self):
        with pytest.raises(TypeError):
            And("not a condition")
        with pytest.raises(TypeError):
            Not(42)


class TestEvalBool:
    def test_raises_with_unresolved_inputs_listed(self):
        cond = And(Comparison("a", Op.GT, 1), Comparison("zz", Op.GT, 1))
        with pytest.raises(ValueError, match="zz"):
            cond.eval_bool(resolve_of(a=5))

    def test_ok_when_short_circuit_decides(self):
        cond = And(Comparison("a", Op.GT, 10), Comparison("zz", Op.GT, 1))
        assert cond.eval_bool(resolve_of(a=5)) is False


class TestEquality:
    def test_structural_equality_and_hash(self):
        a1 = And(Comparison("a", Op.GT, 1), IsNull("b"))
        a2 = And(Comparison("a", Op.GT, 1), IsNull("b"))
        assert a1 == a2
        assert hash(a1) == hash(a2)
        assert a1 != Or(Comparison("a", Op.GT, 1), IsNull("b"))
        assert len({a1, a2}) == 1

    def test_literal_equality(self):
        assert Literal(True) == TRUE
        assert Literal(False) != TRUE


class TestConjoin:
    def test_true_identity(self):
        c = IsNull("x")
        assert conjoin(TRUE, c) is c
        assert conjoin(c, TRUE) is c

    def test_false_absorbs(self):
        c = IsNull("x")
        assert conjoin(FALSE, c) == FALSE
        assert conjoin(c, FALSE) == FALSE

    def test_general_case(self):
        a, b = IsNull("x"), IsNull("y")
        assert conjoin(a, b) == And(a, b)


# -- property: partial evaluation never contradicts full evaluation ---------

_NAMES = ("a", "b", "c")


def _conditions(depth=2):
    leaves = st.one_of(
        st.builds(Literal, st.booleans()),
        st.builds(
            Comparison,
            st.sampled_from(_NAMES),
            st.sampled_from([Op.EQ, Op.NE, Op.LT, Op.LE, Op.GT, Op.GE]),
            st.integers(0, 10),
        ),
        st.builds(IsNull, st.sampled_from(_NAMES)),
    )
    return st.recursive(
        leaves,
        lambda children: st.one_of(
            st.builds(lambda a, b: And(a, b), children, children),
            st.builds(lambda a, b: Or(a, b), children, children),
            st.builds(Not, children),
        ),
        max_leaves=8,
    )


_VALUES = st.one_of(st.integers(0, 10), st.just(NULL))


@given(
    condition=_conditions(),
    full=st.fixed_dictionaries({name: _VALUES for name in _NAMES}),
    visible=st.sets(st.sampled_from(_NAMES)),
)
def test_partial_evaluation_is_monotone(condition, full, visible):
    """If a partial snapshot decides a condition, the full snapshot agrees.

    This is the soundness property behind eager condition evaluation
    (forward propagation): resolving early must never contradict the
    complete snapshot.
    """
    partial = {name: value for name, value in full.items() if name in visible}
    early = condition.eval_tri(resolver_from_mapping(partial))
    final = condition.eval_bool(resolver_from_mapping(full))
    if early.known:
        assert (early is Tri.TRUE) == final
