"""Every example must run end-to-end and produce sensible output."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(f"examples_{name}", EXAMPLES_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestQuickstart:
    def test_runs_and_reports_decisions(self, capsys):
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "loan-preapproval" in out
        assert "PCE0" in out and "PSE100" in out
        assert "decision=" in out

    def test_small_amount_skips_fraud_check(self, capsys):
        module = load_example("quickstart")
        schema = module.build_schema()
        module.run(schema, "PCE0", {"customer_id": "alice", "amount": 100})
        out = capsys.readouterr().out
        # fraud check (cost 5) must not be launched: work = 3 + 2 only.
        assert "Work= 5" in out


class TestPromoStorefront:
    def test_runs_all_customers(self, capsys):
        load_example("promo_storefront").main()
        out = capsys.readouterr().out
        assert out.count("Work=") == 3

    def test_wealthy_boston_parent_gets_promo(self, capsys):
        load_example("promo_storefront").main()
        out = capsys.readouterr().out
        assert "boys parka" in out

    def test_non_matching_customer_gets_no_promo(self, capsys):
        load_example("promo_storefront").main()
        out = capsys.readouterr().out
        assert "no promo on this page" in out


class TestClaimsProcessing:
    def test_runs_all_claims(self, capsys):
        load_example("claims_processing").main()
        out = capsys.readouterr().out
        assert "fast-track payment" in out
        assert "hold for investigation" in out
        assert "deny (policy not active)" in out

    def test_speculation_shows_waste_on_cheap_claim(self, capsys):
        load_example("claims_processing").main()
        out = capsys.readouterr().out
        assert "wasted=" in out


class TestFlowMining:
    def test_report_and_refinements(self, capsys):
        load_example("flow_mining").main()
        out = capsys.readouterr().out
        assert "200 executions" in out
        assert "expensive-rarely-used" in out
        assert "siu_report" in out


@pytest.mark.slow
class TestStrategyTuning:
    def test_full_tuning_workflow(self, capsys):
        load_example("strategy_tuning").main()
        out = capsys.readouterr().out
        assert "model recommends" in out
        assert "measured mean response" in out
        assert "guideline map" in out
