"""The HTTP/JSON transport in front of the daemon (repro.server.http).

Port-free and deterministic: every server binds port 0 (the OS hands out
an ephemeral port) and is talked to over the loopback with stdlib
``http.client``.  Waits are event-driven (``wait_idle``), never sleeps.
"""

import http.client
import json
import threading
import time

import pytest

from repro import ExecutionConfig, PatternParams, generate_pattern
from repro.core.metrics import MetricsSummary
from repro.server import ServerDaemon, start_http_server

WAIT = 30.0


@pytest.fixture(scope="module")
def pattern():
    return generate_pattern(PatternParams(nb_nodes=16, nb_rows=3, pct_enabled=50, seed=3))


@pytest.fixture
def stack(pattern):
    """(daemon, server) on an ephemeral port, torn down in order."""
    daemon = ServerDaemon(
        pattern.schema, "PSE80", default_values=pattern.source_values
    )
    server, thread = start_http_server(daemon)
    yield daemon, server
    server.shutdown()
    server.server_close()
    thread.join(WAIT)
    daemon.shutdown()


def request(server, method, path, body=None):
    """One request → (status, headers, parsed-JSON body)."""
    conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=WAIT)
    try:
        payload = None if body is None else json.dumps(body)
        headers = {} if body is None else {"Content-Type": "application/json"}
        conn.request(method, path, body=payload, headers=headers)
        response = conn.getresponse()
        raw = response.read()
        return response.status, dict(response.getheaders()), json.loads(raw)
    finally:
        conn.close()


def submit_and_wait(daemon, server, body):
    status, _, payload = request(server, "POST", "/instances", body)
    assert status == 202, payload
    assert daemon.wait_idle(WAIT)
    return payload["accepted"]


class TestHealthz:
    def test_ok_with_queue_depth(self, stack):
        daemon, server = stack
        status, _, payload = request(server, "GET", "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["queue_depth"] == 0
        assert payload["uptime"] >= 0


class TestInstances:
    def test_empty_body_uses_default_values(self, stack):
        daemon, server = stack
        (instance_id,) = submit_and_wait(daemon, server, {})
        status, _, payload = request(server, "GET", f"/instances/{instance_id}")
        assert status == 200
        assert payload["status"] == "done"
        assert payload["origin"] == "live"
        assert payload["values"]
        assert payload["latency"] >= 0

    def test_explicit_values_accepted(self, stack, pattern):
        daemon, server = stack
        (instance_id,) = submit_and_wait(
            daemon, server, {"values": dict(pattern.source_values)}
        )
        _, _, payload = request(server, "GET", f"/instances/{instance_id}")
        assert payload["status"] == "done"

    def test_batch_returns_one_id_per_entry(self, stack, pattern):
        daemon, server = stack
        ids = submit_and_wait(
            daemon,
            server,
            {"batch": [None, {}, {"values": dict(pattern.source_values)}]},
        )
        assert len(set(ids)) == 3
        for instance_id in ids:
            _, _, payload = request(server, "GET", f"/instances/{instance_id}")
            assert payload["status"] == "done"

    def test_unknown_id_is_404_json(self, stack):
        _, server = stack
        status, _, payload = request(server, "GET", "/instances/srv-404")
        assert status == 404
        assert payload["error"]["id"] == "srv-404"

    def test_unknown_endpoint_is_404(self, stack):
        _, server = stack
        for method, path in (("GET", "/nope"), ("POST", "/nope")):
            status, _, payload = request(server, method, path)
            assert status == 404
            assert "no such endpoint" in payload["error"]["message"]


class TestBadRequests:
    def test_malformed_json_is_400(self, stack):
        _, server = stack
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=WAIT)
        try:
            conn.request("POST", "/instances", body="{not json")
            response = conn.getresponse()
            payload = json.loads(response.read())
            assert response.status == 400
            assert "bad request" in payload["error"]["message"]
        finally:
            conn.close()

    def test_non_object_body_is_400(self, stack):
        _, server = stack
        status, _, _ = request(server, "POST", "/instances", body=[1, 2])
        assert status == 400

    def test_empty_batch_is_400(self, stack):
        _, server = stack
        status, _, payload = request(server, "POST", "/instances", {"batch": []})
        assert status == 400
        assert "non-empty" in payload["error"]["message"]

    def test_scalar_values_is_400(self, stack):
        _, server = stack
        status, _, _ = request(server, "POST", "/instances", {"values": 7})
        assert status == 400


class TestBackpressure:
    def test_429_with_retry_after_when_queue_full(self, pattern):
        daemon = ServerDaemon(
            pattern.schema,
            "PSE80",
            default_values=pattern.source_values,
            high_water=4,
        )
        server, thread = start_http_server(daemon)
        try:
            # Stall the drain loop so the queue genuinely fills.
            daemon._take_batch = lambda: []
            import time as _time

            _time.sleep(0.05)
            status, _, _ = request(
                server, "POST", "/instances", {"batch": [None] * 4}
            )
            assert status == 202
            status, headers, payload = request(
                server, "POST", "/instances", {"batch": [None] * 2}
            )
            assert status == 429
            assert payload["error"]["message"] == "queue full"
            assert payload["error"]["rejected"] == 2
            assert payload["retry_after"] > 0
            assert int(headers["Retry-After"]) >= 1
        finally:
            del daemon.__dict__["_take_batch"]
            daemon._wake.set()
            server.shutdown()
            server.server_close()
            thread.join(WAIT)
            assert daemon.shutdown()

    def test_503_while_shutting_down(self, pattern):
        daemon = ServerDaemon(
            pattern.schema, "PSE80", default_values=pattern.source_values
        )
        server, thread = start_http_server(daemon)
        try:
            assert daemon.shutdown()
            status, _, payload = request(server, "POST", "/instances", {})
            assert status == 503
            assert payload["error"]["message"] == "shutting down"
        finally:
            server.shutdown()
            server.server_close()
            thread.join(WAIT)


class TestMetricsEndpoint:
    def test_metrics_json_round_trips_to_the_summary(self, stack):
        """summary → /metrics JSON → MetricsSummary equals the original."""
        daemon, server = stack
        submit_and_wait(daemon, server, {"batch": [None] * 5})
        status, _, payload = request(server, "GET", "/metrics")
        assert status == 200
        parsed = MetricsSummary.from_dict(payload["summary"])
        assert parsed == daemon.summary()
        assert parsed.count == 5
        assert payload["server"]["completed"] == 5
        assert payload["config"]["hash"] == daemon.config_digest

    def test_sharded_metrics_sum_query_cache_counters(self, pattern):
        """Across shards the query_cache_* fields are fleet sums."""
        config = ExecutionConfig.from_code("PSE80", shards=2, query_cache=True)
        daemon = ServerDaemon(
            pattern.schema, config, default_values=pattern.source_values
        )
        server, thread = start_http_server(daemon)
        try:
            submit_and_wait(daemon, server, {"batch": [None] * 8})
            _, _, payload = request(server, "GET", "/metrics")
            parsed = MetricsSummary.from_dict(payload["summary"])
            assert parsed == daemon.summary()
            assert parsed.count == 8
            # The sharded facade sums (never averages) the cache counters;
            # the wire value must equal the sum over the shard services.
            shard_summaries = list(daemon.service._executor.shard_summaries())
            for field in (
                "query_cache_hits",
                "query_cache_misses",
                "query_cache_coalesced",
            ):
                total = sum(getattr(s, field) for s in shard_summaries)
                assert getattr(parsed, field) == total, field
            assert parsed.query_cache_misses > 0
        finally:
            server.shutdown()
            server.server_close()
            thread.join(WAIT)
            daemon.shutdown()


class TestEventsEndpoint:
    def test_replay_streams_ndjson_with_typed_events(self, stack):
        daemon, server = stack
        ids = submit_and_wait(daemon, server, {"batch": [None] * 2})
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=WAIT)
        try:
            conn.request("GET", "/events?replay=1&limit=2")
            response = conn.getresponse()
            assert response.status == 200
            assert response.getheader("Content-Type") == "application/x-ndjson"
            lines = response.read().decode().strip().splitlines()
        finally:
            conn.close()
        assert len(lines) == 2
        events = [json.loads(line) for line in lines]
        assert all(
            e["type"] == "instance_complete" and e["instance_id"] in ids
            for e in events
        )

    def test_bad_limit_is_400(self, stack):
        _, server = stack
        status, _, _ = request(server, "GET", "/events?limit=soon")
        assert status == 400


class TestRestart:
    def test_old_handles_resolve_after_restart(self, pattern, tmp_path):
        db = str(tmp_path / "runs.sqlite")

        daemon = ServerDaemon(
            pattern.schema, "PSE80", db=db, default_values=pattern.source_values
        )
        server, thread = start_http_server(daemon)
        try:
            ids = submit_and_wait(daemon, server, {"batch": [None] * 4})
        finally:
            server.shutdown()
            server.server_close()
            thread.join(WAIT)
            assert daemon.shutdown()

        restarted = ServerDaemon(
            pattern.schema, "PSE80", db=db, default_values=pattern.source_values
        )
        server2, thread2 = start_http_server(restarted)
        try:
            for instance_id in ids:
                status, _, payload = request(
                    server2, "GET", f"/instances/{instance_id}"
                )
                assert status == 200
                assert payload["status"] == "done"
                assert payload["origin"] == "store"
        finally:
            server2.shutdown()
            server2.server_close()
            thread2.join(WAIT)
            restarted.shutdown()


class TestHealthzLiveness:
    def test_wedged_drain_loop_is_503(self, pattern):
        daemon = ServerDaemon(
            pattern.schema,
            "PSE80",
            default_values=pattern.source_values,
            stall_after=0.05,
        )
        server, thread = start_http_server(daemon)
        gate = threading.Event()
        try:
            status, _, payload = request(server, "GET", "/healthz")
            assert status == 200 and payload["status"] == "ok"
            # Wedge the loop mid-iteration: it blocks inside _take_batch
            # and stops heartbeating while admitted work queues up.
            daemon._take_batch = lambda: ([], gate.wait(WAIT))[0]
            daemon._wake.set()
            time.sleep(0.2)
            request(server, "POST", "/instances", {})
            status, _, payload = request(server, "GET", "/healthz")
            assert status == 503
            assert payload["status"] == "wedged"
            assert payload["ok"] is False
            assert payload["drain_alive"] is True
        finally:
            gate.set()
            del daemon.__dict__["_take_batch"]
            daemon._wake.set()
            server.shutdown()
            server.server_close()
            thread.join(WAIT)
            daemon.shutdown()


class TestPrometheusEndpoint:
    def test_text_exposition_with_stage_histograms(self, stack):
        daemon, server = stack
        submit_and_wait(daemon, server, {"batch": [None] * 2})
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=WAIT)
        try:
            conn.request("GET", "/metrics?format=prometheus")
            response = conn.getresponse()
            assert response.status == 200
            assert response.getheader("Content-Type").startswith(
                "text/plain; version=0.0.4"
            )
            body = response.read().decode()
        finally:
            conn.close()
        lines = body.splitlines()
        # Valid exposition: every non-comment line is "name{labels} value".
        for line in lines:
            assert line
            if line.startswith("#"):
                assert line.startswith("# TYPE ")
                continue
            name_part, _, value_part = line.rpartition(" ")
            assert name_part and float(value_part) is not None
        assert "# TYPE repro_stage_seconds histogram" in lines
        assert any(
            line.startswith("repro_stage_seconds_bucket")
            and 'stage="decision"' in line
            and 'le="+Inf"' in line
            for line in lines
        )
        assert "repro_server_completed 2" in lines

    def test_unknown_format_is_400(self, stack):
        _, server = stack
        status, _, payload = request(server, "GET", "/metrics?format=xml")
        assert status == 400
        assert payload["error"]["format"] == "xml"


class TestTraceEndpoint:
    def test_disarmed_trace_is_valid_and_unarmed(self, stack):
        daemon, server = stack
        submit_and_wait(daemon, server, {})
        status, _, payload = request(server, "GET", "/trace")
        assert status == 200
        assert payload["metadata"]["armed"] is False
        assert all(e["ph"] == "M" for e in payload["traceEvents"])

    def test_armed_trace_carries_daemon_and_engine_spans(self, pattern):
        config = ExecutionConfig.from_code("PSE80", observe=True)
        daemon = ServerDaemon(
            pattern.schema, config, default_values=pattern.source_values
        )
        server, thread = start_http_server(daemon)
        try:
            submit_and_wait(daemon, server, {"batch": [None] * 2})
            status, _, payload = request(server, "GET", "/trace")
            assert status == 200
            assert payload["metadata"]["armed"] is True
            names = {e["name"] for e in payload["traceEvents"] if e["ph"] == "X"}
            assert "daemon.epoch" in names
            assert "engine.round" in names
        finally:
            server.shutdown()
            server.server_close()
            thread.join(WAIT)
            daemon.shutdown()


class TestEventStreamUnderLoad:
    def test_concurrent_submissions_reach_a_streaming_client(self, stack):
        """An /events client receives every completion while submissions
        arrive concurrently from multiple threads."""
        daemon, server = stack
        expected = 9
        received: list[dict] = []

        def stream():
            # Each instance also emits launch/query_done events, so read
            # until all completions have arrived rather than counting lines.
            conn = http.client.HTTPConnection(
                "127.0.0.1", server.port, timeout=WAIT
            )
            try:
                conn.request("GET", "/events")
                response = conn.getresponse()
                done = 0
                while done < expected:
                    line = response.fp.readline()
                    event = json.loads(line)
                    received.append(event)
                    done += event["type"] == "instance_complete"
            finally:
                conn.close()

        reader = threading.Thread(target=stream)
        reader.start()
        time.sleep(0.1)  # let the subscription attach before submitting

        def submit_batch():
            status, _, _ = request(server, "POST", "/instances", {"batch": [None] * 3})
            assert status == 202

        writers = [threading.Thread(target=submit_batch) for _ in range(3)]
        for w in writers:
            w.start()
        for w in writers:
            w.join(WAIT)
        assert daemon.wait_idle(WAIT)
        reader.join(WAIT)
        assert not reader.is_alive()
        completions = [e for e in received if e["type"] == "instance_complete"]
        assert len(completions) == expected
        assert len({e["instance_id"] for e in completions}) == expected
        # Once the client hangs up, the next publish drops the broken
        # pipe and the subscription is released.
        deadline = time.monotonic() + WAIT
        while daemon._subscribers and time.monotonic() < deadline:
            submit_and_wait(daemon, server, {})
            time.sleep(0.02)
        assert daemon._subscribers == []

    def test_mid_stream_disconnect_releases_the_subscription(self, stack):
        """A client that vanishes mid-stream must not leak its handler
        thread or its fan-out queue."""
        daemon, server = stack
        threads_before = threading.active_count()
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=WAIT)
        conn.request("GET", "/events")
        conn.getresponse()  # headers arrive; the stream is now live
        deadline = time.monotonic() + WAIT
        while not daemon._subscribers and time.monotonic() < deadline:
            time.sleep(0.01)
        assert len(daemon._subscribers) == 1
        conn.close()  # hang up without reading anything
        # The handler notices on its next poll/write and unsubscribes.
        submit_and_wait(daemon, server, {"batch": [None] * 2})
        deadline = time.monotonic() + WAIT
        while daemon._subscribers and time.monotonic() < deadline:
            submit_and_wait(daemon, server, {})
            time.sleep(0.02)
        assert daemon._subscribers == []
        deadline = time.monotonic() + WAIT
        while threading.active_count() > threads_before and time.monotonic() < deadline:
            time.sleep(0.02)
        assert threading.active_count() <= threads_before
        assert daemon.server_stats()["events_dropped"] == 0
