"""Discrete-event simulation kernel."""

import pytest

from repro.errors import SimulationError
from repro.simdb.des import Simulation


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulation()
        log = []
        sim.schedule(3.0, lambda: log.append("c"))
        sim.schedule(1.0, lambda: log.append("a"))
        sim.schedule(2.0, lambda: log.append("b"))
        sim.run()
        assert log == ["a", "b", "c"]
        assert sim.now == 3.0

    def test_ties_run_in_schedule_order(self):
        sim = Simulation()
        log = []
        for tag in "abc":
            sim.schedule(1.0, lambda t=tag: log.append(t))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_events_scheduled_during_events(self):
        sim = Simulation()
        log = []

        def first():
            log.append("first")
            sim.schedule(1.0, lambda: log.append("nested"))

        sim.schedule(1.0, first)
        sim.schedule(5.0, lambda: log.append("last"))
        sim.run()
        assert log == ["first", "nested", "last"]

    def test_schedule_at_absolute_time(self):
        sim = Simulation()
        seen = []
        sim.schedule_at(7.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [7.5]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulation().schedule(-1.0, lambda: None)

    def test_scheduling_into_the_past_rejected(self):
        sim = Simulation()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulation()
        log = []
        event = sim.schedule(1.0, lambda: log.append("x"))
        event.cancel()
        sim.run()
        assert log == []

    def test_pending_excludes_cancelled(self):
        sim = Simulation()
        keep = sim.schedule(1.0, lambda: None)
        drop = sim.schedule(2.0, lambda: None)
        drop.cancel()
        assert sim.pending == 1
        assert not keep.cancelled and drop.cancelled


class TestPriorities:
    def test_priority_orders_same_time_events(self):
        sim = Simulation()
        log = []
        sim.schedule(1.0, lambda: log.append("delivery"), priority=(2, 0))
        sim.schedule(1.0, lambda: log.append("unit-q2"), priority=(1, 2))
        sim.schedule(1.0, lambda: log.append("plain"))
        sim.schedule(1.0, lambda: log.append("unit-q1"), priority=(1, 1))
        sim.run()
        assert log == ["plain", "unit-q1", "unit-q2", "delivery"]

    def test_priority_never_overrides_time(self):
        sim = Simulation()
        log = []
        sim.schedule(2.0, lambda: log.append("early-band"), priority=(0, 0))
        sim.schedule(1.0, lambda: log.append("late-band"), priority=(9, 9))
        sim.run()
        assert log == ["late-band", "early-band"]

    def test_executing_priority_visible_during_dispatch(self):
        sim = Simulation()
        seen = []
        sim.schedule(1.0, lambda: seen.append(sim.executing_priority), priority=(1, 7))
        assert sim.executing_priority is None
        sim.run()
        assert seen == [(1, 7)]
        assert sim.executing_priority is None


class TestCompaction:
    def test_pending_counter_tracks_lifecycle(self):
        sim = Simulation()
        events = [sim.schedule(float(i + 1), lambda: None) for i in range(4)]
        assert sim.pending == 4
        events[0].cancel()
        assert sim.pending == 3
        events[0].cancel()  # double-cancel must not double-count
        assert sim.pending == 3
        sim.step()
        assert sim.pending == 2

    def test_cancel_after_fire_is_noop(self):
        sim = Simulation()
        event = sim.schedule(1.0, lambda: None)
        sim.run()
        event.cancel()
        assert not event.cancelled
        assert sim.pending == 0

    def test_mass_cancellation_compacts_the_heap(self):
        sim = Simulation()
        keep = [sim.schedule(float(i + 1), lambda: None) for i in range(10)]
        drop = [sim.schedule(1000.0 + i, lambda: None) for i in range(500)]
        for event in drop:
            event.cancel()
        # Compaction is amortized: at any point the calendar holds at most
        # max(threshold, live) dead events, never the full 500.
        assert sim._queued_events() - sim.pending <= 65
        assert sim.pending == 10
        sim.run()
        assert sim.events_executed == 10


class TestRunControl:
    def test_run_until_stops_clock(self):
        sim = Simulation()
        log = []
        sim.schedule(1.0, lambda: log.append(1))
        sim.schedule(10.0, lambda: log.append(10))
        sim.run(until=5.0)
        assert log == [1]
        assert sim.now == 5.0
        sim.run()
        assert log == [1, 10]

    def test_run_until_advances_idle_clock(self):
        sim = Simulation()
        sim.run(until=42.0)
        assert sim.now == 42.0

    def test_step(self):
        sim = Simulation()
        log = []
        sim.schedule(1.0, lambda: log.append("a"))
        sim.schedule(2.0, lambda: log.append("b"))
        assert sim.step() and log == ["a"]
        assert sim.step() and log == ["a", "b"]
        assert not sim.step()

    def test_events_executed_counter(self):
        sim = Simulation()
        for _ in range(3):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_executed == 3

    def test_repr(self):
        sim = Simulation()
        sim.schedule(1.0, lambda: None)
        assert "pending=1" in repr(sim)


class TestCompactionStat:
    def test_cancelled_compactions_counts_rebuilds(self):
        sim = Simulation()
        events = [sim.schedule(float(i + 1), lambda: None) for i in range(200)]
        assert sim.cancelled_compactions == 0
        for event in events[:150]:
            event.cancel()
        # 150 dead vs 50 live crosses both thresholds (> 64 and > live).
        assert sim.cancelled_compactions >= 1
        assert sim.pending == 50

    def test_no_compaction_below_live_fraction(self):
        sim = Simulation()
        events = [sim.schedule(float(i + 1), lambda: None) for i in range(300)]
        for event in events[:100]:
            event.cancel()
        # 100 dead vs 200 live: above the absolute floor but below the
        # live fraction — the dead events drain lazily instead.
        assert sim.cancelled_compactions == 0
        sim.run()
        assert sim.events_executed == 200


class TestBucketCancelStorm:
    """Cancel storms concentrated in a single instant bucket: the O(1)
    ``pending`` counter, the compaction counter, and the ``popped``
    accounting of pooled dispatch all stay exact."""

    def test_storm_in_one_bucket_keeps_counters_exact(self):
        from repro.simdb.des import _COMPACT_MIN_CANCELLED

        sim = Simulation()
        storm = 500
        fired = []
        keep = [
            sim.schedule(5.0, (lambda i=i: fired.append(i)), priority=(0, i))
            for i in range(10)
        ]
        doomed = [
            sim.schedule(5.0, lambda: None, priority=(0, 1000 + i)) for i in range(storm)
        ]
        # pending is a maintained counter, not a scan: every cancel is
        # exactly one decrement, even with all 510 events in ONE bucket.
        for index, event in enumerate(doomed):
            event.cancel()
            assert sim.pending == 10 + storm - index - 1
        doomed[0].cancel()  # double-cancel inside the bucket: no drift
        assert sim.pending == 10
        # Compaction cadence is exact: replay the documented policy
        # (sweep when dead passes both the absolute floor and the live
        # fraction) and demand the counter agree sweep-for-sweep.
        from repro.simdb.des import _COMPACT_LIVE_FRACTION

        expected_sweeps, dead, live = 0, 0, 10 + storm
        for _ in range(storm):
            live -= 1
            dead += 1
            if dead > _COMPACT_MIN_CANCELLED and dead > live * _COMPACT_LIVE_FRACTION:
                expected_sweeps += 1
                dead = 0
        assert expected_sweeps >= 3  # the storm actually exercises sweeps
        assert sim.cancelled_compactions == expected_sweeps
        # ...and the dead events still queued match the replica exactly,
        # even though all of them share one bucket key.
        assert sim._queued_events() - sim.pending == dead
        sim.run()
        assert fired == list(range(10))  # sub-priority order, no dead fires
        assert sim.pending == 0
        assert sim._queued_events() == 0

    def test_popped_flags_exact_through_storm_compaction(self):
        """A storm-triggered compaction while a pool is popped must leave
        ``Event.popped`` and the dead-event debt exact: popped members are
        not in any bucket, so the sweep must neither count nor resurrect
        them."""
        sim = Simulation()
        log = []
        doomed = [sim.schedule(5.0, lambda: None) for _ in range(200)]
        survivor = sim.schedule(5.0, lambda: log.append("survivor"))
        holder = []

        def killer():
            log.append("killer")
            pool_victim, sibling = holder
            assert pool_victim.popped and sibling.popped  # in-flight pool
            pool_victim.cancel()  # popped: must NOT add dead-in-queue debt
            for event in doomed:  # storm in the t=5.0 bucket → compaction
                event.cancel()
            assert sim.cancelled_compactions >= 1
            # The sweep ran while three events sat popped; none were
            # returned to a bucket behind the pool's back.
            assert pool_victim.popped and sibling.popped

        first = sim.schedule(1.0, killer)
        holder.append(sim.schedule(1.0, lambda: log.append("victim")))
        holder.append(sim.schedule(1.0, lambda: log.append("sibling")))
        sim.set_batch_consumer(sim.fire_pooled)
        sim.run()
        assert log == ["killer", "sibling", "survivor"]
        assert first.fired and holder[1].fired and not holder[0].fired
        assert sim.pending == 0
        assert sim._queued_events() == 0


class TestInstantPooling:
    def test_step_instant_without_consumer_falls_back_to_step(self):
        sim = Simulation()
        log = []
        sim.schedule(1.0, lambda: log.append("a"))
        sim.schedule(1.0, lambda: log.append("b"))
        assert sim.step_instant()
        assert log == ["a"]  # per-event fallback: one event per call

    def test_pool_spans_one_time_and_band(self):
        sim = Simulation()
        pools = []

        def consumer(events):
            pools.append([e.priority for e in events])
            return sim.fire_pooled(events)

        sim.set_batch_consumer(consumer)
        log = []
        sim.schedule(1.0, lambda: log.append("p1"), priority=(0, 0))
        sim.schedule(1.0, lambda: log.append("p2"), priority=(0, 0))
        sim.schedule(1.0, lambda: log.append("db"), priority=(1, 3))
        sim.schedule(2.0, lambda: log.append("later"), priority=(0, 0))
        sim.run()
        assert log == ["p1", "p2", "db", "later"]
        assert pools == [[(0, 0), (0, 0)], [(1, 3)], [(0, 0)]]

    def test_pooled_run_matches_per_event_order(self):
        def build(pooled):
            sim = Simulation()
            log = []

            def nested(tag):
                log.append(tag)
                if tag == "a":
                    sim.schedule(0.0, lambda: log.append("zero"), priority=(2, 0))
                    sim.schedule(1.0, lambda: log.append("future"))

            sim.schedule(1.0, lambda: nested("a"))
            sim.schedule(1.0, lambda: nested("b"))
            sim.schedule(1.0, lambda: log.append("db"), priority=(1, 1))
            if pooled:
                sim.set_batch_consumer(sim.fire_pooled)
            sim.run()
            return log

        assert build(pooled=True) == build(pooled=False)

    def test_preempting_event_cuts_the_pool(self):
        """A same-time lower-band event scheduled mid-pool must fire in
        between the pool members, exactly as per-event stepping would."""
        sim = Simulation()
        log = []

        def first():
            log.append("first")
            # Band 0 at the same instant: sorts before the remaining
            # band-1 pool member.
            sim.schedule_at(1.0, lambda: log.append("preempt"), priority=(0, 9))

        sim.schedule(1.0, first, priority=(1, 1))
        sim.schedule(1.0, lambda: log.append("second"), priority=(1, 2))
        sim.set_batch_consumer(sim.fire_pooled)
        sim.run()
        assert log == ["first", "preempt", "second"]

    def test_same_band_smaller_subpriority_preempts(self):
        sim = Simulation()
        log = []

        def first():
            log.append("first")
            sim.schedule_at(1.0, lambda: log.append("replan"), priority=(1, 0))

        sim.schedule(1.0, first, priority=(1, 1))
        sim.schedule(1.0, lambda: log.append("second"), priority=(1, 5))
        sim.set_batch_consumer(sim.fire_pooled)
        sim.run()
        assert log == ["first", "replan", "second"]

    def test_pool_member_cancelled_mid_pool_does_not_fire(self):
        sim = Simulation()
        log = []
        victim_holder = []
        sim.schedule(
            1.0, lambda: (log.append("first"), victim_holder[0].cancel())
        )
        victim_holder.append(sim.schedule(1.0, lambda: log.append("second")))
        sim.set_batch_consumer(sim.fire_pooled)
        sim.run()
        assert log == ["first"]
        assert sim.pending == 0

    def test_mid_pool_cancellation_survives_compaction(self):
        """A compaction triggered while pool members are popped must not
        corrupt the dead-event accounting of the popped members."""
        sim = Simulation()
        log = []
        # A big cancellable population at a later time plus one pooled pair.
        later = [sim.schedule(5.0, lambda: None) for _ in range(200)]
        victim_holder = []

        def killer():
            log.append("killer")
            victim_holder[0].cancel()  # popped member: no dead-in-queue debt
            for event in later:        # force a compaction while it is popped
                event.cancel()

        sim.schedule_at(1.0, killer, priority=(0, 0))
        victim_holder.append(sim.schedule(1.0, lambda: log.append("victim")))
        sim.set_batch_consumer(sim.fire_pooled)
        sim.run()
        assert log == ["killer"]
        assert sim.pending == 0
        assert sim.cancelled_compactions >= 1

    def test_second_consumer_rejected_and_clearable(self):
        sim = Simulation()
        sim.set_batch_consumer(sim.fire_pooled)
        sim.set_batch_consumer(sim.fire_pooled)  # same consumer: fine
        with pytest.raises(SimulationError):
            sim.set_batch_consumer(lambda events: len(events))
        sim.set_batch_consumer(None)
        sim.set_batch_consumer(lambda events: sim.fire_pooled(events))

    def test_partial_consumption_requeues_remainder(self):
        sim = Simulation()
        log = []
        sim.schedule(1.0, lambda: log.append("a"))
        sim.schedule(1.0, lambda: log.append("b"))

        def one_at_a_time(events):
            sim.fire_pooled(events[:1])
            return 1

        sim.set_batch_consumer(one_at_a_time)
        sim.run()
        assert log == ["a", "b"]

    def test_preemption_survives_mid_pool_compaction(self):
        """A mid-pool compaction must not blind the preemption check:
        an event scheduled *after* the rebuild that sorts before the
        remaining pool members still fires in between them."""

        def run(pooled):
            sim = Simulation()
            log = []
            later = [sim.schedule(9.0, lambda: None) for _ in range(100)]

            def first():
                log.append("A")
                for event in later:  # dead > 64 and > live: compaction
                    event.cancel()
                sim.schedule_at(1.0, lambda: log.append("X"), priority=(0, 9))

            sim.schedule_at(1.0, first, priority=(1, 1))
            sim.schedule_at(1.0, lambda: log.append("B"), priority=(1, 2))
            if pooled:
                sim.set_batch_consumer(sim.fire_pooled)
            sim.run()
            assert sim.cancelled_compactions >= 1
            return log

        assert run(pooled=False) == ["A", "X", "B"]
        assert run(pooled=True) == ["A", "X", "B"]

    def test_raising_callback_requeues_unfired_pool_members(self):
        """Per-event stepping leaves siblings queued when a callback
        raises; pooled dispatch must restore the popped remainder so a
        recovering caller can run() again without losing events."""
        sim = Simulation()
        log = []

        def boom():
            log.append("boom")
            raise RuntimeError("callback failed")

        sim.schedule(1.0, boom)
        sim.schedule(1.0, lambda: log.append("sibling"))
        sim.schedule(2.0, lambda: log.append("later"))
        sim.set_batch_consumer(sim.fire_pooled)
        with pytest.raises(RuntimeError):
            sim.run()
        assert log == ["boom"]
        assert sim.pending == 2  # sibling + later survived the failure
        sim.run()
        assert log == ["boom", "sibling", "later"]

    def test_executing_priority_visible_during_pooled_dispatch(self):
        sim = Simulation()
        seen = []
        sim.schedule(1.0, lambda: seen.append(sim.executing_priority), priority=(1, 4))
        sim.schedule(1.0, lambda: seen.append(sim.executing_priority), priority=(1, 7))
        sim.set_batch_consumer(sim.fire_pooled)
        sim.run()
        assert seen == [(1, 4), (1, 7)]
        assert sim.executing_priority is None
