"""Discrete-event simulation kernel."""

import pytest

from repro.errors import SimulationError
from repro.simdb.des import Simulation


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulation()
        log = []
        sim.schedule(3.0, lambda: log.append("c"))
        sim.schedule(1.0, lambda: log.append("a"))
        sim.schedule(2.0, lambda: log.append("b"))
        sim.run()
        assert log == ["a", "b", "c"]
        assert sim.now == 3.0

    def test_ties_run_in_schedule_order(self):
        sim = Simulation()
        log = []
        for tag in "abc":
            sim.schedule(1.0, lambda t=tag: log.append(t))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_events_scheduled_during_events(self):
        sim = Simulation()
        log = []

        def first():
            log.append("first")
            sim.schedule(1.0, lambda: log.append("nested"))

        sim.schedule(1.0, first)
        sim.schedule(5.0, lambda: log.append("last"))
        sim.run()
        assert log == ["first", "nested", "last"]

    def test_schedule_at_absolute_time(self):
        sim = Simulation()
        seen = []
        sim.schedule_at(7.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [7.5]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulation().schedule(-1.0, lambda: None)

    def test_scheduling_into_the_past_rejected(self):
        sim = Simulation()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulation()
        log = []
        event = sim.schedule(1.0, lambda: log.append("x"))
        event.cancel()
        sim.run()
        assert log == []

    def test_pending_excludes_cancelled(self):
        sim = Simulation()
        keep = sim.schedule(1.0, lambda: None)
        drop = sim.schedule(2.0, lambda: None)
        drop.cancel()
        assert sim.pending == 1
        assert not keep.cancelled and drop.cancelled


class TestPriorities:
    def test_priority_orders_same_time_events(self):
        sim = Simulation()
        log = []
        sim.schedule(1.0, lambda: log.append("delivery"), priority=(2, 0))
        sim.schedule(1.0, lambda: log.append("unit-q2"), priority=(1, 2))
        sim.schedule(1.0, lambda: log.append("plain"))
        sim.schedule(1.0, lambda: log.append("unit-q1"), priority=(1, 1))
        sim.run()
        assert log == ["plain", "unit-q1", "unit-q2", "delivery"]

    def test_priority_never_overrides_time(self):
        sim = Simulation()
        log = []
        sim.schedule(2.0, lambda: log.append("early-band"), priority=(0, 0))
        sim.schedule(1.0, lambda: log.append("late-band"), priority=(9, 9))
        sim.run()
        assert log == ["late-band", "early-band"]

    def test_executing_priority_visible_during_dispatch(self):
        sim = Simulation()
        seen = []
        sim.schedule(1.0, lambda: seen.append(sim.executing_priority), priority=(1, 7))
        assert sim.executing_priority is None
        sim.run()
        assert seen == [(1, 7)]
        assert sim.executing_priority is None


class TestCompaction:
    def test_pending_counter_tracks_lifecycle(self):
        sim = Simulation()
        events = [sim.schedule(float(i + 1), lambda: None) for i in range(4)]
        assert sim.pending == 4
        events[0].cancel()
        assert sim.pending == 3
        events[0].cancel()  # double-cancel must not double-count
        assert sim.pending == 3
        sim.step()
        assert sim.pending == 2

    def test_cancel_after_fire_is_noop(self):
        sim = Simulation()
        event = sim.schedule(1.0, lambda: None)
        sim.run()
        event.cancel()
        assert not event.cancelled
        assert sim.pending == 0

    def test_mass_cancellation_compacts_the_heap(self):
        sim = Simulation()
        keep = [sim.schedule(float(i + 1), lambda: None) for i in range(10)]
        drop = [sim.schedule(1000.0 + i, lambda: None) for i in range(500)]
        for event in drop:
            event.cancel()
        # Compaction is amortized: at any point the calendar holds at most
        # max(threshold, live) dead events, never the full 500.
        assert len(sim._queue) - sim.pending <= 65
        assert sim.pending == 10
        sim.run()
        assert sim.events_executed == 10


class TestRunControl:
    def test_run_until_stops_clock(self):
        sim = Simulation()
        log = []
        sim.schedule(1.0, lambda: log.append(1))
        sim.schedule(10.0, lambda: log.append(10))
        sim.run(until=5.0)
        assert log == [1]
        assert sim.now == 5.0
        sim.run()
        assert log == [1, 10]

    def test_run_until_advances_idle_clock(self):
        sim = Simulation()
        sim.run(until=42.0)
        assert sim.now == 42.0

    def test_step(self):
        sim = Simulation()
        log = []
        sim.schedule(1.0, lambda: log.append("a"))
        sim.schedule(2.0, lambda: log.append("b"))
        assert sim.step() and log == ["a"]
        assert sim.step() and log == ["a", "b"]
        assert not sim.step()

    def test_events_executed_counter(self):
        sim = Simulation()
        for _ in range(3):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_executed == 3

    def test_repr(self):
        sim = Simulation()
        sim.schedule(1.0, lambda: None)
        assert "pending=1" in repr(sim)
