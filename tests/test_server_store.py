"""SQLite run-record persistence (repro.server.store)."""

import pytest

from repro import ExecutionConfig, NULL
from repro.server import RunStore, config_hash, decode_values, encode_values


def make_record(instance_id="srv-1", status="done", **overrides):
    record = {
        "instance_id": instance_id,
        "schema_name": "pattern-7",
        "status": status,
        "submitted_wall": 100.0,
        "completed_wall": 100.25,
        "source": encode_values({"src": 3}),
        "values": encode_values({"d": 1, "gap": NULL, "pair": (1, 2)}),
        "metrics": {"work_units": 12, "queries_launched": 4},
        "config_hash": "deadbeefdeadbeef",
    }
    record.update(overrides)
    return record


class TestRoundTrip:
    def test_record_then_get(self, tmp_path):
        with RunStore(tmp_path / "runs.sqlite") as store:
            store.record(make_record())
            stored = store.get("srv-1")
        assert stored["instance_id"] == "srv-1"
        assert stored["status"] == "done"
        assert stored["schema_name"] == "pattern-7"
        assert stored["submitted_wall"] == 100.0
        assert stored["completed_wall"] == 100.25
        assert stored["metrics"] == {"work_units": 12, "queries_launched": 4}
        assert stored["config_hash"] == "deadbeefdeadbeef"

    def test_nulls_and_tuples_survive(self, tmp_path):
        """⊥ and tuple values come back exactly via the value encoding."""
        with RunStore(tmp_path / "runs.sqlite") as store:
            store.record(make_record())
            stored = store.get("srv-1")
        decoded = decode_values(stored["values"])
        assert decoded["gap"] is NULL
        assert decoded["pair"] == (1, 2)
        assert decoded["d"] == 1
        assert decode_values(stored["source"]) == {"src": 3}

    def test_missing_values_and_metrics_stay_none(self, tmp_path):
        with RunStore(tmp_path / "runs.sqlite") as store:
            store.record(make_record(status="stalled", values=None, metrics=None))
            stored = store.get("srv-1")
        assert stored["values"] is None
        assert stored["metrics"] is None

    def test_get_unknown_id_is_none(self, tmp_path):
        with RunStore(tmp_path / "runs.sqlite") as store:
            assert store.get("srv-404") is None

    def test_record_many_counts_and_replaces(self, tmp_path):
        with RunStore(tmp_path / "runs.sqlite") as store:
            written = store.record_many(
                [make_record("srv-1"), make_record("srv-2")]
            )
            assert written == 2
            assert store.record_many([]) == 0
            # Same primary key overwrites (INSERT OR REPLACE).
            store.record(make_record("srv-1", status="failed"))
            assert store.count() == 2
            assert store.get("srv-1")["status"] == "failed"

    def test_instance_ids_sorted(self, tmp_path):
        with RunStore(tmp_path / "runs.sqlite") as store:
            store.record_many([make_record("srv-2"), make_record("srv-1")])
            assert store.instance_ids() == ["srv-1", "srv-2"]


class TestNextSequence:
    def test_empty_store_starts_at_one(self, tmp_path):
        with RunStore(tmp_path / "runs.sqlite") as store:
            assert store.next_sequence() == 1

    def test_resumes_past_largest_suffix(self, tmp_path):
        with RunStore(tmp_path / "runs.sqlite") as store:
            store.record_many(
                [make_record("srv-3"), make_record("srv-11"), make_record("srv-2")]
            )
            assert store.next_sequence() == 12

    def test_other_prefixes_ignored(self, tmp_path):
        with RunStore(tmp_path / "runs.sqlite") as store:
            store.record_many([make_record("srv-5"), make_record("job-99")])
            assert store.next_sequence("srv-") == 6
            assert store.next_sequence("job-") == 100


class TestLifecycle:
    def test_survives_reopen(self, tmp_path):
        path = tmp_path / "runs.sqlite"
        with RunStore(path) as store:
            store.record(make_record())
        with RunStore(path) as reopened:
            assert reopened.count() == 1
            assert reopened.get("srv-1")["status"] == "done"

    def test_close_is_idempotent_then_use_raises(self, tmp_path):
        store = RunStore(tmp_path / "runs.sqlite")
        store.close()
        store.close()  # second close is a no-op
        with pytest.raises(RuntimeError, match="closed"):
            store.count()
        with pytest.raises(RuntimeError, match="closed"):
            store.record(make_record())

    def test_repr_reflects_state(self, tmp_path):
        store = RunStore(tmp_path / "runs.sqlite")
        assert "open" in repr(store)
        store.close()
        assert "closed" in repr(store)


class TestWalConcurrency:
    def test_on_disk_store_opens_in_wal_mode(self, tmp_path):
        with RunStore(tmp_path / "runs.sqlite") as store:
            assert store.journal_mode == "wal"

    def test_external_reader_sees_snapshots_during_write_burst(self, tmp_path):
        """A second connection reads consistent counts while the store
        commits epoch batches — WAL + busy_timeout means no ``database
        is locked`` in either direction."""
        import sqlite3
        import threading

        path = tmp_path / "runs.sqlite"
        epochs, per_epoch = 20, 25
        errors: list[BaseException] = []
        counts: list[int] = []
        done = threading.Event()

        def read_loop():
            reader = sqlite3.connect(path, timeout=5.0)
            try:
                while not done.is_set():
                    (count,) = reader.execute("SELECT COUNT(*) FROM runs").fetchone()
                    counts.append(count)
            except BaseException as exc:  # surfaced on the main thread
                errors.append(exc)
            finally:
                reader.close()

        with RunStore(path) as store:
            thread = threading.Thread(target=read_loop)
            thread.start()
            try:
                for epoch in range(epochs):
                    store.record_many(
                        make_record(instance_id=f"srv-{epoch * per_epoch + i}")
                        for i in range(per_epoch)
                    )
            finally:
                done.set()
                thread.join(30.0)
            assert not errors, errors
            assert store.count() == epochs * per_epoch
        # Every observed count is a committed-batch boundary: WAL readers
        # never see a half-applied epoch.
        assert all(count % per_epoch == 0 for count in counts), sorted(set(counts))[:5]
        assert counts, "reader thread never got a snapshot"


class TestConfigHash:
    def test_short_stable_hex(self):
        config = ExecutionConfig.from_code("PSE80")
        digest = config_hash(config)
        assert len(digest) == 16
        int(digest, 16)  # hex
        assert digest == config_hash(ExecutionConfig.from_code("PSE80"))

    def test_different_recipes_differ(self):
        plain = config_hash(ExecutionConfig.from_code("PSE80"))
        cached = config_hash(
            ExecutionConfig.from_code("PSE80", query_cache=True)
        )
        other_code = config_hash(ExecutionConfig.from_code("PCE0"))
        assert len({plain, cached, other_code}) == 3

    def test_rich_backend_options_fall_back_to_repr(self):
        # A non-declarative option defeats config_to_dict; the repr
        # fallback must still produce a digest rather than raise.
        config = ExecutionConfig.from_code(
            "PCE0", backend_options={"fn": object()}
        )
        digest = config_hash(config)
        assert len(digest) == 16


class TestValueCodec:
    def test_encode_decode_inverse(self):
        values = {"a": 1, "b": NULL, "c": (2, NULL), "d": "text"}
        assert decode_values(encode_values(values)) == values

    def test_none_passes_through(self):
        assert encode_values(None) is None
        assert decode_values(None) is None


class TestSchemaMigration:
    LEGACY_SCHEMA = """
        CREATE TABLE runs (
            instance_id TEXT PRIMARY KEY,
            schema_name TEXT NOT NULL,
            status TEXT NOT NULL,
            submitted_wall REAL NOT NULL,
            completed_wall REAL,
            source_json TEXT NOT NULL,
            values_json TEXT,
            metrics_json TEXT,
            config_hash TEXT NOT NULL
        )
    """

    def _make_legacy_db(self, path):
        """A database from before the started_wall column existed."""
        import json
        import sqlite3

        conn = sqlite3.connect(path)
        conn.execute(self.LEGACY_SCHEMA)
        conn.execute(
            "INSERT INTO runs VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
            ("srv-legacy", "pattern-7", "done", 100.0, 100.25,
             json.dumps(encode_values({"src": 3})), None, None,
             "deadbeefdeadbeef"),
        )
        conn.commit()
        conn.close()

    def test_legacy_db_gains_started_wall(self, tmp_path):
        path = tmp_path / "runs.sqlite"
        self._make_legacy_db(path)
        with RunStore(path) as store:
            stored = store.get("srv-legacy")
            assert stored["status"] == "done"
            assert stored["started_wall"] is None
            # New writes carry the column; old rows stay NULL-tolerant.
            store.record(make_record("srv-new", started_wall=100.1))
            assert store.get("srv-new")["started_wall"] == 100.1
            assert store.get("srv-legacy")["started_wall"] is None
            assert store.count() == 2

    def test_migration_preserves_wal_mode(self, tmp_path):
        path = tmp_path / "runs.sqlite"
        self._make_legacy_db(path)
        with RunStore(path) as store:
            (mode,) = store._conn.execute("PRAGMA journal_mode").fetchone()
            assert mode == "wal"

    def test_migration_is_idempotent_across_reopens(self, tmp_path):
        path = tmp_path / "runs.sqlite"
        self._make_legacy_db(path)
        for _ in range(2):
            with RunStore(path) as store:
                assert store.get("srv-legacy")["started_wall"] is None


class TestTimestampsAndLatencies:
    def test_started_wall_round_trips(self, tmp_path):
        with RunStore(tmp_path / "runs.sqlite") as store:
            store.record(make_record(started_wall=100.05))
            stored = store.get("srv-1")
        assert stored["started_wall"] == 100.05
        assert stored["submitted_wall"] <= stored["started_wall"]
        assert stored["started_wall"] <= stored["completed_wall"]

    def test_absent_started_wall_defaults_to_none(self, tmp_path):
        with RunStore(tmp_path / "runs.sqlite") as store:
            store.record(make_record())
            assert store.get("srv-1")["started_wall"] is None

    def test_latencies_are_completed_minus_submitted(self, tmp_path):
        with RunStore(tmp_path / "runs.sqlite") as store:
            store.record_many(
                [
                    make_record("srv-1", completed_wall=100.25),
                    make_record("srv-2", completed_wall=100.5, started_wall=100.1),
                    make_record("srv-3", status="stalled", completed_wall=None),
                ]
            )
            latencies = store.latencies()
        # Incomplete rows are excluded; NULL started_wall rows still count.
        assert sorted(latencies) == [pytest.approx(0.25), pytest.approx(0.5)]

    def test_latencies_respect_limit_and_recency(self, tmp_path):
        with RunStore(tmp_path / "runs.sqlite") as store:
            store.record_many(
                [
                    make_record(f"srv-{i}", completed_wall=100.0 + i)
                    for i in range(1, 6)
                ]
            )
            newest_two = store.latencies(limit=2)
        assert newest_two == [pytest.approx(5.0), pytest.approx(4.0)]
