"""Kleene three-valued logic."""

import pytest

from repro.core.tri import Tri, from_bool, tri_all, tri_and, tri_any, tri_not, tri_or

T, U, F = Tri.TRUE, Tri.UNKNOWN, Tri.FALSE


class TestTruthTables:
    @pytest.mark.parametrize(
        "a,b,expected",
        [
            (T, T, T), (T, U, U), (T, F, F),
            (U, T, U), (U, U, U), (U, F, F),
            (F, T, F), (F, U, F), (F, F, F),
        ],
    )
    def test_and(self, a, b, expected):
        assert tri_and(a, b) is expected

    @pytest.mark.parametrize(
        "a,b,expected",
        [
            (T, T, T), (T, U, T), (T, F, T),
            (U, T, T), (U, U, U), (U, F, U),
            (F, T, T), (F, U, U), (F, F, F),
        ],
    )
    def test_or(self, a, b, expected):
        assert tri_or(a, b) is expected

    @pytest.mark.parametrize("a,expected", [(T, F), (F, T), (U, U)])
    def test_not(self, a, expected):
        assert tri_not(a) is expected


class TestAggregates:
    def test_all_empty_is_true(self):
        assert tri_all([]) is T

    def test_any_empty_is_false(self):
        assert tri_any([]) is F

    def test_all_false_dominates_unknown(self):
        assert tri_all([T, U, F]) is F

    def test_all_unknown_absorbs_true(self):
        assert tri_all([T, U, T]) is U

    def test_any_true_dominates_unknown(self):
        assert tri_any([F, U, T]) is T

    def test_any_unknown_absorbs_false(self):
        assert tri_any([F, U, F]) is U

    def test_all_short_circuits_on_false(self):
        def generate():
            yield F
            raise AssertionError("should not be consumed")

        assert tri_all(generate()) is F

    def test_any_short_circuits_on_true(self):
        def generate():
            yield T
            raise AssertionError("should not be consumed")

        assert tri_any(generate()) is T


class TestBasics:
    def test_from_bool(self):
        assert from_bool(True) is T
        assert from_bool(False) is F

    def test_known(self):
        assert T.known and F.known and not U.known

    def test_repr(self):
        assert repr(T) == "TRUE"
        assert repr(U) == "UNKNOWN"

    def test_demorgan_holds_in_kleene(self):
        for a in Tri:
            for b in Tri:
                assert tri_not(tri_and(a, b)) is tri_or(tri_not(a), tri_not(b))
                assert tri_not(tri_or(a, b)) is tri_and(tri_not(a), tri_not(b))
