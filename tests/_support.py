"""Shared builders for the test suite."""

from __future__ import annotations

from typing import Mapping, Sequence

from repro import (
    Attribute,
    Comparison,
    DecisionFlowSchema,
    Engine,
    IdealDatabase,
    NULL,
    Op,
    QueryTask,
    Simulation,
    Strategy,
    SynthesisTask,
)
from repro.core.tasks import constant


def q(name: str, inputs: Sequence[str] = (), value: object = None, cost: int = 1, fn=None) -> QueryTask:
    """Shorthand query-task builder."""
    return QueryTask(f"q_{name}", inputs, fn or constant(value), cost)


def syn(name: str, inputs: Sequence[str], fn) -> SynthesisTask:
    return SynthesisTask(f"s_{name}", inputs, fn)


def add_inputs(values: Mapping[str, object]) -> object:
    """Sum numeric inputs, treating ⊥ as 0 (tasks must cope with ⊥)."""
    return sum(v for v in values.values() if v is not NULL and isinstance(v, (int, float)))


def diamond_schema() -> tuple[DecisionFlowSchema, dict[str, object]]:
    """source s → a (always), b (only if s > 10) → target t = a + b.

    With s = 5 the b branch is disabled and t sees ⊥ for it.
    """
    attributes = [
        Attribute("s"),
        Attribute("a", task=q("a", inputs=("s",), value=1, cost=2)),
        Attribute(
            "b",
            task=q("b", inputs=("s",), value=10, cost=3),
            condition=Comparison("s", Op.GT, 10),
        ),
        Attribute(
            "t",
            task=SynthesisTask("t_sum", ("a", "b"), add_inputs),
            is_target=True,
        ),
    ]
    return DecisionFlowSchema(attributes, name="diamond"), {"s": 5}


def chain_schema(length: int = 4, cost: int = 1) -> tuple[DecisionFlowSchema, dict[str, object]]:
    """source → c1 → c2 → ... → c<length> (target), all query tasks."""
    attributes = [Attribute("s")]
    previous = "s"
    for index in range(1, length + 1):
        name = f"c{index}"
        attributes.append(
            Attribute(
                name,
                task=q(name, inputs=(previous,), value=index, cost=cost),
                is_target=(index == length),
            )
        )
        previous = name
    return DecisionFlowSchema(attributes, name=f"chain{length}"), {"s": 0}


def run_engine(
    schema: DecisionFlowSchema,
    code: str,
    source_values: Mapping[str, object],
    halt_policy: str = "cancel",
):
    """Run one instance on a fresh ideal database; returns (metrics, instance)."""
    simulation = Simulation()
    engine = Engine(schema, Strategy.parse(code), IdealDatabase(simulation), halt_policy)
    instance = engine.submit_instance(source_values)
    simulation.run()
    return instance.metrics, instance
