"""Shared builders for the test suite."""

from __future__ import annotations

from typing import Mapping, Sequence

from repro import (
    Attribute,
    Comparison,
    DbParams,
    DecisionFlowSchema,
    Engine,
    IdealDatabase,
    NULL,
    Op,
    PatternParams,
    QueryTask,
    Simulation,
    SimulatedDatabase,
    Strategy,
    SynthesisTask,
    generate_pattern,
)
from repro.core.tasks import constant
from repro.simdb.database import DatabaseServer, ProfiledDatabase
from repro.simdb.profiler import DbFunction
from repro.workload.generator import GeneratedPattern


def q(name: str, inputs: Sequence[str] = (), value: object = None, cost: int = 1, fn=None) -> QueryTask:
    """Shorthand query-task builder."""
    return QueryTask(f"q_{name}", inputs, fn or constant(value), cost)


def syn(name: str, inputs: Sequence[str], fn) -> SynthesisTask:
    return SynthesisTask(f"s_{name}", inputs, fn)


def add_inputs(values: Mapping[str, object]) -> object:
    """Sum numeric inputs, treating ⊥ as 0 (tasks must cope with ⊥)."""
    return sum(v for v in values.values() if v is not NULL and isinstance(v, (int, float)))


def diamond_schema() -> tuple[DecisionFlowSchema, dict[str, object]]:
    """source s → a (always), b (only if s > 10) → target t = a + b.

    With s = 5 the b branch is disabled and t sees ⊥ for it.
    """
    attributes = [
        Attribute("s"),
        Attribute("a", task=q("a", inputs=("s",), value=1, cost=2)),
        Attribute(
            "b",
            task=q("b", inputs=("s",), value=10, cost=3),
            condition=Comparison("s", Op.GT, 10),
        ),
        Attribute(
            "t",
            task=SynthesisTask("t_sum", ("a", "b"), add_inputs),
            is_target=True,
        ),
    ]
    return DecisionFlowSchema(attributes, name="diamond"), {"s": 5}


def chain_schema(length: int = 4, cost: int = 1) -> tuple[DecisionFlowSchema, dict[str, object]]:
    """source → c1 → c2 → ... → c<length> (target), all query tasks."""
    attributes = [Attribute("s")]
    previous = "s"
    for index in range(1, length + 1):
        name = f"c{index}"
        attributes.append(
            Attribute(
                name,
                task=q(name, inputs=(previous,), value=index, cost=cost),
                is_target=(index == length),
            )
        )
        previous = name
    return DecisionFlowSchema(attributes, name=f"chain{length}"), {"s": 0}


def run_engine(
    schema: DecisionFlowSchema,
    code: str,
    source_values: Mapping[str, object],
    halt_policy: str = "cancel",
):
    """Run one instance on a fresh ideal database; returns (metrics, instance)."""
    simulation = Simulation()
    engine = Engine(schema, Strategy.parse(code), IdealDatabase(simulation), halt_policy)
    instance = engine.submit_instance(source_values)
    simulation.run()
    return instance.metrics, instance


# -- differential-scenario helpers ---------------------------------------------
#
# Shared by the kernel differential suite (coalesced vs per-unit databases,
# tests/test_simdb_differential.py) and the engine differential suite
# (reference vs batched engines, tests/test_engine_differential.py), so
# there is exactly one scenario generator to keep honest.

#: A rising contention curve so Gmpl changes genuinely re-price units.
RISING_DB = DbFunction(
    ((1.0, 10.0), (2.0, 14.0), (4.0, 21.0), (8.0, 33.0), (16.0, 61.0))
)


def make_database(
    backend: str,
    kernel: str,
    sim: Simulation,
    seed: int,
    failure_prob: float = 0.0,
) -> DatabaseServer:
    """A fresh database server of the named backend bound to *sim*.

    ``kernel`` selects the coalesced or per-unit cost model for the
    ideal/profiled servers; the bounded server is inherently per-visit
    and ignores it.
    """
    if backend == "ideal":
        return IdealDatabase(sim, failure_prob=failure_prob, seed=seed, kernel=kernel)
    if backend == "profiled":
        return ProfiledDatabase(
            sim, RISING_DB, failure_prob=failure_prob, seed=seed, kernel=kernel
        )
    if backend == "bounded":
        return SimulatedDatabase(sim, DbParams(failure_prob=failure_prob), seed=seed)
    raise ValueError(f"unknown backend {backend!r}")


def backend_options(backend: str, seed: int, failure_prob: float = 0.0) -> dict:
    """Registry ``backend_options`` matching :func:`make_database` exactly.

    The sharded differential suite builds services through the backend
    registry (one fresh replica per shard); these options make the
    registry path produce the same substrate :func:`make_database` wires
    by hand, so both differential suites execute the same databases.
    """
    if backend == "ideal":
        return {"seed": seed, "failure_prob": failure_prob}
    if backend == "profiled":
        return {"db_function": RISING_DB, "seed": seed, "failure_prob": failure_prob}
    if backend == "bounded":
        return {"params": DbParams(failure_prob=failure_prob), "seed": seed}
    raise ValueError(f"unknown backend {backend!r}")


def scenario_pattern(
    seed: int,
    *,
    nb_nodes: int = 24,
    nb_rows: int = 4,
    pct_enabled: float = 50.0,
    max_cost: int = 6,
) -> GeneratedPattern:
    """The generated schema pattern the differential scenarios execute."""
    return generate_pattern(
        PatternParams(
            nb_nodes=nb_nodes,
            nb_rows=nb_rows,
            pct_enabled=pct_enabled,
            max_cost=max_cost,
            seed=seed,
        )
    )
