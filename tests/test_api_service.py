"""The repro.api facade: DecisionService, InstanceHandle, observer events."""

import pytest

from repro import (
    Attribute,
    Comparison,
    DecisionFlowSchema,
    Op,
    PatternParams,
    QueryTask,
    Strategy,
    SynthesisTask,
    generate_pattern,
    run_once,
)
from repro.api import (
    DecisionService,
    EventLog,
    ExecutionConfig,
    InstanceCompleteEvent,
    InstanceHandle,
    LaunchEvent,
    QueryDoneEvent,
)
from repro.errors import ExecutionError
from tests._support import chain_schema, diamond_schema


PATTERN = generate_pattern(PatternParams(nb_nodes=16, nb_rows=3, pct_enabled=50, seed=0))


class TestServiceBasics:
    def test_submit_and_result(self):
        schema, source_values = diamond_schema()
        service = DecisionService(schema, ExecutionConfig.from_code("PCE0"))
        handle = service.submit(source_values)
        assert not handle.done
        result = handle.result()
        assert handle.done
        assert result == {"t": 1}  # b disabled at s=5, so t = a = 1
        assert handle.metrics.work_units == 2

    def test_accepts_code_string_and_strategy(self):
        schema, source_values = diamond_schema()
        for config in ("PCE0", Strategy.parse("PCE0"), ExecutionConfig.from_code("PCE0")):
            service = DecisionService(schema, config)
            assert service.config.code == "PCE0"
            assert service.submit(source_values).wait().done

    def test_default_config_is_pce0_on_ideal(self):
        schema, source_values = diamond_schema()
        service = DecisionService(schema)
        assert service.config.code == "PCE0"
        assert service.backend.name == "ideal"
        service.submit(source_values).wait()

    def test_prebuilt_backend_rejects_any_backend_options(self):
        from repro.api import create_backend

        schema, _ = diamond_schema()
        prebuilt = create_backend("ideal")
        with pytest.raises(ValueError, match="pre-built Backend"):
            DecisionService(schema, backend=prebuilt, seed=3)
        with pytest.raises(ValueError, match="pre-built Backend"):
            DecisionService(
                schema,
                ExecutionConfig(backend_options={"seed": 5}),
                backend=prebuilt,
            )

    def test_backend_argument_overrides_config(self):
        schema, source_values = diamond_schema()
        service = DecisionService(
            schema, ExecutionConfig.from_code("PCE0"), backend="bounded", seed=3
        )
        assert service.backend.name == "bounded"
        assert service.config.backend == "bounded"
        assert service.config.backend_options["seed"] == 3
        metrics = service.submit(source_values).wait()
        assert metrics.elapsed > 2.0  # ms clock, not unit ticks

    def test_reproduces_run_once_exactly(self):
        """Acceptance: the facade must match run_once on identical seeds."""
        for code in ("PSE80", "PCE0", "PSC100"):
            reference = run_once(PATTERN, Strategy.parse(code))
            service = DecisionService(
                PATTERN.schema, ExecutionConfig.from_code(code), backend="ideal"
            )
            metrics = service.submit(PATTERN.source_values).wait()
            assert metrics.work_units == reference.work_units
            assert metrics.elapsed == reference.elapsed

    def test_handle_value_and_instance_access(self):
        schema, source_values = diamond_schema()
        service = DecisionService(schema)
        handle = service.submit(source_values)
        handle.wait()
        assert handle.value("a") == 1
        assert handle.instance.done
        assert "done" in repr(handle)

    def test_missing_source_values_rejected_at_submit(self):
        schema, _ = chain_schema(length=2)
        service = DecisionService(schema)
        with pytest.raises(ExecutionError, match="missing source values"):
            service.submit({})

    def test_wait_reports_stall_when_clock_runs_dry(self):
        schema, source_values = chain_schema(length=2)
        service = DecisionService(schema)
        handle = service.submit(source_values, at=10.0)
        # Drain the (empty) event queue up to t=5: the instance has not
        # even started, so wait() must not claim success.
        service.run(until=5.0)
        assert not handle.done
        handle.wait()  # a full run reaches the start event and finishes
        assert handle.done

    def test_duplicate_instance_id_rejected(self):
        schema, source_values = diamond_schema()
        service = DecisionService(schema)
        service.submit(source_values, instance_id="dup")
        with pytest.raises(ExecutionError, match="duplicate instance id"):
            service.submit(source_values, instance_id="dup")

    def test_summary_and_handles(self):
        schema, source_values = diamond_schema()
        service = DecisionService(schema)
        for _ in range(3):
            service.submit(source_values)
        service.run()
        assert len(service.handles) == 3
        assert len(service.completed) == 3
        summary = service.summary()
        assert summary.count == 3
        assert summary.mean_work == 2.0
        assert "3/3 done" in repr(service)

    def test_summary_of_empty_service_is_zeroed(self):
        """Regression: no completed instances must not raise ValueError."""
        schema, _ = diamond_schema()
        service = DecisionService(schema)
        summary = service.summary()
        assert summary.count == 0
        assert summary.total_work == 0
        assert summary.mean_work == 0.0
        assert summary.std_work == 0.0
        assert summary.mean_elapsed == 0.0
        assert summary.mean_queries_launched == 0.0
        assert summary.mean_time_in_units() == 0.0
        assert summary.mean_time_in_seconds() == 0.0

    def test_summary_with_only_inflight_instances_is_zeroed(self):
        """Submitted-but-unfinished instances do not enter the summary."""
        schema, source_values = diamond_schema()
        service = DecisionService(schema)
        service.submit(source_values, at=10.0)
        summary = service.summary()
        assert summary.count == 0
        service.run()
        assert service.summary().count == 1


class TestArrivalHelpers:
    def test_submit_stream_with_shared_values(self):
        schema, source_values = diamond_schema()
        service = DecisionService(schema)
        handles = service.submit_stream([0.0, 5.0, 9.0], values=source_values)
        assert [h.done for h in handles] == [True] * 3
        starts = [h.metrics.start_time for h in handles]
        assert starts == [0.0, 5.0, 9.0]

    def test_submit_stream_with_per_instance_values(self):
        schema, source_values = diamond_schema()
        service = DecisionService(schema)
        handles = service.submit_stream(
            [(0.0, {"s": 5}), (1.0, {"s": 50})]
        )
        assert handles[0].result() == {"t": 1}  # b disabled
        assert handles[1].result() == {"t": 11}  # b enabled: 1 + 10

    def test_submit_stream_callable_values(self):
        schema, _ = diamond_schema()
        service = DecisionService(schema)
        handles = service.submit_stream([0.0, 1.0], values=lambda i: {"s": 50 * i})
        assert handles[0].result() == {"t": 1}
        assert handles[1].result() == {"t": 11}

    def test_submit_stream_no_run(self):
        schema, source_values = diamond_schema()
        service = DecisionService(schema)
        handles = service.submit_stream([0.0], values=source_values, run=False)
        assert not handles[0].done
        service.run()
        assert handles[0].done

    def test_run_closed_bounds_concurrency(self):
        schema, source_values = chain_schema(length=3, cost=2)
        service = DecisionService(schema)
        in_flight, max_in_flight = [0], [0]

        service.on_launch(lambda e: None)  # exercise multiple subscribers

        @service.on_instance_complete
        def track_done(event):
            in_flight[0] -= 1

        original_submit = service.engine.submit_instance

        def counting_submit(*args, **kwargs):
            in_flight[0] += 1
            max_in_flight[0] = max(max_in_flight[0], in_flight[0])
            return original_submit(*args, **kwargs)

        service.engine.submit_instance = counting_submit
        handles = service.run_closed(6, concurrency=2, values=source_values)
        assert len(handles) == 6
        assert all(h.done for h in handles)
        assert max_in_flight[0] <= 2

    def test_run_closed_serializes_at_concurrency_one(self):
        schema, source_values = chain_schema(length=2, cost=3)
        service = DecisionService(schema)
        handles = service.run_closed(3, values=source_values)
        # Each instance takes 6 ticks; strictly one at a time → 18 total.
        assert service.now == 18.0
        starts = [h.metrics.start_time for h in handles]
        assert starts == [0.0, 6.0, 12.0]

    def test_run_closed_validation(self):
        schema, _ = diamond_schema()
        service = DecisionService(schema)
        with pytest.raises(ValueError):
            service.run_closed(0)
        with pytest.raises(ValueError):
            service.run_closed(1, concurrency=0)


class TestObserverHooks:
    def test_launch_then_complete_ordering(self):
        """Acceptance: launches of an instance precede its completion event."""
        service = DecisionService(drain_share_schema(), "PSE100")
        events = []
        service.on_launch(events.append)
        service.on_query_done(events.append)
        service.on_instance_complete(events.append)
        service.submit({"s": "k", "flag": 1}).wait()

        kinds = [type(e).__name__ for e in events]
        assert kinds[-1] == "InstanceCompleteEvent"
        assert kinds.count("InstanceCompleteEvent") == 1
        launches = [e for e in events if isinstance(e, LaunchEvent)]
        # PSE100 launches c eagerly and big speculatively (condition on c).
        assert {e.attribute for e in launches} == {"c", "big"}
        assert [e.speculative for e in launches if e.attribute == "big"] == [True]
        # Every launch precedes its query completion, which precedes the
        # instance completion; times are monotone in simulated time.
        times = [e.time for e in events]
        assert times == sorted(times)
        launched = set()
        for event in events:
            if isinstance(event, LaunchEvent):
                launched.add(event.attribute)
            elif isinstance(event, QueryDoneEvent):
                assert event.attribute in launched

    def test_query_done_events_carry_units(self):
        schema, source_values = chain_schema(length=2, cost=3)
        service = DecisionService(schema)
        done_events = []
        service.on_query_done(done_events.append)
        service.submit(source_values).wait()
        assert [e.units for e in done_events] == [3, 3]
        assert all(e.completed for e in done_events)

    def test_attach_log_records_everything(self):
        schema, source_values = diamond_schema()
        service = DecisionService(schema, "PCE100")
        log = service.attach_log()
        service.submit(source_values).wait()
        assert isinstance(log, EventLog)
        assert len(log) > 0
        assert len(log.of_type(InstanceCompleteEvent)) == 1
        assert len(log.of_type(LaunchEvent)) == len(log.of_type(QueryDoneEvent))

    def test_multi_instance_events_tagged_by_id(self):
        schema, source_values = diamond_schema()
        service = DecisionService(schema)
        log = service.attach_log()
        first = service.submit(source_values, instance_id="one")
        second = service.submit(source_values, instance_id="two")
        service.run()
        completes = log.of_type(InstanceCompleteEvent)
        assert {e.instance_id for e in completes} == {"one", "two"}
        assert first.done and second.done

    def test_shared_launches_are_flagged(self):
        schema = DecisionFlowSchema(
            [
                Attribute("k"),
                Attribute(
                    "t",
                    task=QueryTask("q_t", ("k",), lambda v: v["k"], 2),
                    is_target=True,
                ),
            ]
        )
        service = DecisionService(
            schema, ExecutionConfig.from_code("PCE100", share_results=True)
        )
        log = service.attach_log()
        service.submit({"k": 1}, at=0.0)
        service.submit({"k": 1}, at=1.0)
        service.run()
        shared = [e.shared for e in log.of_type(LaunchEvent)]
        assert shared.count(None) == 1
        assert shared.count("join") == 1


def drain_share_schema() -> DecisionFlowSchema:
    """A flow whose speculative 10-unit query outlives its issuer.

    ``big`` is keyed only by the shared source ``s`` (so two instances
    share it) but guarded by a condition on the per-instance ``c``; an
    instance with ``flag=0`` disables ``big`` and finishes at t=2 while
    the big query is still in flight.
    """
    return DecisionFlowSchema(
        [
            Attribute("s"),
            Attribute("flag"),
            Attribute("c", task=QueryTask("q_c", ("flag",), lambda v: v["flag"], 2)),
            Attribute(
                "big",
                task=QueryTask("q_big", ("s",), lambda v: f"big-{v['s']}", 10),
                condition=Comparison("c", Op.EQ, 1),
            ),
            Attribute(
                "t",
                task=SynthesisTask("s_t", ("c", "big"), lambda v: (v["c"], v["big"])),
                is_target=True,
            ),
        ],
        name="drain-share",
    )


class TestDrainWithSharing:
    """halt_policy='drain' × share_results=True: waiters must resolve."""

    @pytest.mark.parametrize("halt_policy", ["drain", "cancel"])
    def test_waiter_resolves_after_issuer_finishes(self, halt_policy):
        service = DecisionService(
            drain_share_schema(),
            ExecutionConfig.from_code(
                "PSE100", halt_policy=halt_policy, share_results=True
            ),
        )
        issuer = service.submit({"s": "k", "flag": 0})
        waiter = service.submit({"s": "k", "flag": 1})
        service.run()
        assert issuer.done and waiter.done
        # The issuer disabled `big` and finished early, at t=2 ...
        assert issuer.metrics.finish_time == 2.0
        # ... while the waiter's target needed the shared big query,
        # resolved by the issuer's in-flight launch completing at t=10.
        assert waiter.result() == {"t": (1, "big-k")}
        assert waiter.metrics.finish_time == 10.0
        assert waiter.metrics.shared_joins == 1
        # Only one big query ever hit the database: 2 + 2 + 10 units.
        assert service.database.total_units == 14

    def test_drain_books_post_completion_work_to_issuer(self):
        service = DecisionService(
            drain_share_schema(),
            ExecutionConfig.from_code("PSE100", halt_policy="drain", share_results=True),
        )
        issuer = service.submit({"s": "k", "flag": 0})
        waiter = service.submit({"s": "k", "flag": 1})
        service.run()
        # Drain semantics: the issuer's query ran to completion and its
        # units are booked to the issuer, not the waiter.
        assert issuer.metrics.work_units == 12
        assert waiter.metrics.work_units == 2
        assert waiter.done
