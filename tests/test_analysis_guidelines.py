"""Guideline maps: Pareto frontiers of (Work, minT)."""

from repro.analysis.guidelines import (
    FrontierStep,
    StrategyPoint,
    guideline_frontier,
    min_time_for_budget,
)


def points(*triples):
    return [StrategyPoint(code, work, time) for code, work, time in triples]


class TestFrontier:
    def test_dominated_points_dropped(self):
        frontier = guideline_frontier(
            points(("slow", 10.0, 100.0), ("bad", 20.0, 120.0), ("fast", 30.0, 50.0))
        )
        assert [s.code for s in frontier] == ["slow", "fast"]

    def test_sorted_by_work(self):
        frontier = guideline_frontier(
            points(("c", 30.0, 40.0), ("a", 10.0, 100.0), ("b", 20.0, 60.0))
        )
        assert [s.work for s in frontier] == [10.0, 20.0, 30.0]
        assert [s.time_units for s in frontier] == [100.0, 60.0, 40.0]

    def test_ties_prefer_less_work_then_code(self):
        frontier = guideline_frontier(
            points(("z", 10.0, 50.0), ("a", 10.0, 50.0), ("expensive", 20.0, 50.0))
        )
        assert len(frontier) == 1
        assert frontier[0].code == "a"

    def test_single_point(self):
        frontier = guideline_frontier(points(("only", 5.0, 9.0)))
        assert frontier == [FrontierStep(5.0, 9.0, "only")]

    def test_empty(self):
        assert guideline_frontier([]) == []

    def test_strictly_decreasing_times(self):
        frontier = guideline_frontier(
            points(
                ("a", 10.0, 100.0),
                ("b", 15.0, 100.0),   # same time, more work → dropped
                ("c", 20.0, 80.0),
                ("d", 25.0, 80.0),    # dropped
                ("e", 30.0, 10.0),
            )
        )
        times = [s.time_units for s in frontier]
        assert times == sorted(times, reverse=True)
        assert len(set(times)) == len(times)


class TestBudgetReading:
    def frontier(self):
        return guideline_frontier(
            points(("seq", 10.0, 100.0), ("mid", 20.0, 60.0), ("par", 40.0, 20.0))
        )

    def test_generous_budget_gets_best(self):
        step = min_time_for_budget(self.frontier(), 100.0)
        assert step.code == "par"

    def test_tight_budget_gets_cheapest(self):
        step = min_time_for_budget(self.frontier(), 12.0)
        assert step.code == "seq"

    def test_exact_boundary_included(self):
        step = min_time_for_budget(self.frontier(), 20.0)
        assert step.code == "mid"

    def test_infeasible_budget_returns_none(self):
        # The paper's "no implementation can guarantee a work limit of 25
        # units with schemas of 8 rows" case.
        assert min_time_for_budget(self.frontier(), 5.0) is None
