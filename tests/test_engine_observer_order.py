"""EngineObserver ordering guarantees, asserted against both engines.

Per instance, the engine promises:

* ``on_instance_start`` fires first, exactly once;
* every ``on_launch`` falls strictly between start and completion (the
  engine never decides a launch for a finished instance);
* each attribute is launched at most once, and its ``on_query_done``
  (if any) follows its ``on_launch``;
* ``on_instance_complete`` fires exactly once, after the instance's
  targets stabilized;
* the only events that may trail completion are ``on_query_done``
  notifications — queries still in flight when the instance halted
  (cancelled under ``halt_policy="cancel"``, run to completion under
  ``"drain"``).

The scenarios deliberately include result sharing (hit/join launches)
and cancellation pressure (halt-cancel plus ``cancel_unneeded``), the
paths most likely to scramble hook ordering.
"""

from __future__ import annotations

import pytest

from repro import BatchedEngine, Engine, Simulation, Strategy

from tests._support import make_database, scenario_pattern

ENGINE_CLASSES = {"reference": Engine, "batched": BatchedEngine}


class OrderRecorder:
    def __init__(self):
        self.by_instance: dict[str, list[tuple]] = {}

    def _record(self, instance, event: tuple) -> None:
        self.by_instance.setdefault(instance.instance_id, []).append(event)

    def on_instance_start(self, instance):
        self._record(instance, ("start",))

    def on_launch(self, instance, name, *, speculative, shared):
        self._record(instance, ("launch", name, shared))

    def on_query_done(self, instance, name, *, units, completed):
        self._record(instance, ("done", name, completed))

    def on_instance_complete(self, instance):
        self._record(instance, ("complete",))


def run_recorded(engine_kind: str, *, code: str, halt_policy: str, share: bool,
                 cancel_unneeded: bool, seed: int) -> OrderRecorder:
    pattern = scenario_pattern(seed, nb_nodes=24, pct_enabled=40.0, max_cost=6)
    sim = Simulation()
    database = make_database("ideal", "coalesced", sim, seed)
    recorder = OrderRecorder()
    engine = ENGINE_CLASSES[engine_kind](
        pattern.schema,
        Strategy.parse(code, cancel_unneeded=cancel_unneeded),
        database,
        halt_policy=halt_policy,
        share_results=share,
        observer=recorder,
    )
    for index in range(5):
        engine.submit_instance(pattern.source_values, at=index * 1.0)
    sim.run()
    assert all(instance.done for instance in engine.instances)
    return recorder


def assert_instance_ordering(events: list[tuple]) -> None:
    # Exactly one start, and it comes first.
    assert events[0] == ("start",)
    assert sum(1 for e in events if e[0] == "start") == 1
    # Exactly one completion.
    completes = [i for i, e in enumerate(events) if e[0] == "complete"]
    assert len(completes) == 1
    complete_at = completes[0]
    # Launches fall strictly between start and completion, one per attribute.
    launch_positions = {
        e[1]: i for i, e in enumerate(events) if e[0] == "launch"
    }
    launches = [e for e in events if e[0] == "launch"]
    assert len(launches) == len(launch_positions), "an attribute launched twice"
    assert all(0 < i < complete_at for i in launch_positions.values())
    # Every query_done follows that attribute's launch; shared hits and
    # joins deliver without a query_done of their own.
    for i, event in enumerate(events):
        if event[0] == "done":
            assert event[1] in launch_positions, "done without launch"
            assert i > launch_positions[event[1]]
    # Only query_done stragglers (halted in-flight queries) trail completion.
    assert all(e[0] == "done" for e in events[complete_at + 1:])


SCENARIOS = [
    ("PSE100", "cancel", True, False),
    ("PSE100", "cancel", True, True),
    ("PSE80", "drain", True, False),
    ("PSE50", "cancel", False, True),
    ("PCE0", "cancel", False, False),
    ("NSC100", "drain", True, False),
]


@pytest.mark.parametrize("engine_kind", ["reference", "batched"])
@pytest.mark.parametrize(
    "code,halt_policy,share,cancel_unneeded",
    SCENARIOS,
    ids=[f"{c}-{h}{'-share' if s else ''}{'-cu' if u else ''}" for c, h, s, u in SCENARIOS],
)
def test_observer_ordering_per_instance(engine_kind, code, halt_policy, share, cancel_unneeded):
    for seed in range(3):
        recorder = run_recorded(
            engine_kind,
            code=code,
            halt_policy=halt_policy,
            share=share,
            cancel_unneeded=cancel_unneeded,
            seed=seed,
        )
        assert len(recorder.by_instance) == 5
        for events in recorder.by_instance.values():
            assert_instance_ordering(events)


@pytest.mark.parametrize("engine_kind", ["reference", "batched"])
def test_shared_hits_and_joins_keep_ordering(engine_kind):
    """Sharing-heavy runs (identical instances, zero spacing) stay ordered."""
    pattern = scenario_pattern(3, nb_nodes=20, pct_enabled=60.0, max_cost=5)
    sim = Simulation()
    database = make_database("ideal", "coalesced", sim, 3)
    recorder = OrderRecorder()
    engine = ENGINE_CLASSES[engine_kind](
        pattern.schema,
        Strategy.parse("PSE100"),
        database,
        share_results=True,
        observer=recorder,
    )
    for _ in range(6):
        engine.submit_instance(pattern.source_values)
    sim.run()
    shared = [
        event
        for events in recorder.by_instance.values()
        for event in events
        if event[0] == "launch" and event[2] is not None
    ]
    assert shared, "scenario failed to exercise sharing"
    for events in recorder.by_instance.values():
        assert_instance_ordering(events)
