"""The prequalifier: candidate-pool membership under the four option combos."""

from repro import Attribute, Comparison, DecisionFlowSchema, Op, Strategy
from repro.core.instance import InstanceRuntime
from repro.core.prequalifier import candidate_pool
from tests._support import q, syn


def pool_for(schema, code, source_values):
    instance = InstanceRuntime(schema, Strategy.parse(code), "i", source_values, 0.0)
    instance.start()
    return instance, candidate_pool(instance)


def gated_schema():
    """a is READY+ENABLED; b is READY with an unresolved condition (on a)."""
    return DecisionFlowSchema(
        [
            Attribute("s"),
            Attribute("a", task=q("a", inputs=("s",), value=1)),
            Attribute(
                "b",
                task=q("b", inputs=("s",), value=2),
                condition=Comparison("a", Op.GT, 0),
            ),
            Attribute("t", task=q("t", inputs=("a", "b"), value=3), is_target=True),
        ]
    )


class TestSpeculationOption:
    def test_conservative_pool_excludes_unresolved(self):
        _, pool = pool_for(gated_schema(), "PCE0", {"s": 0})
        assert pool == ["a"]

    def test_speculative_pool_includes_ready(self):
        _, pool = pool_for(gated_schema(), "PSE0", {"s": 0})
        assert pool == ["a", "b"]

    def test_pending_attributes_never_eligible(self):
        # t's inputs (a, b) are unstable: t stays out of every pool.
        _, pool = pool_for(gated_schema(), "PSE100", {"s": 0})
        assert "t" not in pool


class TestPropagationOption:
    def unneeded_schema(self):
        """hit_list is enabled but its only consumer is disabled at start."""
        return DecisionFlowSchema(
            [
                Attribute("income"),
                Attribute("hit_list", task=q("hit_list", inputs=("income",), value=1)),
                Attribute(
                    "present",
                    task=q("present", inputs=("hit_list",), value=2),
                    condition=Comparison("income", Op.GT, 0),
                ),
                Attribute("page", task=q("page", inputs=("income",), value=3), is_target=True),
            ]
        )

    def test_p_option_drops_unneeded(self):
        _, pool = pool_for(self.unneeded_schema(), "PCE0", {"income": 0})
        assert pool == ["page"]  # hit_list pruned by backward propagation

    def test_n_option_keeps_unneeded(self):
        _, pool = pool_for(self.unneeded_schema(), "NCE0", {"income": 0})
        assert set(pool) == {"hit_list", "page"}


class TestPoolHygiene:
    def test_launched_attributes_excluded(self):
        instance, pool = pool_for(gated_schema(), "PCE0", {"s": 0})
        assert pool == ["a"]
        instance.launched.add("a")
        assert candidate_pool(instance) == []

    def test_synthesis_tasks_never_pooled(self):
        schema = DecisionFlowSchema(
            [
                Attribute("s"),
                Attribute("a", task=syn("a", ("s",), lambda v: 1)),
                Attribute("t", task=q("t", inputs=(), value=0), is_target=True),
            ]
        )
        instance = InstanceRuntime(schema, Strategy.parse("PCE0"), "i", {"s": 0}, 0.0)
        # Before start/drain, "a" is not yet computed — still never pooled.
        assert "a" not in candidate_pool(instance)

    def test_stable_attributes_excluded(self):
        instance, _ = pool_for(gated_schema(), "PCE0", {"s": 0})
        instance.apply_query_result("a", 1)
        instance.drain()
        pool = candidate_pool(instance)
        assert "a" not in pool
        assert "b" in pool  # a > 0 enabled b
