"""The Table-1 schema-pattern generator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import AttributeState, evaluate_schema
from repro.core.conditions import And, Condition, Literal, Or
from repro.core.predicates import Comparison, IsNull
from repro.workload.generator import generate_pattern
from repro.workload.params import PatternParams
from repro.workload.skeleton import SOURCE, TARGET
from tests._support import run_engine


def leaves(condition: Condition):
    if isinstance(condition, (And, Or)):
        for child in condition.children:
            yield from leaves(child)
    else:
        yield condition


class TestEnabledEngineering:
    @pytest.mark.parametrize("pct", [0, 10, 25, 50, 75, 90, 100])
    def test_exact_enabled_fraction(self, pct):
        pattern = generate_pattern(PatternParams(nb_nodes=40, nb_rows=4, pct_enabled=pct, seed=3))
        expected_enabled = round(pct / 100.0 * 40)
        assert pattern.enabled_internal_count == expected_enabled

    def test_target_always_enabled(self):
        for pct in (0, 50, 100):
            pattern = generate_pattern(PatternParams(pct_enabled=pct, seed=1))
            assert pattern.expected.states[TARGET] is AttributeState.VALUE

    def test_expected_matches_fresh_evaluation(self):
        pattern = generate_pattern(PatternParams(seed=5))
        snapshot = evaluate_schema(pattern.schema, pattern.source_values)
        assert snapshot.states == pattern.expected.states


class TestStructure:
    def test_costs_within_bounds(self):
        pattern = generate_pattern(PatternParams(min_cost=2, max_cost=4, seed=2))
        costs = [pattern.schema[n].cost for n in pattern.schema.non_source_names]
        assert all(2 <= c <= 4 for c in costs)

    def test_predicate_counts_within_bounds(self):
        params = PatternParams(min_pred=2, max_pred=3, seed=4)
        pattern = generate_pattern(params)
        for name in pattern.schema.internal_names:
            condition = pattern.schema[name].condition
            if isinstance(condition, Literal):
                continue  # no candidate enablers in range
            count = len(list(leaves(condition)))
            assert 1 <= count <= 3  # capped by available candidates

    def test_condition_refs_are_enablers(self):
        pattern = generate_pattern(PatternParams(seed=6))
        for name in pattern.schema.internal_names:
            refs = pattern.schema[name].condition.refs()
            assert refs <= pattern.enablers

    def test_enabling_hop_respected(self):
        params = PatternParams(pct_enabling_hop=25.0, seed=7)
        pattern = generate_pattern(params)
        hop_limit = max(1, round(0.25 * pattern.ncols))
        column = {}
        # Rebuild column map from names (nX_Y at column Y+1, src at 0).
        column[SOURCE] = 0
        for name in pattern.schema.internal_names:
            column[name] = int(name.split("_")[1]) + 1
        for name in pattern.schema.internal_names:
            for ref in pattern.schema[name].condition.refs():
                assert 0 < column[name] - column[ref] <= hop_limit

    def test_predicates_are_comparisons_or_null_tests(self):
        pattern = generate_pattern(PatternParams(seed=8))
        for name in pattern.schema.internal_names:
            for leaf in leaves(pattern.schema[name].condition):
                assert isinstance(leaf, (Comparison, IsNull, Literal))

    def test_data_edges_added(self):
        base = generate_pattern(PatternParams(seed=9))
        more = generate_pattern(PatternParams(pct_added_data_edges=25.0, seed=9))
        count = lambda p: sum(len(p.schema[n].data_inputs) for n in p.schema.non_source_names)
        assert count(more) > count(base)

    def test_data_edges_deleted(self):
        base = generate_pattern(PatternParams(seed=9))
        fewer = generate_pattern(PatternParams(pct_added_data_edges=-25.0, seed=9))
        count = lambda p: sum(len(p.schema[n].data_inputs) for n in p.schema.non_source_names)
        assert count(fewer) < count(base)


class TestDeterminism:
    def test_same_seed_same_schema(self):
        a = generate_pattern(PatternParams(seed=11))
        b = generate_pattern(PatternParams(seed=11))
        assert a.schema.names == b.schema.names
        assert a.expected.states == b.expected.states
        assert [a.schema[n].cost for n in a.schema.names] == [
            b.schema[n].cost for n in b.schema.names
        ]

    def test_different_seed_different_outcomes(self):
        a = generate_pattern(PatternParams(seed=11))
        b = generate_pattern(PatternParams(seed=12))
        assert a.expected.states != b.expected.states

    def test_pct_enabled_change_keeps_costs(self):
        # Independent RNG streams: sweeping %enabled must not reshuffle costs.
        a = generate_pattern(PatternParams(pct_enabled=10, seed=13))
        b = generate_pattern(PatternParams(pct_enabled=90, seed=13))
        assert [a.schema[n].cost for n in a.schema.names] == [
            b.schema[n].cost for n in b.schema.names
        ]


class TestExecutability:
    def test_engine_reaches_expected_snapshot(self):
        pattern = generate_pattern(PatternParams(nb_nodes=24, nb_rows=3, pct_enabled=40, seed=14))
        _, instance = run_engine(pattern.schema, "PCE100", pattern.source_values)
        for name, cell in instance.cells.items():
            if cell.stable:
                assert cell.state is pattern.expected.states[name]

    def test_enabled_cost_accessor(self):
        pattern = generate_pattern(PatternParams(seed=15))
        assert pattern.enabled_cost() == pattern.expected.needed_cost()
        assert pattern.enabled_cost() <= pattern.schema.total_query_cost()


@settings(max_examples=30, deadline=None)
@given(
    nb_nodes=st.integers(4, 24),
    nb_rows=st.integers(1, 4),
    pct_enabled=st.integers(0, 100),
    pct_enabler=st.integers(0, 100),
    added=st.integers(-25, 25),
    seed=st.integers(0, 10),
)
def test_generator_always_yields_wellformed_exact_patterns(
    nb_nodes, nb_rows, pct_enabled, pct_enabler, added, seed
):
    nb_rows = min(nb_rows, nb_nodes)
    params = PatternParams(
        nb_nodes=nb_nodes,
        nb_rows=nb_rows,
        pct_enabled=pct_enabled,
        pct_enabler=pct_enabler,
        pct_added_data_edges=added,
        seed=seed,
    )
    pattern = generate_pattern(params)
    # Well-formedness is enforced by schema construction; the engineered
    # fraction must hold exactly.
    assert pattern.enabled_internal_count == round(pct_enabled / 100.0 * nb_nodes)
    # And the pattern must execute correctly end to end.
    _, instance = run_engine(pattern.schema, "PSE100", pattern.source_values)
    assert instance.done
