"""The decision-service daemon: admission, drain epochs, persistence.

Everything here is in-process and port-free — the daemon object is
exercised directly; the HTTP transport has its own suite
(test_server_http.py).  Where a test needs the arrival queue to actually
fill, the drain loop is stalled deterministically by shadowing
``_take_batch`` on the instance (the loop re-reads the attribute every
iteration), never by sleeping and hoping.
"""

import threading
import time

import pytest

from repro import ExecutionConfig, PatternParams, generate_pattern
from repro.core.metrics import MetricsSummary
from repro.server import STATUSES, RunStore, ServerDaemon

WAIT = 30.0  # generous wall-clock bound; every wait in here is event-driven


@pytest.fixture(scope="module")
def pattern():
    return generate_pattern(PatternParams(nb_nodes=16, nb_rows=3, pct_enabled=50, seed=3))


@pytest.fixture
def make_daemon(pattern):
    daemons = []

    def build(config=None, **kwargs):
        daemon = ServerDaemon(
            pattern.schema,
            config if config is not None else "PSE80",
            default_values=pattern.source_values,
            **kwargs,
        )
        daemons.append(daemon)
        return daemon

    yield build
    for daemon in daemons:
        daemon.shutdown()


def stall_drain(daemon):
    """Stop the drain loop from taking batches; queue depth becomes real."""
    daemon._take_batch = lambda: []
    time.sleep(0.05)  # let any in-flight loop iteration finish


def resume_drain(daemon):
    del daemon.__dict__["_take_batch"]
    daemon._wake.set()


class TestSubmission:
    def test_default_values_run_to_done(self, make_daemon, pattern):
        daemon = make_daemon()
        result = daemon.submit()
        assert result.ok and result.rejected == 0
        (instance_id,) = result.accepted
        assert instance_id.startswith("srv-")
        assert daemon.wait_idle(WAIT)
        payload = daemon.get(instance_id)
        assert payload["status"] == "done"
        assert payload["origin"] == "live"
        assert payload["schema"] == pattern.schema.name
        assert payload["latency"] >= 0.0
        assert payload["metrics"]["work_units"] > 0
        assert payload["values"]  # decision values present
        assert payload["config_hash"] == daemon.config_digest

    def test_explicit_values_used(self, make_daemon, pattern):
        daemon = make_daemon()
        result = daemon.submit(dict(pattern.source_values))
        assert daemon.wait_idle(WAIT)
        payload = daemon.get(result.accepted[0])
        assert payload["status"] == "done"

    def test_batch_gets_distinct_sequential_ids(self, make_daemon):
        daemon = make_daemon()
        result = daemon.submit_many([None] * 5)
        assert len(set(result.accepted)) == 5
        assert daemon.wait_idle(WAIT)
        assert all(daemon.get(i)["status"] == "done" for i in result.accepted)

    def test_empty_batch_is_a_noop(self, make_daemon):
        daemon = make_daemon()
        result = daemon.submit_many([])
        assert result.ok and result.accepted == ()

    def test_unknown_id_is_none(self, make_daemon):
        assert make_daemon().get("srv-404") is None

    def test_bad_valuation_marks_failed_not_fatal(self, make_daemon):
        daemon = make_daemon()
        bad = daemon.submit({"no_such_attribute": 1})
        good = daemon.submit()
        assert daemon.wait_idle(WAIT)
        failed = daemon.get(bad.accepted[0])
        assert failed["status"] == "failed"
        assert "ExecutionError" in failed["error"]
        # The drain loop survived and the next instance still completed.
        assert daemon.get(good.accepted[0])["status"] == "done"
        assert daemon.server_stats()["failed"] == 1

    def test_statuses_are_the_documented_set(self):
        assert STATUSES == ("queued", "running", "done", "stalled", "failed")


class TestAdmissionControl:
    def test_queue_full_rejects_whole_batch_atomically(self, make_daemon):
        daemon = make_daemon(high_water=4)
        stall_drain(daemon)
        try:
            assert daemon.submit_many([None] * 3).ok
            result = daemon.submit_many([None] * 2)  # 3 + 2 > 4
            assert not result.ok
            assert result.accepted == ()
            assert result.rejected == 2
            assert result.reason == "queue full"
            assert 0.05 <= result.retry_after <= 60.0
            assert result.queue_depth == 3  # nothing from the batch leaked in
            # A batch that still fits is admitted after the rejection.
            assert daemon.submit(None).ok
        finally:
            resume_drain(daemon)
        assert daemon.wait_idle(WAIT)
        stats = daemon.server_stats()
        assert stats["accepted"] == 4
        assert stats["rejected"] == 2
        assert stats["completed"] == 4

    def test_peak_queue_depth_never_exceeds_high_water(self, make_daemon):
        daemon = make_daemon(high_water=8)
        stall_drain(daemon)
        try:
            for _ in range(30):
                daemon.submit(None)
        finally:
            resume_drain(daemon)
        assert daemon.wait_idle(WAIT)
        stats = daemon.server_stats()
        assert stats["peak_queue_depth"] == 8
        assert stats["accepted"] == 8
        assert stats["rejected"] == 22

    def test_shutdown_closes_admission(self, make_daemon):
        daemon = make_daemon()
        assert daemon.shutdown()
        result = daemon.submit(None)
        assert not result.ok
        assert result.reason == "shutting down"
        assert daemon.stopping

    def test_retry_after_tracks_drain_rate(self, make_daemon):
        daemon = make_daemon(high_water=2)
        daemon.submit_many([None] * 2)
        assert daemon.wait_idle(WAIT)
        rate = daemon.server_stats()["drain_rate"]
        assert rate is not None and rate > 0
        stall_drain(daemon)
        try:
            daemon.submit_many([None] * 2)
            rejected = daemon.submit(None)
            expected = min(60.0, max(0.05, 3 / rate))
            assert rejected.retry_after == pytest.approx(expected)
        finally:
            resume_drain(daemon)


class TestValidation:
    def test_high_water_bounds_checked(self, make_daemon):
        with pytest.raises(ValueError, match="high_water"):
            make_daemon(high_water=0)

    def test_ticks_per_second_checked(self, make_daemon):
        with pytest.raises(ValueError, match="ticks_per_second"):
            make_daemon(ticks_per_second=0.0)


class TestPersistence:
    def test_restart_serves_old_ids_from_store(self, make_daemon, tmp_path):
        db = tmp_path / "runs.sqlite"
        daemon = make_daemon(db=str(db))
        ids = daemon.submit_many([None] * 6).accepted
        assert daemon.wait_idle(WAIT)
        assert daemon.shutdown()

        restarted = make_daemon(db=str(db))
        for instance_id in ids:
            payload = restarted.get(instance_id)
            assert payload is not None, instance_id
            assert payload["status"] == "done"
            assert payload["origin"] == "store"
            assert payload["latency"] >= 0.0
            assert payload["config_hash"] == daemon.config_digest
        # The id sequence resumes past the persisted records: no collisions.
        fresh = restarted.submit(None).accepted[0]
        assert fresh not in ids
        largest = max(int(i.split("-")[1]) for i in ids)
        assert int(fresh.split("-")[1]) == largest + 1

    def test_graceful_shutdown_drains_inflight_and_flushes(
        self, make_daemon, tmp_path
    ):
        """shutdown() finishes every accepted instance and persists it."""
        db = tmp_path / "runs.sqlite"
        daemon = make_daemon(db=str(db))
        ids = daemon.submit_many([None] * 40).accepted
        # No wait_idle: shutdown itself must drain the in-flight work.
        assert daemon.shutdown()
        stats = daemon.server_stats()
        assert stats["completed"] == 40
        assert stats["persisted"] == 40
        with RunStore(db) as store:
            assert store.count() == 40
            assert sorted(store.instance_ids()) == sorted(ids)
            assert all(store.get(i)["status"] == "done" for i in ids)

    def test_shutdown_is_idempotent(self, make_daemon):
        daemon = make_daemon()
        assert daemon.shutdown()
        assert daemon.shutdown()

    def test_no_store_means_no_persistence_counter(self, make_daemon):
        daemon = make_daemon()
        daemon.submit_many([None] * 3)
        assert daemon.wait_idle(WAIT)
        assert daemon.server_stats()["persisted"] == 0


class TestShardedService:
    def test_sharded_daemon_serves_and_aggregates(self, make_daemon):
        config = ExecutionConfig.from_code("PSE80", shards=2, query_cache=True)
        daemon = make_daemon(config)
        ids = daemon.submit_many([None] * 8).accepted
        assert daemon.wait_idle(WAIT)
        assert all(daemon.get(i)["status"] == "done" for i in ids)
        summary = daemon.summary()
        assert summary.count == 8
        # Identical repeated valuations make the per-shard caches earn hits.
        assert summary.query_cache_misses > 0
        payload = daemon.metrics_payload()
        assert payload["config"]["shards"] == 2
        assert payload["config"]["query_cache"] is True

    def test_process_executor_daemon_drains_across_epochs(self, make_daemon):
        """The persistent-worker fleet serves the open system: multiple
        drain epochs stream rounds to the same long-lived workers."""
        config = ExecutionConfig.from_code(
            "PSE80", shards=2, executor="process", query_cache=True
        )
        daemon = make_daemon(config)
        first = daemon.submit_many([None] * 4).accepted
        assert daemon.wait_idle(WAIT)
        assert all(daemon.get(i)["status"] == "done" for i in first)
        pids_before = [
            w["pid"] for w in daemon.health()[1]["workers"]["workers"]
        ]
        second = daemon.submit_many([None] * 4).accepted
        assert daemon.wait_idle(WAIT)
        assert all(daemon.get(i)["status"] == "done" for i in second)
        health_ok, payload = daemon.health()
        assert health_ok
        workers = payload["workers"]
        assert workers["executor"] == "process"
        assert workers["alive"] is True
        # Same pids across epochs: the fleet persisted, nothing respawned.
        assert [w["pid"] for w in workers["workers"]] == pids_before
        summary = daemon.summary()
        assert summary.count == 8
        # Epoch 2 reused epoch 1's committed keys through the L2 tier
        # wherever the population crossed shards; at minimum the L2
        # counters are live and consistent with the JSON payload.
        metrics = daemon.metrics_payload()["summary"]
        assert metrics["query_cache_l2_hits"] == summary.query_cache_l2_hits
        assert (
            metrics["query_cache_l2_promotions"]
            == summary.query_cache_l2_promotions
        )
        assert summary.query_cache_l2_promotions > 0
        assert daemon.shutdown()
        assert daemon.service.worker_health()["alive"] is False

    def test_dead_worker_flips_daemon_health(self, make_daemon):
        config = ExecutionConfig.from_code("PSE80", shards=2, executor="process")
        daemon = make_daemon(config)
        ids = daemon.submit_many([None] * 2).accepted
        assert daemon.wait_idle(WAIT)
        assert all(daemon.get(i)["status"] == "done" for i in ids)
        victim = daemon.service._executor._workers[0].process
        victim.kill()
        victim.join(timeout=10.0)
        ok, payload = daemon.health()
        assert ok is False
        assert payload["status"] == "workers-dead"
        assert payload["workers"]["alive"] is False


class TestMetricsPayload:
    def test_summary_round_trips_through_the_payload(self, make_daemon):
        daemon = make_daemon()
        daemon.submit_many([None] * 4)
        assert daemon.wait_idle(WAIT)
        payload = daemon.metrics_payload()
        assert set(payload) == {
            "summary",
            "server",
            "dispatch",
            "stages",
            "observability",
            "config",
        }
        assert MetricsSummary.from_dict(payload["summary"]) == daemon.summary()
        assert payload["server"]["completed"] == 4
        assert payload["config"]["hash"] == daemon.config_digest


class TestEvents:
    def test_replay_delivers_completion_history(self, make_daemon):
        daemon = make_daemon()
        ids = daemon.submit_many([None] * 3).accepted
        assert daemon.wait_idle(WAIT)
        subscriber = daemon.subscribe_events(replay=True)
        seen = []
        while not subscriber.empty():
            seen.append(subscriber.get_nowait())
        completions = [e for e in seen if e["type"] == "instance_complete"]
        assert {e["instance_id"] for e in completions} == set(ids)
        assert all(e["metrics"]["work_units"] > 0 for e in completions)
        daemon.unsubscribe_events(subscriber)

    def test_live_stream_carries_launch_and_query_events(self, make_daemon):
        daemon = make_daemon()
        subscriber = daemon.subscribe_events()  # arms the chatty taps
        daemon.submit(None)
        assert daemon.wait_idle(WAIT)
        types = set()
        while not subscriber.empty():
            types.add(subscriber.get_nowait()["type"])
        assert {"launch", "query_done", "instance_complete"} <= types
        daemon.unsubscribe_events(subscriber)

    def test_shutdown_sends_none_sentinel(self, make_daemon):
        daemon = make_daemon()
        subscriber = daemon.subscribe_events()
        daemon.shutdown()
        items = []
        while not subscriber.empty():
            items.append(subscriber.get_nowait())
        assert items[-1] is None


class TestHealth:
    def test_healthy_daemon_reports_ok(self, make_daemon):
        daemon = make_daemon()
        daemon.submit_many([None] * 2)
        assert daemon.wait_idle(WAIT)
        ok, payload = daemon.health()
        assert ok is True
        assert payload["status"] == "ok"
        assert payload["drain_alive"] is True
        assert payload["heartbeat_age"] < daemon._stall_after
        assert payload["queue_depth"] == 0

    def test_wedged_drain_loop_flips_health(self, make_daemon):
        """A drain loop stuck mid-iteration stops heartbeating; queued
        work then sits unconsumed and health() must say so."""
        daemon = make_daemon(stall_after=0.05)
        gate = threading.Event()
        daemon._take_batch = lambda: ([], gate.wait(WAIT))[0]
        daemon._wake.set()  # drive the loop into the blocked call
        time.sleep(0.2)  # heartbeat is now stale beyond stall_after
        ok, payload = daemon.health()
        assert ok is False
        assert payload["status"] == "wedged"
        assert payload["heartbeat_age"] > 0.05
        assert payload["drain_alive"] is True
        gate.set()  # unwedge; the fixture's shutdown must still drain
        del daemon.__dict__["_take_batch"]

    @pytest.mark.filterwarnings(
        "ignore::pytest.PytestUnhandledThreadExceptionWarning"
    )
    def test_dead_drain_loop_flips_health(self, make_daemon):
        daemon = make_daemon()

        def die():
            raise SystemExit  # exits the thread quietly, unlike RuntimeError

        daemon._take_batch = die
        daemon._wake.set()
        daemon._thread.join(WAIT)
        ok, payload = daemon.health()
        assert ok is False
        assert payload["status"] == "dead"
        assert payload["drain_alive"] is False

    def test_stall_after_is_validated(self, make_daemon):
        with pytest.raises(ValueError):
            make_daemon(stall_after=0.0)


class TestTimestamps:
    def test_started_wall_between_submit_and_complete(self, make_daemon):
        daemon = make_daemon()
        (instance_id,) = daemon.submit().accepted
        assert daemon.wait_idle(WAIT)
        payload = daemon.get(instance_id)
        assert payload["submitted_at"] <= payload["started_at"]
        assert payload["started_at"] <= payload["completed_at"]

    def test_started_wall_persists_and_resolves_from_store(
        self, make_daemon, tmp_path
    ):
        db = str(tmp_path / "runs.sqlite")
        first = make_daemon(db=db)
        (instance_id,) = first.submit().accepted
        assert first.wait_idle(WAIT)
        first.shutdown()
        second = make_daemon(db=db)
        payload = second.get(instance_id)
        assert payload["origin"] == "store"
        assert payload["started_at"] is not None
        assert payload["submitted_at"] <= payload["started_at"] <= payload["completed_at"]


class TestStageStats:
    def test_all_four_stages_populate(self, make_daemon):
        daemon = make_daemon()
        daemon.submit_many([None] * 3)
        assert daemon.wait_idle(WAIT)
        stages = daemon.stage_stats()
        assert set(stages) == {"admit", "queue_wait", "epoch", "decision"}
        assert stages["decision"]["count"] == 3
        assert stages["queue_wait"]["count"] == 3
        assert stages["admit"]["count"] >= 1
        assert stages["epoch"]["count"] >= 1
        for digest in stages.values():
            assert 0.0 <= digest["p50"] <= digest["p99"]
            assert digest["mean"] >= 0.0

    def test_restart_seeds_decision_histogram_from_store(
        self, make_daemon, tmp_path
    ):
        db = str(tmp_path / "runs.sqlite")
        first = make_daemon(db=db)
        first.submit_many([None] * 3)
        assert first.wait_idle(WAIT)
        first.shutdown()
        second = make_daemon(db=db)
        assert second.stage_stats()["decision"]["count"] == 3


class TestObservabilityPayloads:
    def test_disarmed_daemon_serves_stub_and_empty_trace(self, make_daemon):
        daemon = make_daemon()
        daemon.submit(None)
        assert daemon.wait_idle(WAIT)
        assert daemon.observability()["enabled"] is False
        trace = daemon.trace_payload()
        assert trace["metadata"]["armed"] is False
        assert all(e["ph"] == "M" for e in trace["traceEvents"])

    def test_armed_daemon_snapshot_and_trace(self, make_daemon):
        config = ExecutionConfig.from_code("PSE80", observe=True)
        daemon = make_daemon(config)
        daemon.submit_many([None] * 2)
        assert daemon.wait_idle(WAIT)
        snapshot = daemon.observability()
        assert snapshot["enabled"] is True
        counters = {c["name"]: c["value"] for c in snapshot["counters"]}
        assert counters["engine_scheduling_rounds"] > 0
        trace = daemon.trace_payload()
        assert trace["metadata"]["armed"] is True
        names = {e["name"] for e in trace["traceEvents"] if e["ph"] != "M"}
        assert "daemon.admit" in names
        assert "daemon.epoch" in names
        assert "engine.round" in names

    def test_prometheus_payload_text(self, make_daemon):
        config = ExecutionConfig.from_code("PSE80", observe=True)
        daemon = make_daemon(config)
        daemon.submit_many([None] * 2)
        assert daemon.wait_idle(WAIT)
        text = daemon.prometheus_payload()
        assert "# TYPE repro_stage_seconds histogram" in text
        assert 'le="+Inf"' in text
        assert "repro_server_completed 2" in text
        assert "repro_summary_count 2" in text
        assert "# TYPE repro_dispatch_pooled_batches counter" in text
        assert "repro_engine_scheduling_rounds" in text  # armed extras
        decision_count = [
            line for line in text.splitlines()
            if line.startswith("repro_stage_seconds_count")
            and 'stage="decision"' in line
        ]
        assert decision_count and decision_count[0].endswith(" 2")

    def test_dispatch_stats_surface_pooled_counters(self, make_daemon):
        config = ExecutionConfig.from_code(
            "PSE80", engine="batched", dispatch="pooled", query_cache=True
        )
        daemon = make_daemon(config)
        daemon.submit_many([None] * 4)
        assert daemon.wait_idle(WAIT)
        stats = daemon.dispatch_stats()
        assert stats["pooled_batches"] > 0
        assert stats["pooled_events"] >= stats["pooled_batches"]
        assert daemon.metrics_payload()["dispatch"] == stats


class TestBoundedFanout:
    def test_full_subscriber_drops_and_counts(self, make_daemon):
        daemon = make_daemon()
        subscriber = daemon.subscribe_events(max_queue=2)
        for index in range(5):
            daemon._publish({"type": "synthetic", "n": index})
        assert subscriber.qsize() == 2
        assert daemon.server_stats()["events_dropped"] == 3
        daemon.unsubscribe_events(subscriber)

    def test_slow_subscriber_does_not_stall_the_daemon(self, make_daemon):
        """A subscriber that never drains must not wedge the drain loop
        or grow without bound while real work streams past it."""
        daemon = make_daemon()
        subscriber = daemon.subscribe_events(max_queue=4)
        daemon.submit_many([None] * 6)
        assert daemon.wait_idle(WAIT)
        assert daemon.server_stats()["completed"] == 6
        assert subscriber.qsize() <= 4
        ok, payload = daemon.health()
        assert ok, payload
        daemon.unsubscribe_events(subscriber)

    def test_replay_respects_the_bound(self, make_daemon):
        daemon = make_daemon()
        daemon.submit_many([None] * 5)
        assert daemon.wait_idle(WAIT)
        subscriber = daemon.subscribe_events(replay=True, max_queue=2)
        assert subscriber.qsize() == 2
        daemon.unsubscribe_events(subscriber)
