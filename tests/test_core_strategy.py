"""Strategy codes: parsing, formatting, wildcard expansion."""

import pytest

from repro import ALL_STRATEGY_CODES, Strategy, expand_pattern
from repro.errors import StrategyError


class TestParse:
    @pytest.mark.parametrize("code", [c + "0" for c in ALL_STRATEGY_CODES])
    def test_all_codes_roundtrip(self, code):
        assert Strategy.parse(code).code == code

    def test_psе80_fields(self):
        strategy = Strategy.parse("PSE80")
        assert strategy.propagation and strategy.speculative
        assert strategy.heuristic == "earliest"
        assert strategy.permitted == 80

    def test_ncc0_fields(self):
        strategy = Strategy.parse("NCC0")
        assert not strategy.propagation and not strategy.speculative
        assert strategy.heuristic == "cheapest"
        assert strategy.permitted == 0

    def test_percent_suffix_accepted(self):
        assert Strategy.parse("PCE100%").code == "PCE100"

    @pytest.mark.parametrize("bad", ["XSE80", "PS80", "PSE", "PSE101", "pse80", ""])
    def test_bad_codes_rejected(self, bad):
        with pytest.raises(StrategyError):
            Strategy.parse(bad)

    def test_constructor_validation(self):
        with pytest.raises(StrategyError):
            Strategy(heuristic="fastest")
        with pytest.raises(StrategyError):
            Strategy(permitted=-1)
        with pytest.raises(StrategyError):
            Strategy(permitted=150)


class TestValueSemantics:
    def test_equality_and_hash(self):
        assert Strategy.parse("PSE80") == Strategy.parse("PSE80")
        assert Strategy.parse("PSE80") != Strategy.parse("PSE81")
        assert len({Strategy.parse("PSE80"), Strategy.parse("PSE80")}) == 1

    def test_cancel_unneeded_distinguishes(self):
        assert Strategy.parse("PSE80") != Strategy.parse("PSE80", cancel_unneeded=True)
        assert "+cancel" in repr(Strategy.parse("PSE80", cancel_unneeded=True))

    def test_with_permitted(self):
        assert Strategy.parse("PSE80").with_permitted(40).code == "PSE40"


class TestReplace:
    def test_replace_single_field(self):
        assert Strategy.parse("PSE80").replace(permitted=40).code == "PSE40"

    def test_replace_multiple_fields(self):
        replaced = Strategy.parse("PCE0").replace(
            speculative=True, heuristic="cheapest", permitted=100
        )
        assert replaced.code == "PSC100"

    def test_replace_preserves_unnamed_fields(self):
        base = Strategy.parse("NSC25", cancel_unneeded=True)
        replaced = base.replace(permitted=75)
        assert replaced.code == "NSC75"
        assert replaced.cancel_unneeded is True

    def test_replace_returns_new_object(self):
        base = Strategy.parse("PSE80")
        assert base.replace(permitted=80) == base
        assert base.replace(permitted=80) is not base
        assert base.code == "PSE80"

    def test_replace_unknown_field_rejected(self):
        with pytest.raises(StrategyError, match="unknown strategy field"):
            Strategy.parse("PSE80").replace(parallelism=40)

    def test_replace_validates_values(self):
        with pytest.raises(StrategyError):
            Strategy.parse("PSE80").replace(permitted=500)
        with pytest.raises(StrategyError):
            Strategy.parse("PSE80").replace(heuristic="slowest")

    def test_with_permitted_delegates_to_replace(self):
        assert Strategy.parse("PSE80").with_permitted(40) == Strategy.parse(
            "PSE80"
        ).replace(permitted=40)


class TestExpandPattern:
    def test_single_star(self):
        codes = [s.code for s in expand_pattern("PC*100")]
        assert codes == ["PCE100", "PCC100"]

    def test_double_star_with_kwarg(self):
        codes = [s.code for s in expand_pattern("P**", permitted=80)]
        assert codes == ["PSE80", "PSC80", "PCE80", "PCC80"]

    def test_triple_star(self):
        assert len(expand_pattern("***0")) == 8

    def test_no_star_passthrough(self):
        assert [s.code for s in expand_pattern("PSE80")] == ["PSE80"]

    def test_no_wildcard_yields_exactly_one_strategy(self):
        for code in ("PSE80", "NCC0", "PCE100"):
            expanded = expand_pattern(code)
            assert len(expanded) == 1
            assert len(set(expanded)) == len(expanded)

    def test_expansion_never_contains_duplicates(self):
        for pattern in ("PC*100", "P**0", "***50"):
            expanded = expand_pattern(pattern)
            assert len(set(expanded)) == len(expanded)

    def test_missing_permitted_rejected(self):
        with pytest.raises(StrategyError, match="Permitted"):
            expand_pattern("PC*")

    def test_bad_pattern_rejected(self):
        with pytest.raises(StrategyError):
            expand_pattern("Q**0")
