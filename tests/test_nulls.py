"""The ⊥ singleton and exception values."""

import pickle

from repro import NULL, ExceptionValue, is_exception, is_null
from repro.nulls import NullType


class TestNull:
    def test_singleton(self):
        assert NullType() is NULL
        assert NullType() is NullType()

    def test_falsy(self):
        assert not NULL

    def test_repr(self):
        assert repr(NULL) == "NULL"

    def test_pickle_preserves_identity(self):
        assert pickle.loads(pickle.dumps(NULL)) is NULL

    def test_is_null(self):
        assert is_null(NULL)
        assert not is_null(None)
        assert not is_null(0)
        assert not is_null(ExceptionValue())

    def test_distinct_from_none(self):
        assert NULL is not None
        assert NULL != None  # noqa: E711 - the point of the test


class TestExceptionValueBasics:
    def test_is_exception(self):
        assert is_exception(ExceptionValue("x"))
        assert not is_exception(NULL)
        assert not is_exception("EXC")

    def test_not_equal_to_null(self):
        assert ExceptionValue() != NULL
