"""Modular schemas and flattening (section 2's module semantics)."""

import pytest

from repro import And, Attribute, Comparison, Module, Op, TRUE, flatten
from repro.core.conditions import conjoin
from repro.errors import SchemaError
from tests._support import q


def coat_condition():
    return Comparison("cart_has_boy_item", Op.EQ, True)


def build_modular():
    """A miniature of Figure 1: a promo module guarded by condition C."""
    root = Module("promo-flow")
    root.add(Attribute("cart_has_boy_item"))  # source
    coat = Module("boys_coat_promo", condition=coat_condition())
    coat.add(Attribute("climate", task=q("climate", inputs=("cart_has_boy_item",))))
    coat.add(
        Attribute(
            "hit_list",
            task=q("hit_list", inputs=("climate",)),
            condition=Comparison("climate", Op.NE, "tropical"),
        )
    )
    root.add(coat)
    root.add(Attribute("assembly", task=q("assembly", inputs=("hit_list",)), is_target=True))
    return root


class TestWalk:
    def test_module_condition_anded_into_members(self):
        root = build_modular()
        effective = dict((a.name, c) for a, c in root.walk())
        # climate had TRUE: effective condition is just the module's C.
        assert effective["climate"] == coat_condition()
        # hit_list had its own condition: effective is C AND own.
        assert effective["hit_list"] == And(coat_condition(), Comparison("climate", Op.NE, "tropical"))
        # top-level members keep their own conditions.
        assert effective["assembly"] is TRUE

    def test_nested_modules_accumulate(self):
        inner_cond = Comparison("x", Op.GT, 1)
        outer_cond = Comparison("x", Op.GT, 2)
        inner = Module("inner", [Attribute("a", task=q("a"), is_target=True)], condition=inner_cond)
        outer = Module("outer", [Attribute("x"), inner], condition=outer_cond)
        effective = dict((a.name, c) for a, c in outer.walk())
        assert effective["a"] == And(outer_cond, inner_cond)

    def test_attribute_names(self):
        assert build_modular().attribute_names() == [
            "cart_has_boy_item",
            "climate",
            "hit_list",
            "assembly",
        ]

    def test_non_member_rejected(self):
        root = Module("bad", ["not an attribute"])
        with pytest.raises(SchemaError, match="non-member"):
            list(root.walk())


class TestFlatten:
    def test_produces_valid_schema(self):
        schema = flatten(build_modular())
        assert schema.name == "promo-flow"
        assert set(schema.names) == {"cart_has_boy_item", "climate", "hit_list", "assembly"}
        assert schema["climate"].condition == coat_condition()

    def test_flattening_preserves_tasks_and_targets(self):
        schema = flatten(build_modular())
        assert schema.target_names == ("assembly",)
        assert schema["hit_list"].task.inputs == ("climate",)

    def test_source_inside_conditional_module_rejected(self):
        bad = Module(
            "root",
            [
                Module(
                    "cond",
                    [Attribute("s"), Attribute("t", task=q("t"), is_target=True)],
                    condition=Comparison("s", Op.GT, 0),
                )
            ],
        )
        with pytest.raises(SchemaError, match="conditional module"):
            flatten(bad)

    def test_custom_name(self):
        schema = flatten(build_modular(), name="renamed")
        assert schema.name == "renamed"

    def test_add_returns_member(self):
        module = Module("m")
        attribute = Attribute("a", task=q("a"))
        assert module.add(attribute) is attribute

    def test_repr(self):
        assert "members=3" in repr(build_modular())


class TestConjoinSemantics:
    def test_flattening_matches_conjoin(self):
        own = Comparison("x", Op.GT, 5)
        module_cond = Comparison("y", Op.LE, 2)
        assert conjoin(TRUE, own) is own
        assert conjoin(module_cond, TRUE) is module_cond
        assert conjoin(module_cond, own) == And(module_cond, own)
