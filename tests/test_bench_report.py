"""Plain-text reporting: tables and ASCII charts."""

from repro.bench.report import ascii_chart, format_table, format_value


class TestFormatValue:
    def test_none_is_dash(self):
        assert format_value(None) == "-"

    def test_bool(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"

    def test_float_formatting(self):
        assert format_value(3.14159) == "3.1"
        assert format_value(3.14159, ".3f") == "3.142"

    def test_nan_and_inf(self):
        assert format_value(float("nan")) == "-"
        assert format_value(float("inf")) == "inf"
        assert format_value(float("-inf")) == "-inf"

    def test_plain_values(self):
        assert format_value(42) == "42"
        assert format_value("PCE0") == "PCE0"


class TestFormatTable:
    def test_contains_headers_and_cells(self):
        text = format_table(["name", "work"], [["PCE0", 12.5], ["NCE0", 30.0]])
        assert "name" in text and "work" in text
        assert "PCE0" in text and "12.5" in text

    def test_title(self):
        text = format_table(["a"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_alignment_is_consistent(self):
        text = format_table(["x", "longheader"], [[1, 2], [100, 200]])
        lines = text.splitlines()
        assert len({len(line) for line in lines}) == 1  # rectangular output


class TestAsciiChart:
    def test_markers_and_legend(self):
        chart = ascii_chart({"up": [(0, 0), (1, 1)], "down": [(0, 1), (1, 0)]})
        assert "legend:" in chart
        assert "o=up" in chart and "x=down" in chart

    def test_axis_labels(self):
        chart = ascii_chart({"s": [(0, 5), (10, 15)]}, x_label="Work", y_label="T")
        assert "Work" in chart
        assert "15" in chart and "5" in chart

    def test_empty_series(self):
        assert ascii_chart({}) == "(no data)"

    def test_flat_series_does_not_crash(self):
        chart = ascii_chart({"flat": [(0, 7), (1, 7), (2, 7)]})
        assert "o" in chart

    def test_single_point(self):
        chart = ascii_chart({"dot": [(5, 5)]})
        assert "o" in chart

    def test_title_first_line(self):
        chart = ascii_chart({"s": [(0, 1)]}, title="Shape")
        assert chart.splitlines()[0] == "Shape"
