"""Multi-server FCFS service centers."""

import pytest

from repro.simdb.des import Simulation
from repro.simdb.resource import ServiceCenter


class TestSingleServer:
    def test_fcfs_order_and_timing(self):
        sim = Simulation()
        center = ServiceCenter(sim, 1, "cpu")
        done = []
        center.request(2.0, lambda: done.append(("a", sim.now)))
        center.request(3.0, lambda: done.append(("b", sim.now)))
        sim.run()
        assert done == [("a", 2.0), ("b", 5.0)]  # b queued behind a

    def test_queue_depth_visible(self):
        sim = Simulation()
        center = ServiceCenter(sim, 1)
        for _ in range(3):
            center.request(1.0, lambda: None)
        assert center.busy == 1
        assert center.queued == 2
        sim.run()
        assert center.queued == 0
        assert center.peak_queue == 2


class TestMultiServer:
    def test_parallel_service(self):
        sim = Simulation()
        center = ServiceCenter(sim, 3)
        done = []
        for tag in "abc":
            center.request(2.0, lambda t=tag: done.append((t, sim.now)))
        sim.run()
        assert [t for t, _ in done] == ["a", "b", "c"]
        assert all(when == 2.0 for _, when in done)  # truly concurrent

    def test_fourth_job_waits(self):
        sim = Simulation()
        center = ServiceCenter(sim, 3)
        done = []
        for tag in "abcd":
            center.request(2.0, lambda t=tag: done.append((t, sim.now)))
        sim.run()
        assert done[-1] == ("d", 4.0)

    def test_completions_counter(self):
        sim = Simulation()
        center = ServiceCenter(sim, 2)
        for _ in range(5):
            center.request(1.0, lambda: None)
        sim.run()
        assert center.completions == 5


class TestAccounting:
    def test_utilization(self):
        sim = Simulation()
        center = ServiceCenter(sim, 2)
        center.request(4.0, lambda: None)
        sim.run()
        # 4 time units of service over 4 elapsed on 2 servers = 50%.
        assert center.utilization() == pytest.approx(0.5)

    def test_utilization_zero_elapsed(self):
        sim = Simulation()
        center = ServiceCenter(sim, 1)
        assert center.utilization() == 0.0

    def test_validation(self):
        sim = Simulation()
        with pytest.raises(ValueError):
            ServiceCenter(sim, 0)
        with pytest.raises(ValueError):
            ServiceCenter(sim, 1).request(-1.0, lambda: None)

    def test_repr(self):
        sim = Simulation()
        center = ServiceCenter(sim, 2, "disks")
        assert "disks" in repr(center)
