"""QueryShareCache: database-level query coalescing and result memoing.

Unit-level contracts — coalesce/hit/miss classification, zero-cost
follower delivery, cancellation and failure protocols, memo bounds — on
a bare :class:`IdealDatabase`.  The end-to-end guarantees (identical
decision values, dispatch-mode invariance, shard travel) live in the
differential suites.
"""

from __future__ import annotations

import pytest

from repro.simdb.database import IdealDatabase, QueryShareCache
from repro.simdb.des import Simulation


def make_cache(memo_limit: int = 64, failure_prob: float = 0.0, seed: int = 0):
    sim = Simulation()
    database = IdealDatabase(sim, failure_prob=failure_prob, seed=seed)
    return sim, database, QueryShareCache(database, memo_limit=memo_limit)


class Recorder:
    def __init__(self):
        self.calls: list[tuple[int, bool]] = []

    def __call__(self, processed: int, completed: bool) -> None:
        self.calls.append((processed, completed))


class TestClassification:
    def test_miss_dispatches_to_the_database(self):
        sim, database, cache = make_cache()
        done = Recorder()
        cache.submit(("q", 3), 3, done)
        sim.run()
        assert done.calls == [(3, True)]
        assert database.total_units == 3
        assert (cache.misses, cache.coalesced, cache.hits) == (1, 0, 0)

    def test_inflight_duplicate_coalesces(self):
        sim, database, cache = make_cache()
        first, second = Recorder(), Recorder()
        cache.submit(("q", 3), 3, first)
        cache.submit(("q", 3), 3, second)
        sim.run()
        # One real query; the follower completes with zero units of work.
        assert database.total_units == 3
        assert first.calls == [(3, True)]
        assert second.calls == [(0, True)]
        assert (cache.misses, cache.coalesced, cache.hits) == (1, 1, 0)

    def test_completed_result_served_from_memo(self):
        sim, database, cache = make_cache()
        cache.submit(("q", 3), 3, Recorder())
        sim.run()
        late = Recorder()
        cache.submit(("q", 3), 3, late)
        assert late.calls == []  # delivery is event-driven, not synchronous
        sim.run()
        assert late.calls == [(0, True)]
        assert database.total_units == 3
        assert (cache.misses, cache.coalesced, cache.hits) == (1, 0, 1)

    def test_distinct_keys_do_not_share(self):
        sim, database, cache = make_cache()
        cache.submit(("a", 2), 2, Recorder())
        cache.submit(("b", 2), 2, Recorder())
        sim.run()
        assert database.total_units == 4
        assert cache.misses == 2

    def test_cost_below_one_rejected(self):
        _, _, cache = make_cache()
        with pytest.raises(ValueError):
            cache.submit(("q", 0), 0, Recorder())


class TestFollowerHandles:
    def test_follower_does_not_count_for_parallelism(self):
        sim, _, cache = make_cache()
        cache.submit(("q", 2), 2, Recorder())
        follower = cache.submit(("q", 2), 2, Recorder())
        assert follower.counts_for_parallelism is False

    def test_cancelled_follower_resolves_as_cancelled(self):
        sim, database, cache = make_cache()
        primary_done, follower_done = Recorder(), Recorder()
        cache.submit(("q", 3), 3, primary_done)
        follower = cache.submit(("q", 3), 3, follower_done)
        follower.cancel()
        sim.run()
        assert primary_done.calls == [(3, True)]
        assert follower_done.calls == [(0, False)]
        assert database.queries_completed == 1

    def test_cancelled_memo_hit_resolves_as_cancelled(self):
        sim, _, cache = make_cache()
        cache.submit(("q", 1), 1, Recorder())
        sim.run()
        late = Recorder()
        follower = cache.submit(("q", 1), 1, late)
        follower.cancel()
        sim.run()
        assert late.calls == [(0, False)]

    def test_waiter_count_tracks_primary(self):
        sim, _, cache = make_cache()
        primary = cache.submit(("q", 4), 4, Recorder())
        assert cache.waiter_count(primary) == 0
        follower = cache.submit(("q", 4), 4, Recorder())
        assert cache.waiter_count(primary) == 1
        assert cache.waiter_count(follower) == 0
        sim.run()
        assert cache.waiter_count(primary) == 0

    def test_cancelled_followers_do_not_pin_the_primary(self):
        """Once every waiter is itself cancelled, waiter_count must drop
        to zero so cancel-unneeded can cancel the primary instead of
        forcing the unneeded query to run to completion."""
        sim, database, cache = make_cache()
        primary = cache.submit(("q", 4), 4, Recorder())
        follower = cache.submit(("q", 4), 4, Recorder())
        follower.cancel()
        assert cache.waiter_count(primary) == 0
        primary.cancel()
        sim.run()
        assert database.total_units == 1  # cancelled at the unit boundary
        assert cache.reissues == 0


class TestCancellationAndFailure:
    def test_cancelled_primary_reissues_for_live_followers(self):
        sim, database, cache = make_cache()
        primary_done, follower_done = Recorder(), Recorder()
        primary = cache.submit(("q", 4), 4, primary_done)
        cache.submit(("q", 4), 4, follower_done)
        primary.cancel()
        sim.run()
        # The issuer sees its cancellation; the follower is answered by a
        # fresh full-cost reissue (the database did real work twice).
        assert primary_done.calls == [(1, False)]
        assert follower_done.calls == [(0, True)]
        assert cache.reissues == 1
        assert database.total_units == 1 + 4
        assert ("q", 4) in cache._memo

    def test_cancelled_primary_with_only_cancelled_followers_skips_reissue(self):
        sim, database, cache = make_cache()
        primary_done, follower_done = Recorder(), Recorder()
        primary = cache.submit(("q", 4), 4, primary_done)
        follower = cache.submit(("q", 4), 4, follower_done)
        follower.cancel()
        primary.cancel()
        sim.run()
        assert primary_done.calls == [(1, False)]
        assert follower_done.calls == [(0, False)]
        assert cache.reissues == 0
        assert database.total_units == 1

    def test_failed_primary_marks_followers_failed_and_skips_memo(self):
        sim, database, cache = make_cache(failure_prob=1.0)
        cache.submit(("q", 2), 2, Recorder())
        follower = cache.submit(("q", 2), 2, Recorder())
        sim.run()
        assert follower.failed is True
        assert cache.memo_size == 0  # failures are retried, never memoized
        retry = cache.submit(("q", 2), 2, Recorder())
        assert retry is not follower
        assert cache.misses == 2


class TestMemoBounds:
    def test_memo_is_lru_bounded(self):
        sim, _, cache = make_cache(memo_limit=2)
        for name in ("a", "b", "c"):
            cache.submit((name, 1), 1, Recorder())
        sim.run()
        assert cache.memo_size == 2
        # "a" (oldest) was evicted; "b"/"c" still hit.
        cache.submit(("b", 1), 1, Recorder())
        cache.submit(("a", 1), 1, Recorder())
        sim.run()
        assert cache.hits == 1
        assert cache.misses == 4

    def test_hit_refreshes_recency(self):
        sim, _, cache = make_cache(memo_limit=2)
        for name in ("a", "b"):
            cache.submit((name, 1), 1, Recorder())
        sim.run()
        cache.submit(("a", 1), 1, Recorder())  # refresh "a"
        sim.run()
        cache.submit(("c", 1), 1, Recorder())  # evicts "b", not "a"
        sim.run()
        cache.submit(("a", 1), 1, Recorder())
        sim.run()
        assert cache.hits == 2

    def test_memo_limit_validated(self):
        sim = Simulation()
        database = IdealDatabase(sim)
        with pytest.raises(ValueError):
            QueryShareCache(database, memo_limit=0)

    def test_repr_mentions_counters(self):
        _, _, cache = make_cache()
        text = repr(cache)
        assert "hits=0" in text and "memo=0" in text


# -- the shared L2 tier, at the cache level ------------------------------------


def make_l2_cache(tier=None, failure_prob: float = 0.0):
    from repro.runtime.l2cache import SharedQueryTier

    tier = tier if tier is not None else SharedQueryTier()
    sim = Simulation()
    database = IdealDatabase(sim, failure_prob=failure_prob, seed=0)
    view = tier.view()
    return sim, database, QueryShareCache(database, l2=view), tier, view


class TestL2Probe:
    def test_l2_hit_serves_zero_cost_and_promotes_to_l1(self):
        sim, database, cache, tier, _ = make_l2_cache()
        tier.commit([[("q", 3)]])  # committed by "another shard", last round
        done = Recorder()
        cache.submit(("q", 3), 3, done)
        assert done.calls == []  # delivery is event-driven, like a memo hit
        sim.run()
        assert done.calls == [(0, True)]
        assert database.total_units == 0  # no dispatch: the fleet already paid
        assert (cache.l2_hits, cache.l2_misses, cache.misses) == (1, 0, 0)
        # The hit was promoted into the local L1 memo: a re-issue is an
        # ordinary L1 hit and never consults the tier again.
        again = Recorder()
        cache.submit(("q", 3), 3, again)
        sim.run()
        assert again.calls == [(0, True)]
        assert (cache.hits, cache.l2_hits) == (1, 1)

    def test_l2_miss_dispatches_then_publishes_on_success(self):
        sim, database, cache, _, view = make_l2_cache()
        cache.submit(("q", 2), 2, Recorder())
        sim.run()
        assert database.total_units == 2
        assert (cache.l2_misses, cache.l2_promotions) == (1, 1)
        # Published keys buffer in the view until the round owner commits.
        assert view.probe(("q", 2)) is False
        assert view.drain() == [("q", 2)]

    def test_publish_invisible_until_commit(self):
        from repro.runtime.l2cache import SharedQueryTier

        tier = SharedQueryTier()
        sim, _, cache, _, view = make_l2_cache(tier)
        cache.submit(("q", 1), 1, Recorder())
        sim.run()
        # Mid-round: a sibling shard's view must not see the key yet.
        sibling = tier.view()
        assert sibling.probe(("q", 1)) is False
        tier.commit([view.drain()])
        assert sibling.probe(("q", 1)) is True
        assert tier.committed_size == 1

    def test_failures_never_reach_the_tier(self):
        sim, _, cache, _, view = make_l2_cache(failure_prob=1.0)
        cache.submit(("q", 2), 2, Recorder())
        sim.run()
        assert cache.memo_size == 0  # L1 did not memoize the failure
        assert view.drain() == []  # and nothing was published to L2
        assert cache.l2_promotions == 0

    def test_cancelled_primary_reissue_publishes_only_the_success(self):
        sim, database, cache, _, view = make_l2_cache()
        primary = cache.submit(("q", 4), 4, Recorder())
        cache.submit(("q", 4), 4, Recorder())  # live follower forces a reissue
        primary.cancel()
        sim.run()
        assert cache.reissues == 1
        assert database.total_units == 1 + 4
        assert view.drain() == [("q", 4)]  # one publish, from the reissue
        assert cache.l2_promotions == 1

    def test_duplicate_publishes_dedupe_in_the_view(self):
        from repro.runtime.l2cache import ShardL2View

        view = ShardL2View(set())
        assert view.publish("k") is True
        assert view.publish("k") is False  # already pending
        assert view.drain() == ["k"]
        view.apply_delta(["k"], [])
        assert view.publish("k") is False  # already committed

    def test_tier_commit_is_fifo_bounded_with_delta(self):
        from repro.runtime.l2cache import SharedQueryTier

        tier = SharedQueryTier(limit=2)
        tier.commit([["a", "b"]])
        assert tier.take_delta() == (["a", "b"], [])
        tier.commit([["c"], ["b", "d"]])  # "b" dedupes; "a" (oldest) evicts
        added, removed = tier.take_delta()
        assert added == ["c", "d"]
        assert removed == ["a", "b"]  # FIFO: the two oldest make room
        assert tier.committed_size == 2
        assert tier.take_delta() == ([], [])  # deltas ship exactly once

    def test_tier_limit_validated(self):
        from repro.runtime.l2cache import SharedQueryTier

        with pytest.raises(ValueError):
            SharedQueryTier(limit=0)
