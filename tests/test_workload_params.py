"""PatternParams validation (Table 1 bounds)."""

import pytest

from repro.errors import GenerationError
from repro.workload.params import PatternParams, TABLE1_ROWS


class TestDefaults:
    def test_table1_defaults(self):
        params = PatternParams()
        assert params.nb_nodes == 64
        assert params.nb_rows == 4
        assert params.pct_enabler == 50.0
        assert params.min_pred == 1 and params.max_pred == 4
        assert params.min_cost == 1 and params.max_cost == 5

    def test_table1_rows_complete(self):
        assert len(TABLE1_ROWS) == 16
        names = [row[0] for row in TABLE1_ROWS]
        assert "nb_nodes" in names and "IO_delay" in names


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"nb_nodes": 0},
            {"nb_rows": 0},
            {"nb_rows": 65},  # > nb_nodes
            {"pct_enabled": -1},
            {"pct_enabled": 101},
            {"pct_enabler": 200},
            {"pct_enabling_hop": -5},
            {"pct_data_hop": 101},
            {"min_pred": 3, "max_pred": 2},
            {"min_pred": -1},
            {"pct_added_data_edges": -150},
            {"min_cost": 0},
            {"min_cost": 5, "max_cost": 2},
        ],
    )
    def test_rejects_out_of_range(self, kwargs):
        with pytest.raises(GenerationError):
            PatternParams(**kwargs)

    def test_with_seed(self):
        params = PatternParams(seed=0)
        reseeded = params.with_seed(9)
        assert reseeded.seed == 9
        assert reseeded.nb_nodes == params.nb_nodes

    def test_replace(self):
        params = PatternParams().replace(pct_enabled=25, nb_rows=8)
        assert params.pct_enabled == 25
        assert params.nb_rows == 8

    def test_frozen(self):
        with pytest.raises(Exception):
            PatternParams().nb_nodes = 10  # type: ignore[misc]
