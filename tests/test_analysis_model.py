"""The analytical model: Equations (1)-(6)."""

import pytest

from repro.analysis.model import AnalyticalModel
from repro.errors import ModelError
from repro.simdb.profiler import DbFunction


def constant_db(unit_time=10.0):
    return DbFunction(((1.0, unit_time), (100.0, unit_time)))


def linear_db(intercept=10.0, slope=2.0, max_gmpl=50.0):
    return DbFunction(((0.0, intercept), (max_gmpl, intercept + slope * max_gmpl)))


class TestFixpoint:
    def test_constant_db_gives_constant_unit_time(self):
        model = AnalyticalModel(constant_db(10.0))
        assert model.unit_time(20.0, 30.0) == pytest.approx(10.0)

    def test_linear_db_matches_closed_form(self):
        # u = a + b·(Th·W/1000)·u  ⇒  u = a / (1 - b·load)
        model = AnalyticalModel(linear_db(intercept=10.0, slope=2.0))
        throughput, work = 10.0, 20.0
        load = throughput * work / 1000.0  # 0.2
        expected = 10.0 / (1 - 2.0 * load)  # 16.666...
        assert model.unit_time(throughput, work) == pytest.approx(expected, rel=1e-6)

    def test_solution_reports_gmpl(self):
        model = AnalyticalModel(linear_db())
        solution = model.solve(10.0, 20.0)
        assert solution.gmpl == pytest.approx(
            10.0 * 20.0 * solution.unit_time_ms / 1000.0
        )
        assert not solution.extrapolated

    def test_saturation_returns_none(self):
        # slope·load >= 1 ⇒ no fixpoint: slope 2, need Th·W >= 500.
        model = AnalyticalModel(linear_db(slope=2.0))
        assert model.solve(10.0, 50.0) is None
        assert model.unit_time(10.0, 50.0) is None

    def test_zero_load(self):
        model = AnalyticalModel(linear_db(intercept=10.0))
        solution = model.solve(0.0, 100.0)
        assert solution.unit_time_ms == pytest.approx(10.0)
        assert solution.gmpl == 0.0

    def test_negative_inputs_rejected(self):
        model = AnalyticalModel(constant_db())
        with pytest.raises(ModelError):
            model.solve(-1.0, 10.0)


class TestBounds:
    def test_max_work_near_closed_form(self):
        # Existence bound: slope·Th·W/1000 < 1 ⇒ W < 1000/(Th·slope) = 50.
        model = AnalyticalModel(linear_db(slope=2.0))
        assert model.max_work(10.0) == pytest.approx(50.0, abs=0.1)

    def test_max_work_monotone_in_throughput(self):
        model = AnalyticalModel(linear_db(slope=2.0))
        assert model.max_work(20.0) < model.max_work(10.0)

    def test_max_work_infinite_for_flat_db(self):
        model = AnalyticalModel(constant_db())
        assert model.max_work(10.0) == float("inf")

    def test_max_throughput_inverse_relationship(self):
        model = AnalyticalModel(linear_db(slope=2.0))
        # Th_max(W) · W ≈ 1000/slope = 500.
        assert model.max_throughput(25.0) * 25.0 == pytest.approx(500.0, rel=0.01)

    def test_zero_throughput_or_work(self):
        model = AnalyticalModel(linear_db())
        assert model.max_work(0.0) == float("inf")
        assert model.max_throughput(0.0) == float("inf")

    def test_solutions_exist_up_to_the_bound(self):
        model = AnalyticalModel(linear_db(slope=2.0))
        bound = model.max_work(10.0)
        assert model.solve(10.0, bound * 0.99) is not None
        assert model.solve(10.0, bound * 1.05) is None


class TestPredictions:
    def test_equation_1(self):
        model = AnalyticalModel(constant_db(10.0))
        # TimeInSeconds = TimeInUnits × UnitTime = 30 × 10ms = 0.3 s.
        assert model.predict_seconds(10.0, 20.0, 30.0) == pytest.approx(0.3)

    def test_predict_none_when_saturated(self):
        model = AnalyticalModel(linear_db(slope=2.0))
        assert model.predict_seconds(10.0, 60.0, 30.0) is None

    def test_solution_accessors(self):
        model = AnalyticalModel(constant_db(10.0))
        solution = model.solve(10.0, 20.0)
        time_units = 5.0
        # Eq (3): Lmpl = Work / TimeInUnits.
        assert solution.lmpl(time_units) == pytest.approx(4.0)
        # Eq (2): Impl = Th × TimeInSeconds = 10 × 0.05 = 0.5.
        assert solution.impl(time_units) == pytest.approx(0.5)
        # Eq (5): Gmpl = Impl × Lmpl.
        assert solution.gmpl == pytest.approx(
            solution.impl(time_units) * solution.lmpl(time_units)
        )

    def test_extrapolation_flagged(self):
        db = DbFunction(((1.0, 10.0), (2.0, 12.0)))  # tiny profiled range
        model = AnalyticalModel(db)
        solution = model.solve(10.0, 40.0)
        assert solution is not None
        assert solution.extrapolated
