"""Unit tests for the sharded runtime: routing, executors, worker protocol."""

from __future__ import annotations

import pytest

from repro.api import DecisionService, ExecutionConfig
from repro.api.backends import create_backend
from repro.api.events import InstanceCompleteEvent, LaunchEvent, QueryDoneEvent
from repro.core.serialize import config_to_dict, schema_to_dict
from repro.errors import ExecutionError
from repro.nulls import NULL
from repro.runtime import (
    MergedEventLog,
    ShardedDecisionService,
    ShardTask,
    create_service,
    execute_shard,
    merge_shard_events,
    shard_of,
)
from repro.runtime.sharding import _split_concurrency

from tests._support import diamond_schema, scenario_pattern


@pytest.fixture(scope="module")
def pattern():
    return scenario_pattern(1)


# -- routing -------------------------------------------------------------------


class TestRouting:
    def test_shard_of_is_stable_and_in_range(self):
        for shards in (1, 2, 4, 7):
            for index in range(50):
                home = shard_of(f"flow#{index}", shards)
                assert 0 <= home < shards
                assert home == shard_of(f"flow#{index}", shards)  # deterministic

    def test_shard_of_spreads_ids(self):
        homes = {shard_of(f"flow#{i}", 4) for i in range(64)}
        assert homes == {0, 1, 2, 3}

    def test_explicit_instance_id_routes_to_its_home(self, pattern):
        service = ShardedDecisionService(
            pattern.schema, ExecutionConfig.from_code("PCE0", shards=4)
        )
        handle = service.submit(pattern.source_values, instance_id="custom-id")
        assert handle.shard == shard_of("custom-id", 4)
        assert handle.instance_id == "custom-id"

    def test_duplicate_ids_rejected_across_shards(self, pattern):
        service = ShardedDecisionService(
            pattern.schema, ExecutionConfig.from_code("PCE0", shards=4)
        )
        service.submit(pattern.source_values, instance_id="dup")
        with pytest.raises(ExecutionError, match="duplicate instance id 'dup'"):
            service.submit(pattern.source_values, instance_id="dup")

    def test_split_concurrency(self):
        assert _split_concurrency(4, 4) == [1, 1, 1, 1]
        assert _split_concurrency(7, 3) == [3, 2, 2]
        assert _split_concurrency(1, 3) == [1, 1, 1]  # every busy shard moves
        assert _split_concurrency(5, 1) == [5]
        assert _split_concurrency(3, 0) == []


# -- facade behavior -----------------------------------------------------------


class TestShardedFacade:
    def test_rejects_prebuilt_backend(self, pattern):
        backend = create_backend("ideal")
        with pytest.raises(TypeError, match="registered backend name"):
            ShardedDecisionService(
                pattern.schema, ExecutionConfig(shards=2), backend=backend
            )

    def test_backend_name_and_options_override(self, pattern):
        service = ShardedDecisionService(
            pattern.schema,
            ExecutionConfig.from_code("PCE0", shards=2),
            backend="ideal",
            seed=3,
        )
        assert service.config.backend == "ideal"
        assert service.config.backend_options["seed"] == 3

    def test_accepts_code_string_and_default_config(self, pattern):
        service = ShardedDecisionService(pattern.schema, "PSE80")
        assert service.shards == 1
        handle = service.submit(pattern.source_values)
        assert handle.wait().done

    def test_handle_values_and_repr(self, pattern):
        service = ShardedDecisionService(
            pattern.schema, ExecutionConfig.from_code("PCE0", shards=2)
        )
        handle = service.submit(pattern.source_values)
        assert "running" in repr(handle)
        result = handle.result()
        assert set(result) == set(pattern.schema.target_names)
        assert "done" in repr(handle)
        assert handle.value_map()  # stable cells materialized
        assert "shards=2" in repr(service)

    def test_summary_empty_service_is_zeroed(self, pattern):
        for executor in ("serial", "process"):
            service = ShardedDecisionService(
                pattern.schema,
                ExecutionConfig.from_code("PCE0", shards=2, executor=executor),
            )
            summary = service.summary()
            assert summary.count == 0
            assert service.total_units == 0
            assert service.now == 0.0

    def test_mean_gmpl_is_time_weighted(self, pattern):
        service = ShardedDecisionService(
            pattern.schema, ExecutionConfig.from_code("PSE100", shards=2)
        )
        service.submit_stream([0.0, 0.0, 0.0, 0.0], values=pattern.source_values)
        stats = service.stats()
        expected_total = sum(s.end_time for s in stats)
        assert expected_total > 0
        expected = sum(s.mean_gmpl * s.end_time for s in stats) / expected_total
        assert service.mean_gmpl() == pytest.approx(expected)

    def test_run_closed_covers_all_ids_in_order(self, pattern):
        service = ShardedDecisionService(
            pattern.schema, ExecutionConfig.from_code("PCE0", shards=3)
        )
        handles = service.run_closed(10, concurrency=4, values=pattern.source_values)
        assert [h.instance_id for h in handles] == [
            f"{pattern.schema.name}#{k}" for k in range(1, 11)
        ]
        assert all(h.done for h in handles)
        assert all(h.shard == service.shard_of(h.instance_id) for h in handles)
        assert service.summary().count == 10

    def test_run_closed_validation(self, pattern):
        service = ShardedDecisionService(pattern.schema, ExecutionConfig(shards=2))
        with pytest.raises(ValueError, match="n must be >= 1"):
            service.run_closed(0)
        with pytest.raises(ValueError, match="concurrency must be >= 1"):
            service.run_closed(3, concurrency=0)

    def test_create_service_picks_the_facade(self, pattern):
        assert isinstance(create_service(pattern.schema, "PCE0"), DecisionService)
        assert isinstance(
            create_service(pattern.schema, ExecutionConfig(shards=2)),
            ShardedDecisionService,
        )
        assert isinstance(
            create_service(
                pattern.schema, ExecutionConfig(executor="process")
            ),
            ShardedDecisionService,
        )


# -- merged event ordering -----------------------------------------------------


class _StampedEvent:
    def __init__(self, time, label):
        self.time = time
        self.label = label

    def __repr__(self):
        return f"E({self.time}, {self.label})"


class TestMergedEvents:
    def test_merge_orders_by_time_then_shard_then_arrival(self):
        a0, a1 = _StampedEvent(1.0, "a0"), _StampedEvent(3.0, "a1")
        b0, b1 = _StampedEvent(1.0, "b0"), _StampedEvent(2.0, "b1")
        merged = merge_shard_events([[a0, a1], [b0, b1]])
        assert [e.label for e in merged] == ["a0", "b0", "b1", "a1"]

    def test_merged_log_records_per_shard(self):
        log = MergedEventLog(2)
        first, second = _StampedEvent(2.0, "x"), _StampedEvent(1.0, "y")
        log.record(0, first)
        log.record(1, second)
        assert len(log) == 2
        assert log.per_shard(0) == (first,)
        assert [e.label for e in log.events] == ["y", "x"]

    def test_serial_log_matches_plain_service_log(self, pattern):
        plain = DecisionService(pattern.schema, ExecutionConfig.from_code("PSE50"))
        plain_log = plain.attach_log()
        plain.submit_stream([0.0, 1.0, 2.0], values=pattern.source_values)

        sharded = ShardedDecisionService(
            pattern.schema, ExecutionConfig.from_code("PSE50", shards=1)
        )
        sharded_log = sharded.attach_log()
        sharded.submit_stream([0.0, 1.0, 2.0], values=pattern.source_values)

        assert len(sharded_log) == len(plain_log.events)
        assert sharded_log.of_type(LaunchEvent) == plain_log.of_type(LaunchEvent)
        assert sharded_log.events == plain_log.events


# -- the worker protocol, exercised in-process ---------------------------------


class TestWorkerProtocol:
    def _task(self, pattern, ops, collect_events=True, shard=0):
        config = ExecutionConfig.from_code("PSE50", engine="batched")
        return ShardTask(
            shard=shard,
            schema_data=schema_to_dict(pattern.schema),
            config_data=config_to_dict(config),
            ops=ops,
            collect_events=collect_events,
        )

    def test_execute_shard_replays_submits(self, pattern):
        sources = dict(pattern.source_values)
        task = self._task(
            pattern,
            ops=[
                ("submit", "w#1", sources, None),
                ("submit", "w#2", sources, 5.0),
            ],
        )
        outcome = execute_shard(task)
        assert outcome.shard == 0
        assert [r.instance_id for r in outcome.records] == ["w#1", "w#2"]
        assert all(r.done for r in outcome.records)
        assert outcome.summary.count == 2
        assert outcome.total_units > 0
        assert outcome.backend_name == "ideal"
        assert outcome.time_unit == "units"
        assert outcome.events  # collected
        # The outcome mirrors a hand-driven service with the same workload.
        mirror = DecisionService(
            pattern.schema, ExecutionConfig.from_code("PSE50", engine="batched")
        )
        mirror.submit(sources, instance_id="w#1")
        mirror.submit(sources, at=5.0, instance_id="w#2")
        mirror.run()
        assert outcome.records[0].metrics == mirror.handles[0].metrics
        assert outcome.records[1].values == dict(mirror.handles[1].instance.value_map())

    def test_execute_shard_replays_closed_loops(self, pattern):
        sources = dict(pattern.source_values)
        task = self._task(
            pattern,
            ops=[("closed", ["c#1", "c#2", "c#3"], [sources] * 3, 2)],
            collect_events=False,
        )
        outcome = execute_shard(task)
        assert [r.instance_id for r in outcome.records] == ["c#1", "c#2", "c#3"]
        assert outcome.summary.count == 3
        assert outcome.events is None

    def test_unknown_op_rejected(self, pattern):
        task = self._task(pattern, ops=[("warp", "w#1")])
        with pytest.raises(ExecutionError, match="unknown shard op"):
            execute_shard(task)


# -- the process executor ------------------------------------------------------


def run_trace(service_factory, pattern):
    service = service_factory()
    log = service.attach_log()
    events = []
    service.on_instance_complete(lambda event: events.append(event.instance_id))
    service.submit_stream(
        [0.0, 1.0, 2.0, 3.0, 4.0, 5.0], values=pattern.source_values
    )
    return {
        "metrics": [h.metrics for h in service.handles],
        "values": [h.value_map() for h in service.handles],
        "stats": service.stats(),
        "summary": service.summary(),
        "log": [
            (type(e).__name__, e.time, e.instance_id) for e in log.events
        ],
        "completions": events,
        "now": service.now,
        "time_unit": service.time_unit(),
    }


class TestProcessExecutor:
    def test_process_matches_serial_exactly(self, pattern):
        def factory(executor):
            return lambda: ShardedDecisionService(
                pattern.schema,
                ExecutionConfig.from_code(
                    "PSE50", engine="batched", shards=3, executor=executor
                ),
            )

        serial = run_trace(factory("serial"), pattern)
        process = run_trace(factory("process"), pattern)
        assert process["metrics"] == serial["metrics"]
        assert process["values"] == serial["values"]
        assert process["stats"] == serial["stats"]
        assert process["summary"] == serial["summary"]
        assert process["log"] == serial["log"]
        # Handler *population* is executor-independent; live (serial)
        # delivery is shard-major while process replay follows the merged
        # global order, so only the multiset is contractual.
        assert sorted(process["completions"]) == sorted(serial["completions"])
        assert process["now"] == serial["now"]
        assert process["time_unit"] == serial["time_unit"]

    def test_pre_run_handle_contract(self, pattern):
        service = ShardedDecisionService(
            pattern.schema, ExecutionConfig(shards=2, executor="process")
        )
        handle = service.submit(pattern.source_values)
        assert not handle.done
        with pytest.raises(ValueError, match="has no metrics yet"):
            handle.metrics
        some_attr = next(iter(pattern.schema)).name
        assert handle.value(some_attr) is NULL  # nothing materialized yet
        with pytest.raises(KeyError):  # typos raise like the live facade
            handle.value("no-such-attribute")
        service.run()
        assert handle.done
        service.close()

    def test_incremental_rounds_regression(self, pattern):
        """Submit-after-run works: the old one-shot restriction is gone.

        PR 10 regression pin — the process executor used to reject any
        submission after its single round with an "exactly one round"
        ExecutionError; persistent workers removed that restriction.
        """
        service = ShardedDecisionService(
            pattern.schema, ExecutionConfig(shards=2, executor="process")
        )
        first = service.submit(pattern.source_values)
        service.run()
        assert first.done
        second = service.submit(pattern.source_values)  # no ExecutionError
        assert not second.done
        closed = service.run_closed(2, values=pattern.source_values)
        assert second.done  # run_closed drained the whole fleet
        assert all(h.done for h in closed)
        assert service.summary().count == 4
        service.run()  # idempotent extra run is still fine
        service.close()

    def test_incremental_rounds_match_serial(self, pattern):
        """Multi-round submit → run → submit traces are executor-identical."""

        def drive(executor):
            service = ShardedDecisionService(
                pattern.schema,
                ExecutionConfig.from_code(
                    "PSE50", engine="batched", shards=2, executor=executor
                ),
            )
            log = service.attach_log()
            service.submit_stream([0.0, 1.0, 2.0], values=pattern.source_values)
            round_one = (service.now, service.summary())
            service.submit_stream(
                [service.now, service.now + 1.0], values=pattern.source_values
            )
            service.submit(pattern.source_values)  # at=None: shard clock
            service.run()
            trace = {
                "round_one": round_one,
                "metrics": [h.metrics for h in service.handles],
                "values": [h.value_map() for h in service.handles],
                "stats": service.stats(),
                "summary": service.summary(),
                "log": [(type(e).__name__, e.time, e.instance_id) for e in log.events],
                "now": service.now,
            }
            service.close()
            return trace

        serial = drive("serial")
        process = drive("process")
        assert process == serial

    def test_run_until_supported(self, pattern):
        """run(until=...) pauses the fleet mid-simulation, then resumes."""

        def drive(executor):
            service = ShardedDecisionService(
                pattern.schema,
                ExecutionConfig.from_code(
                    "PSE50", shards=2, executor=executor
                ),
            )
            service.submit_stream(
                [0.0, 2.0, 4.0, 6.0], values=pattern.source_values, run=False
            )
            service.run(until=1.0)
            partial = (service.now, service.summary().count)
            service.run()
            trace = (partial, service.now, service.summary())
            service.close()
            return trace

        serial = drive("serial")
        process = drive("process")
        assert process == serial
        (partial_now, partial_count), final_now, final_summary = serial
        assert partial_now <= 1.0
        assert final_summary.count == 4
        assert final_now > partial_now

    def test_past_time_submission_rejected_up_front(self, pattern):
        service = ShardedDecisionService(
            pattern.schema, ExecutionConfig(shards=2, executor="process")
        )
        with pytest.raises(ExecutionError, match="past time"):
            service.submit(pattern.source_values, at=-1.0)

    def test_late_observer_attach_delivers_from_next_round(self, pattern):
        """Observers may attach at any point; delivery starts next round."""
        service = ShardedDecisionService(
            pattern.schema, ExecutionConfig(shards=2, executor="process")
        )
        service.submit(pattern.source_values)
        service.run()
        log = service.attach_log()  # attached after a round has run
        completions = []
        service.on_instance_complete(lambda event: completions.append(event.instance_id))
        assert len(log) == 0  # the first round's events are gone by contract
        late = service.submit(pattern.source_values)
        service.run()
        assert late.done
        assert len(log) > 0  # second round's events were delivered
        assert completions == [late.instance_id]
        assert all(e.instance_id != service.handles[0].instance_id for e in log.events)
        service.close()

    def test_non_declarative_schema_raises_at_submit(self):
        # Workers spawn lazily at the first submission, so the serialize
        # failure surfaces there — before any process is forked.
        schema, source_values = diamond_schema()
        service = ShardedDecisionService(
            schema, ExecutionConfig(shards=2, executor="process")
        )
        with pytest.raises(ExecutionError, match="core.serialize"):
            service.submit(source_values)
        assert service.handles == ()  # the rejected submission left no trace

    def test_non_plain_backend_options_raise_helpfully(self, pattern):
        from repro.simdb.profiler import DbFunction

        service = ShardedDecisionService(
            pattern.schema,
            ExecutionConfig(
                shards=2,
                executor="process",
                backend="profiled",
                backend_options={"db_function": DbFunction(((1.0, 10.0),))},
            ),
        )
        with pytest.raises(ExecutionError, match="db_function"):
            service.submit(pattern.source_values)

    def test_wait_drives_the_whole_round(self, pattern):
        service = ShardedDecisionService(
            pattern.schema, ExecutionConfig(shards=2, executor="process")
        )
        handles = [service.submit(pattern.source_values) for _ in range(4)]
        metrics = handles[0].wait()
        assert metrics.done
        assert all(h.done for h in handles)  # one round drains everything

    def test_process_run_closed(self, pattern):
        service = ShardedDecisionService(
            pattern.schema,
            ExecutionConfig.from_code("PCE0", shards=2, executor="process"),
        )
        handles = service.run_closed(6, concurrency=2, values=pattern.source_values)
        assert len(handles) == 6
        assert all(h.done for h in handles)
        assert service.summary().count == 6
        service.close()

    def test_past_time_rejected_per_shard_between_rounds(self, pattern):
        """The floor is each shard's own clock, exactly like serial."""

        def drive(executor):
            service = ShardedDecisionService(
                pattern.schema,
                ExecutionConfig.from_code("PSE50", shards=2, executor=executor),
            )
            service.submit_stream(
                [0.0, 1.0, 2.0, 3.0], values=pattern.source_values
            )
            floors = tuple(stat.end_time for stat in service.stats())
            outcome = {}
            for shard, floor in enumerate(floors):
                # An id pinned to this shard, submitted just before its
                # own clock, must be rejected with the engine's message.
                instance_id = _id_on_shard(shard, service.shards, f"late-{executor}")
                with pytest.raises(ExecutionError, match="past time"):
                    service.submit(
                        pattern.source_values, at=floor - 0.5, instance_id=instance_id
                    )
                outcome[shard] = floor
            count = service.summary().count
            service.close()
            return outcome, count

        serial = drive("serial")
        process = drive("process")
        assert process == serial

    def test_worker_crash_surfaces_named_error(self, pattern):
        service = ShardedDecisionService(
            pattern.schema, ExecutionConfig(shards=2, executor="process")
        )
        service.submit(pattern.source_values)
        service.run()
        executor = service._executor
        victim = executor._workers[0].process
        victim.kill()
        victim.join(timeout=10.0)
        assert not victim.is_alive()
        assert service.worker_health()["alive"] is False
        service.submit(pattern.source_values)
        with pytest.raises(ExecutionError, match=r"shard 0 worker .* died"):
            service.run()
        service.close()

    def test_close_is_idempotent_and_final(self, pattern):
        service = ShardedDecisionService(
            pattern.schema, ExecutionConfig(shards=2, executor="process")
        )
        handle = service.submit(pattern.source_values)
        service.run()
        pids = [w["pid"] for w in service.worker_health()["workers"]]
        assert len(pids) == 2
        service.close()
        service.close()  # idempotent
        # Cached results stay readable after close...
        assert handle.done
        assert service.summary().count == 1
        # ...but the fleet cannot be driven further.
        with pytest.raises(ExecutionError, match="closed"):
            service.submit(pattern.source_values)
        with pytest.raises(ExecutionError, match="closed"):
            service.run()

    def test_worker_health_lifecycle(self, pattern):
        service = ShardedDecisionService(
            pattern.schema, ExecutionConfig(shards=3, executor="process")
        )
        health = service.worker_health()
        assert health == {
            "executor": "process", "spawned": False, "alive": True, "workers": [],
        }
        service.submit(pattern.source_values)  # lazy spawn happens here
        health = service.worker_health()
        assert health["spawned"] is True and health["alive"] is True
        assert [w["shard"] for w in health["workers"]] == [0, 1, 2]
        assert all(w["alive"] for w in health["workers"])
        service.close()
        assert service.worker_health()["alive"] is False

    def test_serial_worker_health_is_trivially_alive(self, pattern):
        service = ShardedDecisionService(
            pattern.schema, ExecutionConfig(shards=2, executor="serial")
        )
        assert service.worker_health() == {
            "executor": "serial", "spawned": False, "alive": True, "workers": [],
        }
        service.close()  # no-op, but the method exists on both executors

    def test_snapshots_read_live_worker_state(self, pattern):
        service = ShardedDecisionService(
            pattern.schema, ExecutionConfig(shards=2, executor="process")
        )
        service.submit_stream([0.0, 1.0, 2.0], values=pattern.source_values)
        snapshots = service._executor.snapshots()
        assert [s["shard"] for s in snapshots] == [0, 1]
        assert sum(s["instances"] for s in snapshots) == 3
        assert sum(s["completed"] for s in snapshots) == 3
        stats = service.stats()
        assert [s["now"] for s in snapshots] == [st.end_time for st in stats]
        service.close()


def _id_on_shard(shard: int, shards: int, prefix: str) -> str:
    """An instance id whose CRC-32 home is *shard*."""
    for index in range(10_000):
        candidate = f"{prefix}-{index}"
        if shard_of(candidate, shards) == shard:
            return candidate
    raise AssertionError("no id found")  # pragma: no cover


# -- placement policies --------------------------------------------------------


class TestPlacement:
    def test_least_loaded_spreads_round_robin_from_empty(self, pattern):
        service = ShardedDecisionService(
            pattern.schema,
            ExecutionConfig(shards=3, placement="least-loaded"),
        )
        handles = [
            service.submit(pattern.source_values, at=float(i), instance_id=f"skew#{i}")
            for i in range(6)
        ]
        # All ids would hash wherever they like; least-loaded ignores the
        # hash and balances: ties break to the lowest shard index.
        assert [h.shard for h in handles] == [0, 1, 2, 0, 1, 2]
        # Routed ids resolve to their assigned shard, not the CRC home.
        assert service.shard_of("skew#0") == 0

    def test_least_loaded_counters_rebalance_after_drain(self, pattern):
        service = ShardedDecisionService(
            pattern.schema,
            ExecutionConfig.from_code("PSE50", shards=2, placement="least-loaded"),
        )
        service.submit(pattern.source_values)
        service.submit(pattern.source_values)
        service.run()  # both done; in-flight load back to zero everywhere
        late = service.submit(pattern.source_values)
        assert late.shard == 0  # fresh tie breaks to the lowest index again

    def test_least_loaded_identical_across_executors(self, pattern):
        def drive(executor):
            service = ShardedDecisionService(
                pattern.schema,
                ExecutionConfig.from_code(
                    "PSE50",
                    engine="batched",
                    shards=3,
                    executor=executor,
                    placement="least-loaded",
                ),
            )
            service.submit_stream(
                [0.0, 1.0, 2.0, 3.0, 4.0], values=pattern.source_values
            )
            service.submit_stream(
                [service.now, service.now + 1.0], values=pattern.source_values
            )
            trace = {
                "shards": [h.shard for h in service.handles],
                "metrics": [h.metrics for h in service.handles],
                "summary": service.summary(),
                "stats": service.stats(),
            }
            service.close()
            return trace

        serial = drive("serial")
        process = drive("process")
        assert process == serial

    def test_rejected_submission_rolls_back_load_accounting(self, pattern):
        service = ShardedDecisionService(
            pattern.schema,
            ExecutionConfig.from_code("PSE50", shards=2, placement="least-loaded"),
        )
        with pytest.raises(ExecutionError, match="past time"):
            service.submit(pattern.source_values, at=-1.0)
        assert service._assigned == [0, 0]
        assert service._routes == {}
        # The next valid submission still starts the rotation at shard 0.
        assert service.submit(pattern.source_values).shard == 0


# -- the shared L2 query tier, end to end --------------------------------------


class TestSharedL2Tier:
    def _trace(self, pattern, executor, rounds):
        """Drive *rounds* batches of the same population; return counters."""
        service = ShardedDecisionService(
            pattern.schema,
            ExecutionConfig.from_code(
                "PSE50", engine="batched", shards=2, executor=executor,
                query_cache=True,
            ),
        )
        for round_index in range(rounds):
            for index in range(8):
                # Same source rows every round, but each round lands on
                # the *other* shard — its own L1 is cold there, so reuse
                # can only come from the cross-shard L2 tier.
                service.submit(
                    pattern.source_values,
                    instance_id=_id_on_shard(round_index % 2, 2, f"r{round_index}-{index}"),
                )
            service.run()
        cache = service.summary()
        trace = {
            "l2_hits": cache.query_cache_l2_hits,
            "l2_misses": cache.query_cache_l2_misses,
            "l2_promotions": cache.query_cache_l2_promotions,
            "l1_hits": cache.query_cache_hits,
            "summary": cache,
            "values": [h.value_map() for h in service.handles],
            "now": service.now,
        }
        service.close()
        return trace

    def test_cross_shard_hits_materialize_across_rounds(self, pattern):
        trace = self._trace(pattern, "serial", rounds=2)
        assert trace["l2_promotions"] > 0  # round 1 published its keys
        assert trace["l2_hits"] > 0  # round 2 reused them across shards

    def test_l2_counters_identical_across_executors(self, pattern):
        serial = self._trace(pattern, "serial", rounds=3)
        process = self._trace(pattern, "process", rounds=3)
        assert process == serial
        assert serial["l2_hits"] > 0

    def test_single_round_runs_never_observe_the_tier(self, pattern):
        trace = self._trace(pattern, "process", rounds=1)
        assert trace["l2_hits"] == 0  # nothing committed before the only round
        assert trace["l2_promotions"] > 0  # but keys were published for later

    def test_tier_only_armed_with_cache_and_multiple_shards(self, pattern):
        from repro.runtime.executors import _l2_tier

        config = ExecutionConfig(query_cache=True, shards=2)
        assert _l2_tier(config, 2) is not None
        assert _l2_tier(config, 1) is None
        assert _l2_tier(config.replace(query_cache=False), 2) is None
