"""Unit tests for the sharded runtime: routing, executors, worker protocol."""

from __future__ import annotations

import pytest

from repro.api import DecisionService, ExecutionConfig
from repro.api.backends import create_backend
from repro.api.events import InstanceCompleteEvent, LaunchEvent, QueryDoneEvent
from repro.core.serialize import config_to_dict, schema_to_dict
from repro.errors import ExecutionError
from repro.nulls import NULL
from repro.runtime import (
    MergedEventLog,
    ShardedDecisionService,
    ShardTask,
    create_service,
    execute_shard,
    merge_shard_events,
    shard_of,
)
from repro.runtime.sharding import _split_concurrency

from tests._support import diamond_schema, scenario_pattern


@pytest.fixture(scope="module")
def pattern():
    return scenario_pattern(1)


# -- routing -------------------------------------------------------------------


class TestRouting:
    def test_shard_of_is_stable_and_in_range(self):
        for shards in (1, 2, 4, 7):
            for index in range(50):
                home = shard_of(f"flow#{index}", shards)
                assert 0 <= home < shards
                assert home == shard_of(f"flow#{index}", shards)  # deterministic

    def test_shard_of_spreads_ids(self):
        homes = {shard_of(f"flow#{i}", 4) for i in range(64)}
        assert homes == {0, 1, 2, 3}

    def test_explicit_instance_id_routes_to_its_home(self, pattern):
        service = ShardedDecisionService(
            pattern.schema, ExecutionConfig.from_code("PCE0", shards=4)
        )
        handle = service.submit(pattern.source_values, instance_id="custom-id")
        assert handle.shard == shard_of("custom-id", 4)
        assert handle.instance_id == "custom-id"

    def test_duplicate_ids_rejected_across_shards(self, pattern):
        service = ShardedDecisionService(
            pattern.schema, ExecutionConfig.from_code("PCE0", shards=4)
        )
        service.submit(pattern.source_values, instance_id="dup")
        with pytest.raises(ExecutionError, match="duplicate instance id 'dup'"):
            service.submit(pattern.source_values, instance_id="dup")

    def test_split_concurrency(self):
        assert _split_concurrency(4, 4) == [1, 1, 1, 1]
        assert _split_concurrency(7, 3) == [3, 2, 2]
        assert _split_concurrency(1, 3) == [1, 1, 1]  # every busy shard moves
        assert _split_concurrency(5, 1) == [5]
        assert _split_concurrency(3, 0) == []


# -- facade behavior -----------------------------------------------------------


class TestShardedFacade:
    def test_rejects_prebuilt_backend(self, pattern):
        backend = create_backend("ideal")
        with pytest.raises(TypeError, match="registered backend name"):
            ShardedDecisionService(
                pattern.schema, ExecutionConfig(shards=2), backend=backend
            )

    def test_backend_name_and_options_override(self, pattern):
        service = ShardedDecisionService(
            pattern.schema,
            ExecutionConfig.from_code("PCE0", shards=2),
            backend="ideal",
            seed=3,
        )
        assert service.config.backend == "ideal"
        assert service.config.backend_options["seed"] == 3

    def test_accepts_code_string_and_default_config(self, pattern):
        service = ShardedDecisionService(pattern.schema, "PSE80")
        assert service.shards == 1
        handle = service.submit(pattern.source_values)
        assert handle.wait().done

    def test_handle_values_and_repr(self, pattern):
        service = ShardedDecisionService(
            pattern.schema, ExecutionConfig.from_code("PCE0", shards=2)
        )
        handle = service.submit(pattern.source_values)
        assert "running" in repr(handle)
        result = handle.result()
        assert set(result) == set(pattern.schema.target_names)
        assert "done" in repr(handle)
        assert handle.value_map()  # stable cells materialized
        assert "shards=2" in repr(service)

    def test_summary_empty_service_is_zeroed(self, pattern):
        for executor in ("serial", "process"):
            service = ShardedDecisionService(
                pattern.schema,
                ExecutionConfig.from_code("PCE0", shards=2, executor=executor),
            )
            summary = service.summary()
            assert summary.count == 0
            assert service.total_units == 0
            assert service.now == 0.0

    def test_mean_gmpl_is_time_weighted(self, pattern):
        service = ShardedDecisionService(
            pattern.schema, ExecutionConfig.from_code("PSE100", shards=2)
        )
        service.submit_stream([0.0, 0.0, 0.0, 0.0], values=pattern.source_values)
        stats = service.stats()
        expected_total = sum(s.end_time for s in stats)
        assert expected_total > 0
        expected = sum(s.mean_gmpl * s.end_time for s in stats) / expected_total
        assert service.mean_gmpl() == pytest.approx(expected)

    def test_run_closed_covers_all_ids_in_order(self, pattern):
        service = ShardedDecisionService(
            pattern.schema, ExecutionConfig.from_code("PCE0", shards=3)
        )
        handles = service.run_closed(10, concurrency=4, values=pattern.source_values)
        assert [h.instance_id for h in handles] == [
            f"{pattern.schema.name}#{k}" for k in range(1, 11)
        ]
        assert all(h.done for h in handles)
        assert all(h.shard == service.shard_of(h.instance_id) for h in handles)
        assert service.summary().count == 10

    def test_run_closed_validation(self, pattern):
        service = ShardedDecisionService(pattern.schema, ExecutionConfig(shards=2))
        with pytest.raises(ValueError, match="n must be >= 1"):
            service.run_closed(0)
        with pytest.raises(ValueError, match="concurrency must be >= 1"):
            service.run_closed(3, concurrency=0)

    def test_create_service_picks_the_facade(self, pattern):
        assert isinstance(create_service(pattern.schema, "PCE0"), DecisionService)
        assert isinstance(
            create_service(pattern.schema, ExecutionConfig(shards=2)),
            ShardedDecisionService,
        )
        assert isinstance(
            create_service(
                pattern.schema, ExecutionConfig(executor="process")
            ),
            ShardedDecisionService,
        )


# -- merged event ordering -----------------------------------------------------


class _StampedEvent:
    def __init__(self, time, label):
        self.time = time
        self.label = label

    def __repr__(self):
        return f"E({self.time}, {self.label})"


class TestMergedEvents:
    def test_merge_orders_by_time_then_shard_then_arrival(self):
        a0, a1 = _StampedEvent(1.0, "a0"), _StampedEvent(3.0, "a1")
        b0, b1 = _StampedEvent(1.0, "b0"), _StampedEvent(2.0, "b1")
        merged = merge_shard_events([[a0, a1], [b0, b1]])
        assert [e.label for e in merged] == ["a0", "b0", "b1", "a1"]

    def test_merged_log_records_per_shard(self):
        log = MergedEventLog(2)
        first, second = _StampedEvent(2.0, "x"), _StampedEvent(1.0, "y")
        log.record(0, first)
        log.record(1, second)
        assert len(log) == 2
        assert log.per_shard(0) == (first,)
        assert [e.label for e in log.events] == ["y", "x"]

    def test_serial_log_matches_plain_service_log(self, pattern):
        plain = DecisionService(pattern.schema, ExecutionConfig.from_code("PSE50"))
        plain_log = plain.attach_log()
        plain.submit_stream([0.0, 1.0, 2.0], values=pattern.source_values)

        sharded = ShardedDecisionService(
            pattern.schema, ExecutionConfig.from_code("PSE50", shards=1)
        )
        sharded_log = sharded.attach_log()
        sharded.submit_stream([0.0, 1.0, 2.0], values=pattern.source_values)

        assert len(sharded_log) == len(plain_log.events)
        assert sharded_log.of_type(LaunchEvent) == plain_log.of_type(LaunchEvent)
        assert sharded_log.events == plain_log.events


# -- the worker protocol, exercised in-process ---------------------------------


class TestWorkerProtocol:
    def _task(self, pattern, ops, collect_events=True, shard=0):
        config = ExecutionConfig.from_code("PSE50", engine="batched")
        return ShardTask(
            shard=shard,
            schema_data=schema_to_dict(pattern.schema),
            config_data=config_to_dict(config),
            ops=ops,
            collect_events=collect_events,
        )

    def test_execute_shard_replays_submits(self, pattern):
        sources = dict(pattern.source_values)
        task = self._task(
            pattern,
            ops=[
                ("submit", "w#1", sources, None),
                ("submit", "w#2", sources, 5.0),
            ],
        )
        outcome = execute_shard(task)
        assert outcome.shard == 0
        assert [r.instance_id for r in outcome.records] == ["w#1", "w#2"]
        assert all(r.done for r in outcome.records)
        assert outcome.summary.count == 2
        assert outcome.total_units > 0
        assert outcome.backend_name == "ideal"
        assert outcome.time_unit == "units"
        assert outcome.events  # collected
        # The outcome mirrors a hand-driven service with the same workload.
        mirror = DecisionService(
            pattern.schema, ExecutionConfig.from_code("PSE50", engine="batched")
        )
        mirror.submit(sources, instance_id="w#1")
        mirror.submit(sources, at=5.0, instance_id="w#2")
        mirror.run()
        assert outcome.records[0].metrics == mirror.handles[0].metrics
        assert outcome.records[1].values == dict(mirror.handles[1].instance.value_map())

    def test_execute_shard_replays_closed_loops(self, pattern):
        sources = dict(pattern.source_values)
        task = self._task(
            pattern,
            ops=[("closed", ["c#1", "c#2", "c#3"], [sources] * 3, 2)],
            collect_events=False,
        )
        outcome = execute_shard(task)
        assert [r.instance_id for r in outcome.records] == ["c#1", "c#2", "c#3"]
        assert outcome.summary.count == 3
        assert outcome.events is None

    def test_unknown_op_rejected(self, pattern):
        task = self._task(pattern, ops=[("warp", "w#1")])
        with pytest.raises(ExecutionError, match="unknown shard op"):
            execute_shard(task)


# -- the process executor ------------------------------------------------------


def run_trace(service_factory, pattern):
    service = service_factory()
    log = service.attach_log()
    events = []
    service.on_instance_complete(lambda event: events.append(event.instance_id))
    service.submit_stream(
        [0.0, 1.0, 2.0, 3.0, 4.0, 5.0], values=pattern.source_values
    )
    return {
        "metrics": [h.metrics for h in service.handles],
        "values": [h.value_map() for h in service.handles],
        "stats": service.stats(),
        "summary": service.summary(),
        "log": [
            (type(e).__name__, e.time, e.instance_id) for e in log.events
        ],
        "completions": events,
        "now": service.now,
        "time_unit": service.time_unit(),
    }


class TestProcessExecutor:
    def test_process_matches_serial_exactly(self, pattern):
        def factory(executor):
            return lambda: ShardedDecisionService(
                pattern.schema,
                ExecutionConfig.from_code(
                    "PSE50", engine="batched", shards=3, executor=executor
                ),
            )

        serial = run_trace(factory("serial"), pattern)
        process = run_trace(factory("process"), pattern)
        assert process["metrics"] == serial["metrics"]
        assert process["values"] == serial["values"]
        assert process["stats"] == serial["stats"]
        assert process["summary"] == serial["summary"]
        assert process["log"] == serial["log"]
        # Handler *population* is executor-independent; live (serial)
        # delivery is shard-major while process replay follows the merged
        # global order, so only the multiset is contractual.
        assert sorted(process["completions"]) == sorted(serial["completions"])
        assert process["now"] == serial["now"]
        assert process["time_unit"] == serial["time_unit"]

    def test_single_round_contract(self, pattern):
        service = ShardedDecisionService(
            pattern.schema, ExecutionConfig(shards=2, executor="process")
        )
        handle = service.submit(pattern.source_values)
        assert not handle.done
        with pytest.raises(ValueError, match="has no metrics yet"):
            handle.metrics
        some_attr = next(iter(pattern.schema)).name
        assert handle.value(some_attr) is NULL  # nothing materialized yet
        with pytest.raises(KeyError):  # typos raise like the live facade
            handle.value("no-such-attribute")
        service.run()
        assert handle.done
        with pytest.raises(ExecutionError, match="exactly one round"):
            service.submit(pattern.source_values)
        with pytest.raises(ExecutionError, match="exactly one round"):
            service.run_closed(2, values=pattern.source_values)
        service.run()  # idempotent second run is fine

    def test_run_until_unsupported(self, pattern):
        service = ShardedDecisionService(
            pattern.schema, ExecutionConfig(shards=2, executor="process")
        )
        with pytest.raises(ExecutionError, match="to completion"):
            service.run(until=10.0)

    def test_past_time_submission_rejected_up_front(self, pattern):
        service = ShardedDecisionService(
            pattern.schema, ExecutionConfig(shards=2, executor="process")
        )
        with pytest.raises(ExecutionError, match="past time"):
            service.submit(pattern.source_values, at=-1.0)

    def test_observers_must_attach_before_run(self, pattern):
        service = ShardedDecisionService(
            pattern.schema, ExecutionConfig(shards=2, executor="process")
        )
        service.submit(pattern.source_values)
        service.run()
        with pytest.raises(ExecutionError, match="before run"):
            service.attach_log()
        with pytest.raises(ExecutionError, match="before run"):
            service.on_launch(lambda event: None)

    def test_non_declarative_schema_raises_helpfully(self):
        schema, source_values = diamond_schema()
        service = ShardedDecisionService(
            schema, ExecutionConfig(shards=2, executor="process")
        )
        service.submit(source_values)
        with pytest.raises(ExecutionError, match="core.serialize"):
            service.run()

    def test_non_plain_backend_options_raise_helpfully(self, pattern):
        from repro.simdb.profiler import DbFunction

        service = ShardedDecisionService(
            pattern.schema,
            ExecutionConfig(
                shards=2,
                executor="process",
                backend="profiled",
                backend_options={"db_function": DbFunction(((1.0, 10.0),))},
            ),
        )
        service.submit(pattern.source_values)
        with pytest.raises(ExecutionError, match="db_function"):
            service.run()

    def test_wait_drives_the_whole_round(self, pattern):
        service = ShardedDecisionService(
            pattern.schema, ExecutionConfig(shards=2, executor="process")
        )
        handles = [service.submit(pattern.source_values) for _ in range(4)]
        metrics = handles[0].wait()
        assert metrics.done
        assert all(h.done for h in handles)  # one round drains everything

    def test_process_run_closed(self, pattern):
        service = ShardedDecisionService(
            pattern.schema,
            ExecutionConfig.from_code("PCE0", shards=2, executor="process"),
        )
        handles = service.run_closed(6, concurrency=2, values=pattern.source_values)
        assert len(handles) == 6
        assert all(h.done for h in handles)
        assert service.summary().count == 6
