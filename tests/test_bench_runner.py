"""Experiment runner: seed averaging, star expansion, open-system runs."""

import pytest

from repro import PatternParams, Strategy
from repro.bench.runner import (
    evaluate_code,
    evaluate_codes,
    measure_open_system,
    run_pattern_once,
    strategy_points,
)
from repro.workload.generator import generate_pattern

SMALL = PatternParams(nb_nodes=12, nb_rows=3, pct_enabled=50)


class TestEvaluate:
    def test_run_pattern_once(self):
        pattern = generate_pattern(SMALL.with_seed(0))
        metrics = run_pattern_once(pattern, Strategy.parse("PCE0"))
        assert metrics.done
        assert metrics.work_units > 0
        assert metrics.elapsed == metrics.work_units  # sequential on ideal DB

    def test_seed_averaging(self):
        result = evaluate_code(SMALL, "PCE0", seeds=(0, 1, 2))
        assert result.n == 3
        assert result.mean_work == pytest.approx(
            sum(r.work for r in result.runs) / 3
        )

    def test_star_code_runs_both_heuristics(self):
        result = evaluate_code(SMALL, "PC*100", seeds=(0, 1))
        assert result.n == 4  # 2 seeds × {PCE100, PCC100}
        assert {r.code for r in result.runs} == {"PCE100", "PCC100"}
        assert result.code == "PC*100"

    def test_evaluate_codes_keys(self):
        results = evaluate_codes(SMALL, ("PCE0", "NCE0"), seeds=(0,))
        assert set(results) == {"PCE0", "NCE0"}

    def test_strategy_points_conversion(self):
        results = evaluate_codes(SMALL, ("PCE0",), seeds=(0,))
        points = strategy_points(results)
        assert points[0].code == "PCE0"
        assert points[0].work == results["PCE0"].mean_work

    def test_propagation_never_does_more_work_sequentially(self):
        # Averaged over seeds, P ≤ N for conservative sequential runs —
        # the paper's Figure 5 headline, at test scale.
        p = evaluate_code(SMALL, "PCE0", seeds=range(6))
        n = evaluate_code(SMALL, "NCE0", seeds=range(6))
        assert p.mean_work <= n.mean_work + 1e-9


class TestOpenSystem:
    def test_measurement_basics(self):
        pattern = generate_pattern(PatternParams(nb_nodes=8, nb_rows=2, pct_enabled=50, seed=0))
        result = measure_open_system(
            pattern,
            "PCE100",
            arrival_rate_per_s=20.0,
            n_instances=40,
            warmup_instances=10,
            seed=1,
        )
        assert result.completed == 40
        assert result.measured == 30
        assert result.mean_seconds > 0
        assert result.p95_seconds >= result.mean_seconds * 0.5
        assert result.mean_gmpl > 0
        assert result.mean_ms == pytest.approx(result.mean_seconds * 1000.0)

    def test_heavier_load_is_slower(self):
        pattern = generate_pattern(PatternParams(nb_nodes=8, nb_rows=2, pct_enabled=100, seed=0))
        light = measure_open_system(pattern, "PCE0", 2.0, n_instances=60, warmup_instances=10)
        heavy = measure_open_system(pattern, "PCE0", 18.0, n_instances=60, warmup_instances=10)
        assert heavy.mean_seconds > light.mean_seconds

    def test_deterministic_per_seed(self):
        pattern = generate_pattern(PatternParams(nb_nodes=8, nb_rows=2, pct_enabled=50, seed=0))
        a = measure_open_system(pattern, "PCE100", 10.0, n_instances=30, warmup_instances=5, seed=3)
        b = measure_open_system(pattern, "PCE100", 10.0, n_instances=30, warmup_instances=5, seed=3)
        assert a.mean_seconds == b.mean_seconds
