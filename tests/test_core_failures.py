"""Failure injection: exception values and engine behaviour when queries fail.

"Tasks in a decision flow must be capable of executing once their input
attributes are stable, even if some of them have value ⊥ ... a decision
may have to be made with incomplete information, e.g., if a database is
down" — we extend ⊥ with the [HLS+99a] *exception values* the paper
mentions, injected by the database servers.
"""

import pytest

from repro import (
    Attribute,
    Comparison,
    DecisionFlowSchema,
    Engine,
    ExceptionValue,
    IdealDatabase,
    IsException,
    IsNull,
    NULL,
    Op,
    Simulation,
    Strategy,
    is_exception,
    is_null,
    synthesize,
)
from repro.core.conditions import resolver_from_mapping
from repro.core.tri import Tri
from tests._support import q


class TestExceptionValue:
    def test_identity_and_equality(self):
        assert ExceptionValue("down") == ExceptionValue("down")
        assert ExceptionValue("down") != ExceptionValue("timeout")
        assert len({ExceptionValue("x"), ExceptionValue("x")}) == 1

    def test_falsy_and_repr(self):
        assert not ExceptionValue("down")
        assert "down" in repr(ExceptionValue("down"))
        assert repr(ExceptionValue()) == "EXC"

    def test_predicates(self):
        assert is_exception(ExceptionValue())
        assert not is_exception(NULL)
        assert not is_null(ExceptionValue())


class TestConditionSemantics:
    def resolve(self, **values):
        return resolver_from_mapping(values)

    def test_comparisons_on_exceptions_are_false(self):
        exc = ExceptionValue("down")
        assert Comparison("a", Op.GT, 1).eval_tri(self.resolve(a=exc)) is Tri.FALSE
        assert Comparison("a", Op.EQ, exc).eval_tri(self.resolve(a=5)) is Tri.FALSE

    def test_is_null_is_false_on_exceptions(self):
        assert IsNull("a").eval_tri(self.resolve(a=ExceptionValue())) is Tri.FALSE

    def test_is_exception_predicate(self):
        pred = IsException("a")
        assert pred.eval_tri(self.resolve(a=ExceptionValue())) is Tri.TRUE
        assert pred.eval_tri(self.resolve(a=5)) is Tri.FALSE
        assert pred.eval_tri(self.resolve(a=NULL)) is Tri.FALSE
        assert pred.eval_tri(self.resolve()) is Tri.UNKNOWN
        assert pred.refs() == {"a"}


def failing_engine(schema, failure_prob, seed=0, code="PCE100"):
    simulation = Simulation()
    database = IdealDatabase(simulation, failure_prob=failure_prob, seed=seed)
    return Engine(schema, Strategy.parse(code), database), simulation


class TestEngineUnderFailures:
    def outage_schema(self):
        return DecisionFlowSchema(
            [
                Attribute("s"),
                Attribute("lookup", task=q("lookup", inputs=("s",), value=7, cost=2)),
                Attribute(
                    "fallback",
                    task=q("fallback", inputs=("s",), value=99, cost=1),
                    condition=IsException("lookup"),
                ),
                Attribute(
                    "t",
                    task=synthesize(
                        "t",
                        ("lookup", "fallback"),
                        lambda v: v["fallback"] if is_exception(v["lookup"]) else v["lookup"],
                    ),
                    is_target=True,
                ),
            ]
        )

    def test_all_queries_fail_flow_still_completes(self):
        engine, simulation = failing_engine(self.outage_schema(), failure_prob=1.0)
        instance = engine.submit_instance({"s": 0})
        simulation.run()
        assert instance.done
        # The lookup failed; its value is an exception; the fallback branch
        # (also failing here) is enabled by IsException and yields EXC too.
        assert is_exception(instance.cells["lookup"].value)
        assert instance.metrics.queries_failed == 2
        assert is_exception(instance.cells["t"].value)

    def test_no_failures_takes_primary_path(self):
        engine, simulation = failing_engine(self.outage_schema(), failure_prob=0.0)
        instance = engine.submit_instance({"s": 0})
        simulation.run()
        assert instance.cells["t"].value == 7
        # The fallback is disabled (lookup succeeded) and never launched.
        assert instance.cells["fallback"].value is NULL
        assert instance.metrics.queries_launched == 1

    def test_failed_work_still_counts(self):
        engine, simulation = failing_engine(self.outage_schema(), failure_prob=1.0)
        instance = engine.submit_instance({"s": 0})
        simulation.run()
        assert instance.metrics.work_units == 3  # lookup (2) + fallback (1)

    def test_failure_rate_roughly_matches_probability(self):
        schema = DecisionFlowSchema(
            [
                Attribute("s"),
                Attribute("t", task=q("t", inputs=("s",), value=1, cost=1), is_target=True),
            ]
        )
        simulation = Simulation()
        database = IdealDatabase(simulation, failure_prob=0.3, seed=5)
        engine = Engine(schema, Strategy.parse("PCE0"), database)
        for _ in range(300):
            engine.submit_instance({"s": 0}, at=simulation.now)
        simulation.run()
        failed = sum(i.metrics.queries_failed for i in engine.instances)
        assert 60 <= failed <= 120  # 300 draws at p=0.3

    def test_failure_prob_validation(self):
        with pytest.raises(ValueError, match="failure_prob"):
            IdealDatabase(Simulation(), failure_prob=1.5)

    def test_determinism(self):
        def run(seed):
            engine, simulation = failing_engine(self.outage_schema(), 0.5, seed=seed)
            instance = engine.submit_instance({"s": 0})
            simulation.run()
            return instance.metrics.queries_failed

        assert run(3) == run(3)

    def test_downstream_conditions_route_on_exception(self):
        # Comparison on EXC is false: the gated branch is disabled.
        schema = DecisionFlowSchema(
            [
                Attribute("s"),
                Attribute("x", task=q("x", inputs=("s",), value=50, cost=1)),
                Attribute(
                    "gated",
                    task=q("gated", inputs=("s",), value=1, cost=1),
                    condition=Comparison("x", Op.GT, 10),
                ),
                Attribute(
                    "t",
                    task=synthesize("t", ("gated",), lambda v: v["gated"]),
                    is_target=True,
                ),
            ]
        )
        engine, simulation = failing_engine(schema, failure_prob=1.0)
        instance = engine.submit_instance({"s": 0})
        simulation.run()
        assert is_exception(instance.cells["x"].value)
        assert instance.cells["gated"].value is NULL  # disabled by false cmp
        assert instance.cells["t"].value is NULL
