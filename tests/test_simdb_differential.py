"""Differential suite: coalesced kernels vs the per-unit reference.

The coalesced :class:`IdealDatabase` / :class:`ProfiledDatabase` kernels
replace one heap event per unit of processing with one completion event
per query.  These tests drive full engine runs — generated schema
patterns, every strategy dimension, both halt policies, result sharing,
and failure injection — through both kernels and assert the *traces*
match: per-instance Work, finish times (the paper's TimeInUnits),
cancellation/completion/failure counts, and the time-weighted mean Gmpl.

The ideal database runs on an integer clock, so its traces must be
bit-identical.  The profiled database accumulates float unit times along
different arithmetic paths (per-event addition vs analytic replanning),
so its times are compared to a tight relative tolerance while all integer
counters stay exact.
"""

from __future__ import annotations

import pytest

from repro import BatchedEngine, Engine, Simulation, Strategy
from repro.obs import Observability

from tests._support import make_database, scenario_pattern

ENGINE_CLASSES = {"reference": Engine, "batched": BatchedEngine}


def run_scenario(
    kernel: str,
    *,
    backend: str = "ideal",
    seed: int = 0,
    code: str = "PSE50",
    halt_policy: str = "cancel",
    share_results: bool = False,
    failure_prob: float = 0.0,
    instances: int = 4,
    spacing: float = 2.0,
    nb_nodes: int = 24,
    pct_enabled: float = 50.0,
    max_cost: int = 6,
    engine: str = "reference",
    cohorts: bool = False,
    observe: bool = False,
):
    """One engine run; returns the full observable trace."""
    pattern = scenario_pattern(
        seed, nb_nodes=nb_nodes, pct_enabled=pct_enabled, max_cost=max_cost
    )
    sim = Simulation()
    database = make_database(backend, kernel, sim, seed, failure_prob)
    engine = ENGINE_CLASSES[engine](
        pattern.schema,
        Strategy.parse(code),
        database,
        halt_policy=halt_policy,
        share_results=share_results,
        cohorts=cohorts,
        obs=Observability.create() if observe else None,
    )
    for index in range(instances):
        engine.submit_instance(pattern.source_values, at=index * spacing)
    sim.run()
    per_instance = [
        (
            inst.instance_id,
            inst.done,
            inst.metrics.work_units,
            inst.metrics.finish_time,
            inst.metrics.queries_launched,
            inst.metrics.queries_completed,
            inst.metrics.queries_cancelled,
            inst.metrics.queries_failed,
            inst.metrics.speculative_wasted_units,
        )
        for inst in engine.instances
    ]
    return {
        "per_instance": per_instance,
        "total_units": database.total_units,
        "queries_completed": database.queries_completed,
        "queries_cancelled": database.queries_cancelled,
        "queries_failed": database.queries_failed,
        "mean_gmpl": database.mean_gmpl(),
        "mean_gmpl_windowed": database.mean_gmpl(since=sim.now / 3.0),
        "end_time": sim.now,
        "events_executed": sim.events_executed,
    }


def assert_traces_match(coalesced: dict, per_unit: dict, *, exact_times: bool) -> None:
    assert len(coalesced["per_instance"]) == len(per_unit["per_instance"])
    for got, want in zip(coalesced["per_instance"], per_unit["per_instance"]):
        # Everything except finish_time is an exact integer/bool/string.
        assert got[:3] == want[:3], f"{got} != {want}"
        assert got[4:] == want[4:], f"{got} != {want}"
        if exact_times:
            assert got[3] == want[3], f"finish time {got[3]} != {want[3]} ({got[0]})"
        else:
            assert got[3] == pytest.approx(want[3], rel=1e-9), got[0]
    for key in ("total_units", "queries_completed", "queries_cancelled", "queries_failed"):
        assert coalesced[key] == per_unit[key], key
    assert coalesced["mean_gmpl"] == pytest.approx(per_unit["mean_gmpl"], rel=1e-9)
    assert coalesced["mean_gmpl_windowed"] == pytest.approx(
        per_unit["mean_gmpl_windowed"], rel=1e-9
    )
    if exact_times:
        assert coalesced["end_time"] == per_unit["end_time"]
    else:
        assert coalesced["end_time"] == pytest.approx(per_unit["end_time"], rel=1e-9)


# -- the seeded sweep ----------------------------------------------------------

#: (backend, strategy code, halt policy, share, failure_prob) × seeds.
SCENARIOS = [
    ("ideal", "PSE50", "cancel", False, 0.0),
    ("ideal", "PSE100", "cancel", False, 0.0),
    ("ideal", "PSC50", "cancel", False, 0.0),
    ("ideal", "PCE0", "cancel", False, 0.0),
    ("ideal", "PCC80", "cancel", False, 0.0),
    ("ideal", "NSE50", "cancel", False, 0.0),
    ("ideal", "PSE50", "drain", False, 0.0),
    ("ideal", "PCC100", "drain", False, 0.0),
    ("ideal", "PSE80", "cancel", True, 0.0),
    ("ideal", "PSE50", "drain", True, 0.0),
    ("ideal", "PSE50", "cancel", False, 0.3),
    ("ideal", "PSE80", "drain", True, 0.2),
    ("profiled", "PSE50", "cancel", False, 0.0),
    ("profiled", "PSE100", "cancel", False, 0.0),
    ("profiled", "PCC50", "cancel", False, 0.0),
    ("profiled", "PSE50", "drain", False, 0.0),
    ("profiled", "PSE80", "cancel", True, 0.0),
    ("profiled", "PSE50", "cancel", False, 0.25),
    ("profiled", "PCE0", "drain", False, 0.0),
    ("profiled", "PSC100", "drain", True, 0.1),
]


@pytest.mark.parametrize("seed", range(3))
@pytest.mark.parametrize(
    "backend,code,halt_policy,share,failure_prob",
    SCENARIOS,
    ids=[f"{b}-{c}-{h}{'-share' if s else ''}{'-fail' if f else ''}" for b, c, h, s, f in SCENARIOS],
)
def test_kernels_produce_identical_traces(backend, code, halt_policy, share, failure_prob, seed):
    kwargs = dict(
        backend=backend,
        seed=seed,
        code=code,
        halt_policy=halt_policy,
        share_results=share,
        failure_prob=failure_prob,
    )
    coalesced = run_scenario("coalesced", **kwargs)
    per_unit = run_scenario("per-unit", **kwargs)
    assert_traces_match(coalesced, per_unit, exact_times=(backend == "ideal"))


def test_coalesced_executes_far_fewer_events():
    """The point of the rewrite: event count per query drops to O(1)."""
    kwargs = dict(backend="ideal", code="PSE100", max_cost=30, instances=6, seed=1)
    coalesced = run_scenario("coalesced", **kwargs)
    per_unit = run_scenario("per-unit", **kwargs)
    assert coalesced["total_units"] == per_unit["total_units"]
    assert per_unit["events_executed"] >= 5 * coalesced["events_executed"]


def test_concurrent_identical_instances_stress_gmpl_replanning():
    """Many instances arriving together force frequent Gmpl changes."""
    for seed in range(4):
        kwargs = dict(
            backend="profiled",
            code="PSE100",
            instances=8,
            spacing=0.0,
            seed=seed,
            nb_nodes=16,
        )
        coalesced = run_scenario("coalesced", **kwargs)
        per_unit = run_scenario("per-unit", **kwargs)
        assert_traces_match(coalesced, per_unit, exact_times=False)


def _run_closed_loop(kernel: str, backend: str, seed: int, code: str):
    """Closed system: replacement instances start inside completion
    dispatches, which exercises same-instant start/completion ties."""
    from repro.api import DecisionService, ExecutionConfig
    from repro.api.backends import Backend

    pattern = scenario_pattern(seed, nb_nodes=20, pct_enabled=60.0, max_cost=5)
    sim = Simulation()
    database = make_database(backend, kernel, sim, seed, failure_prob=0.0)
    bundle = Backend(backend, sim, database, time_unit="units" if backend == "ideal" else "ms")
    service = DecisionService(pattern.schema, ExecutionConfig.from_code(code), backend=bundle)
    service.run_closed(12, concurrency=3, values=pattern.source_values)
    return {
        "per_instance": [
            (
                handle.instance_id,
                handle.done,
                handle.metrics.work_units,
                handle.metrics.finish_time,
                handle.metrics.queries_launched,
                handle.metrics.queries_completed,
                handle.metrics.queries_cancelled,
                handle.metrics.queries_failed,
                handle.metrics.speculative_wasted_units,
            )
            for handle in service.handles
        ],
        "total_units": database.total_units,
        "queries_completed": database.queries_completed,
        "queries_cancelled": database.queries_cancelled,
        "queries_failed": database.queries_failed,
        "mean_gmpl": database.mean_gmpl(),
        "mean_gmpl_windowed": database.mean_gmpl(since=sim.now / 3.0),
        "end_time": sim.now,
    }


@pytest.mark.parametrize("backend", ["ideal", "profiled"])
@pytest.mark.parametrize("code", ["PSE50", "PSE100"])
def test_closed_loop_traces_match(backend, code):
    for seed in range(3):
        coalesced = _run_closed_loop("coalesced", backend, seed, code)
        per_unit = _run_closed_loop("per-unit", backend, seed, code)
        assert_traces_match(coalesced, per_unit, exact_times=(backend == "ideal"))


def test_sequential_strategy_cancels_match():
    """%Permitted = 0 produces long queues of cancellations on halt."""
    for seed in range(4):
        kwargs = dict(backend="ideal", code="PSE0", instances=6, spacing=1.0, seed=seed)
        coalesced = run_scenario("coalesced", **kwargs)
        per_unit = run_scenario("per-unit", **kwargs)
        assert_traces_match(coalesced, per_unit, exact_times=True)


# -- cohort execution through both kernels -------------------------------------

#: (backend, strategy code, halt policy, failure_prob) — same-instant
#: bursts so cohorts actually form; a failure scenario so copy-on-diverge
#: splits cross the kernel boundary too.
COHORT_KERNEL_SCENARIOS = [
    ("ideal", "PSE100", "cancel", 0.0),
    ("ideal", "PSE50", "drain", 0.0),
    ("ideal", "PSE80", "cancel", 0.25),
    ("profiled", "PSE100", "cancel", 0.0),
    ("profiled", "PSE50", "cancel", 0.2),
]


@pytest.mark.parametrize(
    "backend,code,halt_policy,failure_prob",
    COHORT_KERNEL_SCENARIOS,
    ids=[f"{b}-{c}-{h}{'-fail' if f else ''}" for b, c, h, f in COHORT_KERNEL_SCENARIOS],
)
def test_cohort_traces_match_across_kernels(backend, code, halt_policy, failure_prob):
    """Cohorted batched runs stay kernel-identical — the instance dedupe
    layer must not perturb what either database kernel observes."""
    for seed in range(2):
        kwargs = dict(
            backend=backend,
            seed=seed,
            code=code,
            halt_policy=halt_policy,
            failure_prob=failure_prob,
            instances=6,
            spacing=0.0,
            engine="batched",
            cohorts=True,
        )
        coalesced = run_scenario("coalesced", **kwargs)
        per_unit = run_scenario("per-unit", **kwargs)
        assert_traces_match(coalesced, per_unit, exact_times=(backend == "ideal"))


@pytest.mark.parametrize("kernel", ["coalesced", "per-unit"])
@pytest.mark.parametrize(
    "backend,code,halt_policy,failure_prob",
    COHORT_KERNEL_SCENARIOS,
    ids=[f"{b}-{c}-{h}{'-fail' if f else ''}" for b, c, h, f in COHORT_KERNEL_SCENARIOS],
)
def test_cohorts_invisible_within_each_kernel(kernel, backend, code, halt_policy, failure_prob):
    """Within one kernel, cohorts on vs off is trace-identical — and the
    reference engine (where the flag is a documented no-op) agrees."""
    for seed in range(2):
        kwargs = dict(
            backend=backend,
            seed=seed,
            code=code,
            halt_policy=halt_policy,
            failure_prob=failure_prob,
            instances=6,
            spacing=0.0,
        )
        individual = run_scenario(kernel, engine="batched", cohorts=False, **kwargs)
        cohorted = run_scenario(kernel, engine="batched", cohorts=True, **kwargs)
        assert_traces_match(cohorted, individual, exact_times=True)
        reference = run_scenario(kernel, engine="reference", cohorts=True, **kwargs)
        assert_traces_match(reference, individual, exact_times=True)


@pytest.mark.parametrize("kernel", ["coalesced", "per-unit"])
@pytest.mark.parametrize("engine", ["reference", "batched"])
@pytest.mark.parametrize(
    "backend,code,halt_policy,failure_prob",
    [
        ("ideal", "PSE100", "cancel", 0.0),
        ("profiled", "PSE50", "drain", 0.0),
        ("bounded", "PSE50", "cancel", 0.1),
    ],
    ids=["ideal-PSE100", "profiled-PSE50-drain", "bounded-PSE50-fail"],
)
def test_armed_observability_invisible_on_both_kernels(
    kernel, engine, backend, code, halt_policy, failure_prob
):
    """Arming repro.obs changes nothing the DES kernels can observe:
    same per-instance trace, db totals, mean Gmpl, end time, and — the
    kernel-sharp check — the exact number of calendar events executed."""
    kwargs = dict(
        backend=backend,
        seed=2,
        code=code,
        halt_policy=halt_policy,
        failure_prob=failure_prob,
        engine=engine,
    )
    disarmed = run_scenario(kernel, **kwargs)
    armed = run_scenario(kernel, observe=True, **kwargs)
    assert_traces_match(armed, disarmed, exact_times=True)
    assert armed["events_executed"] == disarmed["events_executed"]
    assert armed["end_time"] == disarmed["end_time"]
