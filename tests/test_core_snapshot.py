"""Declarative semantics: the unique complete snapshot."""

import pytest

from repro import (
    Attribute,
    AttributeState,
    Comparison,
    DecisionFlowSchema,
    NULL,
    Op,
    check_against_snapshot,
    evaluate_schema,
)
from repro.errors import ExecutionError
from tests._support import diamond_schema, q


class TestEvaluateSchema:
    def test_diamond_with_disabled_branch(self):
        schema, source_values = diamond_schema()
        snapshot = evaluate_schema(schema, source_values)  # s = 5 disables b
        assert snapshot.states["a"] is AttributeState.VALUE
        assert snapshot.states["b"] is AttributeState.DISABLED
        assert snapshot.values["b"] is NULL
        # Target synthesizes a + b with ⊥ treated as 0 by the task.
        assert snapshot.values["t"] == 1

    def test_diamond_with_enabled_branch(self):
        schema, _ = diamond_schema()
        snapshot = evaluate_schema(schema, {"s": 50})
        assert snapshot.states["b"] is AttributeState.VALUE
        assert snapshot.values["t"] == 11

    def test_null_propagates_through_conditions(self):
        # c is enabled only if b > 0; with b disabled, the comparison on ⊥
        # is false, so c is disabled too (forward propagation, declaratively).
        schema = DecisionFlowSchema(
            [
                Attribute("s"),
                Attribute("b", task=q("b", value=9), condition=Comparison("s", Op.GT, 10)),
                Attribute(
                    "c",
                    task=q("c", inputs=("b",), value=1),
                    condition=Comparison("b", Op.GT, 0),
                ),
                Attribute("t", task=q("t", inputs=("c",), value=2), is_target=True),
            ]
        )
        snapshot = evaluate_schema(schema, {"s": 0})
        assert snapshot.states["b"] is AttributeState.DISABLED
        assert snapshot.states["c"] is AttributeState.DISABLED
        assert snapshot.states["t"] is AttributeState.VALUE

    def test_uniqueness(self):
        schema, source_values = diamond_schema()
        first = evaluate_schema(schema, source_values)
        second = evaluate_schema(schema, source_values)
        assert first.states == second.states
        assert first.values == second.values

    def test_missing_source_value(self):
        schema, _ = diamond_schema()
        with pytest.raises(ExecutionError, match="missing source"):
            evaluate_schema(schema, {})

    def test_extra_source_value(self):
        schema, _ = diamond_schema()
        with pytest.raises(ExecutionError, match="non-source"):
            evaluate_schema(schema, {"s": 5, "a": 1})


class TestSnapshotAccessors:
    def test_enabled_disabled_names(self):
        schema, source_values = diamond_schema()
        snapshot = evaluate_schema(schema, source_values)
        assert set(snapshot.enabled_names()) == {"s", "a", "t"}
        assert set(snapshot.disabled_names()) == {"b"}

    def test_enabled_fraction(self):
        schema, source_values = diamond_schema()
        snapshot = evaluate_schema(schema, source_values)
        assert snapshot.enabled_fraction() == pytest.approx(2 / 3)
        assert snapshot.enabled_fraction(("a",)) == 1.0
        assert snapshot.enabled_fraction(()) == 0.0

    def test_target_values(self):
        schema, source_values = diamond_schema()
        snapshot = evaluate_schema(schema, source_values)
        assert snapshot.target_values() == {"t": 1}

    def test_needed_cost(self):
        schema, source_values = diamond_schema()
        snapshot = evaluate_schema(schema, source_values)
        assert snapshot.needed_cost() == 2  # only query a (cost 2) is enabled


class TestCheckAgainstSnapshot:
    def test_correct_observation_passes(self):
        schema, source_values = diamond_schema()
        snapshot = evaluate_schema(schema, source_values)
        violations = check_against_snapshot(
            snapshot, dict(snapshot.states), dict(snapshot.values)
        )
        assert violations == []

    def test_wrong_state_detected(self):
        schema, source_values = diamond_schema()
        snapshot = evaluate_schema(schema, source_values)
        observed = dict(snapshot.states)
        observed["b"] = AttributeState.VALUE
        violations = check_against_snapshot(snapshot, observed, dict(snapshot.values))
        assert any("b:" in v for v in violations)

    def test_wrong_value_detected(self):
        schema, source_values = diamond_schema()
        snapshot = evaluate_schema(schema, source_values)
        observed_values = dict(snapshot.values)
        observed_values["a"] = 999
        violations = check_against_snapshot(snapshot, dict(snapshot.states), observed_values)
        assert any("a:" in v for v in violations)

    def test_unstable_target_detected(self):
        schema, source_values = diamond_schema()
        snapshot = evaluate_schema(schema, source_values)
        observed = dict(snapshot.states)
        del observed["t"]
        violations = check_against_snapshot(snapshot, observed, dict(snapshot.values))
        assert any("target t" in v for v in violations)

    def test_partial_observation_is_fine(self):
        # Unevaluated non-target attributes are irrelevant to correctness.
        schema, source_values = diamond_schema()
        snapshot = evaluate_schema(schema, source_values)
        observed = {"t": snapshot.states["t"]}
        violations = check_against_snapshot(
            snapshot, observed, {"t": snapshot.values["t"]}
        )
        assert violations == []

    def test_require_targets_false(self):
        schema, source_values = diamond_schema()
        snapshot = evaluate_schema(schema, source_values)
        violations = check_against_snapshot(snapshot, {}, {}, require_targets=False)
        assert violations == []
