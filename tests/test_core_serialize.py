"""Schema serialization: the Figure-2 schema-repository storage format."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    And,
    Attribute,
    Comparison,
    DecisionFlowSchema,
    IsException,
    IsNull,
    Literal,
    NULL,
    Not,
    Op,
    Or,
    Rule,
    Strategy,
    UserPredicate,
    attr,
    evaluate_schema,
    generate_pattern,
    rule_set,
    synthesize,
)
from repro.api import ExecutionConfig
from repro.core.serialize import (
    SerializationError,
    condition_from_dict,
    condition_to_dict,
    config_from_dict,
    config_to_dict,
    dumps_schema,
    dumps_strategy,
    loads_schema,
    loads_strategy,
    schema_from_dict,
    schema_to_dict,
    strategy_from_dict,
    strategy_to_dict,
    task_from_dict,
    task_to_dict,
)
from repro.core.tasks import QueryTask, constant
from repro.workload import PatternParams
from tests._support import q, run_engine


class TestConditionRoundTrip:
    @pytest.mark.parametrize(
        "condition",
        [
            Literal(True),
            Literal(False),
            Comparison("a", Op.GE, 5),
            Comparison("a", Op.EQ, "gold"),
            Comparison("a", Op.LT, attr("b")),
            IsNull("a"),
            IsException("a"),
            And(Comparison("a", Op.GT, 1), IsNull("b")),
            Or(Comparison("a", Op.GT, 1), Not(IsNull("b"))),
            Not(And(Comparison("a", Op.GT, 1), Or(IsNull("b"), Literal(True)))),
        ],
    )
    def test_round_trip(self, condition):
        assert condition_from_dict(condition_to_dict(condition)) == condition

    def test_null_constant_round_trips(self):
        condition = Comparison("a", Op.EQ, NULL)
        assert condition_from_dict(condition_to_dict(condition)) == condition

    def test_sequence_constant_round_trips(self):
        condition = Comparison("a", Op.IN, (1, 2, 3))
        restored = condition_from_dict(condition_to_dict(condition))
        assert restored.eval_tri(lambda n: 2).name == "TRUE"

    def test_user_predicate_rejected(self):
        with pytest.raises(SerializationError, match="user predicates"):
            condition_to_dict(UserPredicate("p", ("a",), lambda v: True))

    def test_unknown_kind_rejected(self):
        with pytest.raises(SerializationError):
            condition_from_dict({"kind": "telepathy"})


class TestTaskRoundTrip:
    def test_constant_query(self):
        task = QueryTask("q1", ("a", "b"), constant(42), cost=3, description="dip")
        restored = task_from_dict(task_to_dict(task))
        assert restored.inputs == ("a", "b")
        assert restored.cost == 3
        assert restored.description == "dip"
        assert restored.compute({"a": 0, "b": 0}) == 42

    def test_arbitrary_query_fn_rejected(self):
        task = QueryTask("q1", (), lambda v: 1, cost=1)
        with pytest.raises(SerializationError, match="constant-result"):
            task_to_dict(task)

    def test_rule_set(self):
        task = rule_set(
            "score",
            ("tier",),
            [Rule("gold", Comparison("tier", Op.EQ, "gold"), 100)],
            policy="sum",
            default=0,
        )
        restored = task_from_dict(task_to_dict(task))
        assert restored.compute({"tier": "gold"}) == 100
        assert restored.compute({"tier": "tin"}) == 0

    def test_rule_set_with_callable_contribution_rejected(self):
        task = rule_set("r", ("x",), [Rule("f", Literal(True), lambda v: 1)])
        with pytest.raises(SerializationError, match="callable contribution"):
            task_to_dict(task)

    def test_synthesis_fn_rejected(self):
        with pytest.raises(SerializationError, match="synthesis"):
            task_to_dict(synthesize("s", ("a",), lambda v: 1))


class TestSchemaRoundTrip:
    def declarative_schema(self):
        return DecisionFlowSchema(
            [
                Attribute("s", doc="input"),
                Attribute(
                    "a",
                    task=q("a", inputs=("s",), value=5, cost=2),
                    condition=Comparison("s", Op.GE, 0),
                ),
                Attribute("t", task=q("t", inputs=("a",), value=9, cost=1), is_target=True),
            ],
            name="declarative",
        )

    def test_json_round_trip_preserves_semantics(self):
        schema = self.declarative_schema()
        restored = loads_schema(dumps_schema(schema))
        assert restored.name == schema.name
        assert restored.names == schema.names
        original = evaluate_schema(schema, {"s": 1})
        recovered = evaluate_schema(restored, {"s": 1})
        assert original.states == recovered.states
        assert original.values == recovered.values

    def test_round_trip_preserves_docs_and_targets(self):
        restored = schema_from_dict(schema_to_dict(self.declarative_schema()))
        assert restored["s"].doc == "input"
        assert restored.target_names == ("t",)

    def test_bad_format_version(self):
        with pytest.raises(SerializationError, match="format"):
            schema_from_dict({"format": 99, "attributes": []})

    def test_generated_patterns_are_fully_serializable(self):
        pattern = generate_pattern(PatternParams(nb_nodes=16, nb_rows=2, seed=5))
        restored = loads_schema(dumps_schema(pattern.schema))
        original = evaluate_schema(pattern.schema, pattern.source_values)
        recovered = evaluate_schema(restored, pattern.source_values)
        assert original.states == recovered.states

    def test_restored_schema_executes_identically(self):
        pattern = generate_pattern(PatternParams(nb_nodes=16, nb_rows=2, seed=6))
        restored = loads_schema(dumps_schema(pattern.schema))
        original_metrics, _ = run_engine(pattern.schema, "PSE100", pattern.source_values)
        restored_metrics, _ = run_engine(restored, "PSE100", pattern.source_values)
        assert original_metrics.work_units == restored_metrics.work_units
        assert original_metrics.elapsed == restored_metrics.elapsed


@settings(max_examples=20, deadline=None)
@given(
    nb_nodes=st.integers(4, 20),
    pct_enabled=st.integers(0, 100),
    seed=st.integers(0, 10),
)
def test_every_generated_pattern_round_trips(nb_nodes, pct_enabled, seed):
    params = PatternParams(
        nb_nodes=nb_nodes, nb_rows=min(2, nb_nodes), pct_enabled=pct_enabled, seed=seed
    )
    pattern = generate_pattern(params)
    restored = loads_schema(dumps_schema(pattern.schema))
    original = evaluate_schema(pattern.schema, pattern.source_values)
    recovered = evaluate_schema(restored, pattern.source_values)
    assert original.states == recovered.states
    assert original.values == recovered.values


class TestStrategyRoundTrip:
    @pytest.mark.parametrize(
        "code", ["PCE0", "PSE80", "NCC100", "NSE50", "PCC25"]
    )
    @pytest.mark.parametrize("cancel_unneeded", [False, True])
    def test_every_option_combination_round_trips(self, code, cancel_unneeded):
        strategy = Strategy.parse(code, cancel_unneeded=cancel_unneeded)
        restored = strategy_from_dict(strategy_to_dict(strategy))
        assert restored == strategy
        assert loads_strategy(dumps_strategy(strategy)) == strategy

    def test_dict_form_is_plain(self):
        data = strategy_to_dict(Strategy.parse("PSE80"))
        assert data == {"code": "PSE80", "cancel_unneeded": False}

    def test_not_a_strategy_rejected(self):
        with pytest.raises(SerializationError, match="expected a Strategy"):
            strategy_to_dict("PSE80")

    def test_bad_encoding_rejected(self):
        with pytest.raises(SerializationError, match="not a strategy encoding"):
            strategy_from_dict({"permitted": 80})


class TestConfigRoundTrip:
    def test_default_config_round_trips(self):
        config = ExecutionConfig()
        assert config_from_dict(config_to_dict(config)) == config

    def test_fully_loaded_config_round_trips(self):
        config = ExecutionConfig.from_code(
            "PSE80",
            cancel_unneeded=True,
            halt_policy="drain",
            share_results=True,
            backend="bounded",
            backend_options={"seed": 7},
            engine="batched",
            shards=4,
            executor="process",
            dispatch="pooled",
            query_cache=True,
        )
        restored = config_from_dict(config_to_dict(config))
        assert restored == config
        assert restored.strategy == config.strategy
        assert dict(restored.backend_options) == {"seed": 7}
        assert (restored.shards, restored.executor) == (4, "process")
        assert (restored.dispatch, restored.query_cache) == ("pooled", True)

    def test_pre_dispatch_encodings_default_per_event(self):
        # Encodings written before the dispatch/query_cache fields existed
        # (e.g. persisted shard tasks) load with today's defaults.
        data = config_to_dict(ExecutionConfig())
        del data["dispatch"]
        del data["query_cache"]
        restored = config_from_dict(data)
        assert restored.dispatch == "per-event"
        assert restored.query_cache is False

    def test_dict_form_is_json_able(self):
        import json

        config = ExecutionConfig.from_code("PSE50", shards=2, backend_options={"seed": 1})
        text = json.dumps(config_to_dict(config))
        assert config_from_dict(json.loads(text)) == config

    def test_rich_backend_options_rejected_naming_the_option(self):
        from repro.simdb.profiler import DbFunction

        config = ExecutionConfig(
            backend="profiled",
            backend_options={"db_function": DbFunction(((1.0, 10.0),))},
        )
        with pytest.raises(SerializationError, match="db_function"):
            config_to_dict(config)

    def test_not_a_config_rejected(self):
        with pytest.raises(SerializationError, match="expected an ExecutionConfig"):
            config_to_dict(Strategy.parse("PCE0"))
        with pytest.raises(SerializationError, match="not a config encoding"):
            config_from_dict({"engine": "batched"})


class TestObserveRoundTrip:
    def test_observe_round_trips(self):
        config = ExecutionConfig(observe=True)
        assert config_from_dict(config_to_dict(config)).observe is True

    def test_pre_observe_encodings_default_disarmed(self):
        data = config_to_dict(ExecutionConfig())
        del data["observe"]
        assert config_from_dict(data).observe is False
