"""Schema serialization: the Figure-2 schema-repository storage format."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    And,
    Attribute,
    Comparison,
    DecisionFlowSchema,
    IsException,
    IsNull,
    Literal,
    NULL,
    Not,
    Op,
    Or,
    Rule,
    Strategy,
    UserPredicate,
    attr,
    evaluate_schema,
    generate_pattern,
    rule_set,
    synthesize,
)
from repro.core.serialize import (
    SerializationError,
    condition_from_dict,
    condition_to_dict,
    dumps_schema,
    loads_schema,
    schema_from_dict,
    schema_to_dict,
    task_from_dict,
    task_to_dict,
)
from repro.core.tasks import QueryTask, constant
from repro.workload import PatternParams
from tests._support import q, run_engine


class TestConditionRoundTrip:
    @pytest.mark.parametrize(
        "condition",
        [
            Literal(True),
            Literal(False),
            Comparison("a", Op.GE, 5),
            Comparison("a", Op.EQ, "gold"),
            Comparison("a", Op.LT, attr("b")),
            IsNull("a"),
            IsException("a"),
            And(Comparison("a", Op.GT, 1), IsNull("b")),
            Or(Comparison("a", Op.GT, 1), Not(IsNull("b"))),
            Not(And(Comparison("a", Op.GT, 1), Or(IsNull("b"), Literal(True)))),
        ],
    )
    def test_round_trip(self, condition):
        assert condition_from_dict(condition_to_dict(condition)) == condition

    def test_null_constant_round_trips(self):
        condition = Comparison("a", Op.EQ, NULL)
        assert condition_from_dict(condition_to_dict(condition)) == condition

    def test_sequence_constant_round_trips(self):
        condition = Comparison("a", Op.IN, (1, 2, 3))
        restored = condition_from_dict(condition_to_dict(condition))
        assert restored.eval_tri(lambda n: 2).name == "TRUE"

    def test_user_predicate_rejected(self):
        with pytest.raises(SerializationError, match="user predicates"):
            condition_to_dict(UserPredicate("p", ("a",), lambda v: True))

    def test_unknown_kind_rejected(self):
        with pytest.raises(SerializationError):
            condition_from_dict({"kind": "telepathy"})


class TestTaskRoundTrip:
    def test_constant_query(self):
        task = QueryTask("q1", ("a", "b"), constant(42), cost=3, description="dip")
        restored = task_from_dict(task_to_dict(task))
        assert restored.inputs == ("a", "b")
        assert restored.cost == 3
        assert restored.description == "dip"
        assert restored.compute({"a": 0, "b": 0}) == 42

    def test_arbitrary_query_fn_rejected(self):
        task = QueryTask("q1", (), lambda v: 1, cost=1)
        with pytest.raises(SerializationError, match="constant-result"):
            task_to_dict(task)

    def test_rule_set(self):
        task = rule_set(
            "score",
            ("tier",),
            [Rule("gold", Comparison("tier", Op.EQ, "gold"), 100)],
            policy="sum",
            default=0,
        )
        restored = task_from_dict(task_to_dict(task))
        assert restored.compute({"tier": "gold"}) == 100
        assert restored.compute({"tier": "tin"}) == 0

    def test_rule_set_with_callable_contribution_rejected(self):
        task = rule_set("r", ("x",), [Rule("f", Literal(True), lambda v: 1)])
        with pytest.raises(SerializationError, match="callable contribution"):
            task_to_dict(task)

    def test_synthesis_fn_rejected(self):
        with pytest.raises(SerializationError, match="synthesis"):
            task_to_dict(synthesize("s", ("a",), lambda v: 1))


class TestSchemaRoundTrip:
    def declarative_schema(self):
        return DecisionFlowSchema(
            [
                Attribute("s", doc="input"),
                Attribute(
                    "a",
                    task=q("a", inputs=("s",), value=5, cost=2),
                    condition=Comparison("s", Op.GE, 0),
                ),
                Attribute("t", task=q("t", inputs=("a",), value=9, cost=1), is_target=True),
            ],
            name="declarative",
        )

    def test_json_round_trip_preserves_semantics(self):
        schema = self.declarative_schema()
        restored = loads_schema(dumps_schema(schema))
        assert restored.name == schema.name
        assert restored.names == schema.names
        original = evaluate_schema(schema, {"s": 1})
        recovered = evaluate_schema(restored, {"s": 1})
        assert original.states == recovered.states
        assert original.values == recovered.values

    def test_round_trip_preserves_docs_and_targets(self):
        restored = schema_from_dict(schema_to_dict(self.declarative_schema()))
        assert restored["s"].doc == "input"
        assert restored.target_names == ("t",)

    def test_bad_format_version(self):
        with pytest.raises(SerializationError, match="format"):
            schema_from_dict({"format": 99, "attributes": []})

    def test_generated_patterns_are_fully_serializable(self):
        pattern = generate_pattern(PatternParams(nb_nodes=16, nb_rows=2, seed=5))
        restored = loads_schema(dumps_schema(pattern.schema))
        original = evaluate_schema(pattern.schema, pattern.source_values)
        recovered = evaluate_schema(restored, pattern.source_values)
        assert original.states == recovered.states

    def test_restored_schema_executes_identically(self):
        pattern = generate_pattern(PatternParams(nb_nodes=16, nb_rows=2, seed=6))
        restored = loads_schema(dumps_schema(pattern.schema))
        original_metrics, _ = run_engine(pattern.schema, "PSE100", pattern.source_values)
        restored_metrics, _ = run_engine(restored, "PSE100", pattern.source_values)
        assert original_metrics.work_units == restored_metrics.work_units
        assert original_metrics.elapsed == restored_metrics.elapsed


@settings(max_examples=20, deadline=None)
@given(
    nb_nodes=st.integers(4, 20),
    pct_enabled=st.integers(0, 100),
    seed=st.integers(0, 10),
)
def test_every_generated_pattern_round_trips(nb_nodes, pct_enabled, seed):
    params = PatternParams(
        nb_nodes=nb_nodes, nb_rows=min(2, nb_nodes), pct_enabled=pct_enabled, seed=seed
    )
    pattern = generate_pattern(params)
    restored = loads_schema(dumps_schema(pattern.schema))
    original = evaluate_schema(pattern.schema, pattern.source_values)
    recovered = evaluate_schema(restored, pattern.source_values)
    assert original.states == recovered.states
    assert original.values == recovered.values
