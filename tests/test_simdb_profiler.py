"""The empirical Db function and its profiler."""

import pytest

from repro.simdb.database import DbParams
from repro.simdb.profiler import DbFunction, profile_database


class TestDbFunction:
    def test_interpolation(self):
        db = DbFunction(((1.0, 10.0), (3.0, 20.0)))
        assert db(1.0) == 10.0
        assert db(2.0) == 15.0
        assert db(3.0) == 20.0

    def test_below_range_clamps(self):
        db = DbFunction(((2.0, 10.0), (4.0, 20.0)))
        assert db(0.0) == 10.0
        assert db.zero_load_unit_time == 10.0

    def test_extrapolation_uses_tail_slope(self):
        db = DbFunction(((1.0, 10.0), (3.0, 20.0)))
        assert db.tail_slope == pytest.approx(5.0)
        assert db(5.0) == pytest.approx(30.0)

    def test_single_point(self):
        db = DbFunction(((1.0, 12.0),))
        assert db(0.5) == 12.0
        assert db(100.0) == 12.0
        assert db.tail_slope == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            DbFunction(())
        with pytest.raises(ValueError):
            DbFunction(((2.0, 1.0), (1.0, 2.0)))  # not increasing
        with pytest.raises(ValueError):
            DbFunction(((1.0, 1.0), (1.0, 2.0)))  # duplicate gmpl

    def test_max_gmpl(self):
        db = DbFunction(((1.0, 10.0), (8.0, 30.0)))
        assert db.max_gmpl == 8.0


class TestClosedLoopProfiling:
    def test_profile_shape(self):
        db = profile_database(
            DbParams(), gmpl_levels=(1, 4, 12, 24), completions_per_level=400, warmup=50
        )
        values = [db(g) for g, _ in db.points]
        # Monotone and spanning plateau → saturation.
        assert all(b >= a - 0.5 for a, b in zip(values, values[1:]))
        assert 9.0 < values[0] < 13.0
        assert values[-1] > 2 * values[0]

    def test_level_validation(self):
        with pytest.raises(ValueError, match="Gmpl level"):
            profile_database(gmpl_levels=(0,))

    def test_mode_validation(self):
        with pytest.raises(ValueError, match="mode"):
            profile_database(mode="sideways")


class TestOpenLoopProfiling:
    def test_open_profile_shape(self):
        db = profile_database(
            DbParams(),
            completions_per_level=400,
            warmup=50,
            mode="open",
            utilizations=(0.2, 0.5, 0.8),
        )
        gmpls = [g for g, _ in db.points]
        assert gmpls == sorted(gmpls)
        # Higher load → higher unit time.
        times = [t for _, t in db.points]
        assert times[-1] > times[0]

    def test_open_at_least_matches_closed_under_load(self):
        closed = profile_database(
            DbParams(), gmpl_levels=(1, 2, 4, 8, 16), completions_per_level=400, warmup=50
        )
        open_db = profile_database(
            DbParams(),
            completions_per_level=400,
            warmup=50,
            mode="open",
            utilizations=(0.5, 0.8),
        )
        # Open-loop captures queueing variance: at its measured operating
        # points it should not be materially *faster* than closed-loop.
        for gmpl, unit_time in open_db.points:
            assert unit_time >= closed(gmpl) - 1.0

    def test_utilization_validation(self):
        with pytest.raises(ValueError, match="utilization"):
            profile_database(mode="open", utilizations=(1.5,))
