"""End-to-end engine behaviour on crafted schemas."""

import pytest

from repro import (
    ALL_STRATEGY_CODES,
    Attribute,
    AttributeState,
    Comparison,
    DecisionFlowSchema,
    Engine,
    IdealDatabase,
    NULL,
    Op,
    Simulation,
    Strategy,
    check_against_snapshot,
    evaluate_schema,
)
from repro.errors import ExecutionError
from tests._support import chain_schema, diamond_schema, q, run_engine


class TestBasicExecution:
    @pytest.mark.parametrize("code", [c + p for c in ALL_STRATEGY_CODES for p in ("0", "100")])
    def test_diamond_correct_under_every_strategy(self, code):
        schema, source_values = diamond_schema()
        metrics, instance = run_engine(schema, code, source_values)
        assert instance.done
        snapshot = evaluate_schema(schema, source_values)
        assert check_against_snapshot(snapshot, instance.state_map(), instance.value_map()) == []

    def test_chain_timing_sequential(self):
        schema, source_values = chain_schema(length=5, cost=2)
        metrics, _ = run_engine(schema, "PCE0", source_values)
        assert metrics.work_units == 10
        assert metrics.elapsed == 10.0  # sequential: TimeInUnits == Work

    def test_paper_example_time_8_work_10(self):
        """The paper's metric example: 10 units total, 3 in parallel → T=8, W=10.

        a, b, c run in parallel on tick 1; a 7-unit chain hangs off a.
        """
        attributes = [Attribute("s")]
        for name in ("a", "b", "c"):
            attributes.append(Attribute(name, task=q(name, inputs=("s",), value=0, cost=1)))
        previous = "a"
        for index in range(1, 8):
            name = f"k{index}"
            attributes.append(
                Attribute(
                    name,
                    task=q(name, inputs=(previous, "b", "c") if index == 1 else (previous,), value=0, cost=1),
                    is_target=(index == 7),
                )
            )
            previous = name
        schema = DecisionFlowSchema(attributes)
        metrics, _ = run_engine(schema, "PCE100", {"s": 0})
        assert metrics.work_units == 10
        assert metrics.elapsed == 8.0

    def test_parallelism_reduces_time_not_below_critical_path(self):
        schema, source_values = chain_schema(length=6, cost=1)
        sequential, _ = run_engine(schema, "PCE0", source_values)
        parallel, _ = run_engine(schema, "PCE100", source_values)
        # A pure chain has no parallelism: both strategies take 6 ticks.
        assert sequential.elapsed == parallel.elapsed == 6.0


class TestInstanceIds:
    def make_engine(self):
        schema, source_values = diamond_schema()
        simulation = Simulation()
        engine = Engine(schema, Strategy.parse("PCE0"), IdealDatabase(simulation))
        return engine, simulation, source_values

    def test_duplicate_user_supplied_id_rejected(self):
        engine, _, source_values = self.make_engine()
        seen = []
        engine.submit_instance(
            source_values, instance_id="job-1", on_complete=seen.append
        )
        # A silent resubmission used to clobber the first on_complete
        # callback; now the duplicate id is an error.
        with pytest.raises(ExecutionError, match="duplicate instance id"):
            engine.submit_instance(
                source_values, instance_id="job-1", on_complete=seen.append
            )

    def test_first_callback_survives_rejected_duplicate(self):
        engine, simulation, source_values = self.make_engine()
        seen = []
        engine.submit_instance(
            source_values, instance_id="job-1", on_complete=lambda m: seen.append("first")
        )
        with pytest.raises(ExecutionError):
            engine.submit_instance(
                source_values, instance_id="job-1", on_complete=lambda m: seen.append("second")
            )
        simulation.run()
        assert seen == ["first"]

    def test_duplicate_id_across_finished_instances_rejected(self):
        engine, simulation, source_values = self.make_engine()
        engine.submit_instance(source_values, instance_id="job-1")
        simulation.run()
        with pytest.raises(ExecutionError, match="duplicate instance id"):
            engine.submit_instance(source_values, instance_id="job-1")

    def test_submission_at_past_time_rejected_with_context(self):
        engine, simulation, source_values = self.make_engine()
        simulation.run(until=5.0)
        with pytest.raises(ExecutionError, match=r"'job-late'.*past time 3\.0.*clock is at 5\.0"):
            engine.submit_instance(source_values, at=3.0, instance_id="job-late")
        # The rejected submission must not leave partial state behind.
        assert engine.instances == []
        engine.submit_instance(source_values, at=5.0, instance_id="job-late")
        simulation.run()
        assert engine.instances[0].done

    def test_past_submission_error_names_generated_id(self):
        engine, simulation, source_values = self.make_engine()
        simulation.run(until=2.0)
        with pytest.raises(ExecutionError, match="diamond#1"):
            engine.submit_instance(source_values, at=1.0)

    def test_generated_ids_are_unique(self):
        engine, simulation, source_values = self.make_engine()
        first = engine.submit_instance(source_values)
        second = engine.submit_instance(source_values)
        assert first.instance_id != second.instance_id
        simulation.run()
        assert first.done and second.done

    def test_generated_ids_skip_user_claimed_names(self):
        engine, simulation, source_values = self.make_engine()
        # Claim the exact name the generator would produce next.
        taken = f"{engine.schema.name}#1"
        engine.submit_instance(source_values, instance_id=taken)
        auto = engine.submit_instance(source_values)
        assert auto.instance_id != taken
        simulation.run()
        assert auto.done


class TestEarlyHalt:
    def test_disabled_target_halts_immediately_with_zero_work(self):
        schema = DecisionFlowSchema(
            [
                Attribute("s"),
                Attribute("x", task=q("x", inputs=("s",), value=1, cost=5)),
                Attribute(
                    "t",
                    task=q("t", inputs=("x",), value=2, cost=5),
                    condition=Comparison("s", Op.GT, 100),
                    is_target=True,
                ),
            ]
        )
        metrics, instance = run_engine(schema, "PCE100", {"s": 1})
        assert instance.done
        assert metrics.elapsed == 0.0
        assert metrics.work_units == 0  # x was never launched: unneeded
        assert instance.cells["t"].value is NULL

    def test_naive_still_computes_unneeded_branch(self):
        schema = DecisionFlowSchema(
            [
                Attribute("s"),
                Attribute("x", task=q("x", inputs=("s",), value=1, cost=5)),
                Attribute(
                    "t",
                    task=q("t", inputs=("x",), value=2, cost=5),
                    condition=Comparison("s", Op.GT, 100),
                    is_target=True,
                ),
            ]
        )
        metrics, instance = run_engine(schema, "NCE100", {"s": 1})
        # The target is disabled at start either way (its condition reads
        # only the source), so no work is required even without P.
        assert instance.done
        assert metrics.work_units == 0


class TestHaltPolicy:
    def speculative_side_schema(self):
        """Target completes in 1 tick; a 5-unit speculative query idles on.

        x feeds nothing, so option P would prune it as unneeded up front —
        the halt-policy behaviour is exercised under N, where the naive
        prequalifier happily launches it speculatively.
        """
        return DecisionFlowSchema(
            [
                Attribute("s"),
                Attribute("t", task=q("t", inputs=("s",), value=1, cost=1), is_target=True),
                Attribute(
                    "x",
                    task=q("x", inputs=("s",), value=2, cost=5),
                    condition=Comparison("t", Op.GT, 100),
                ),
            ]
        )

    def test_p_option_never_launches_the_dead_branch(self):
        metrics, _ = run_engine(self.speculative_side_schema(), "PSE100", {"s": 0})
        assert metrics.queries_launched == 1  # x pruned as unneeded at start
        assert metrics.work_units == 1

    def test_cancel_policy_cuts_in_flight_work(self):
        metrics, _ = run_engine(self.speculative_side_schema(), "NSE100", {"s": 0}, halt_policy="cancel")
        # x is launched speculatively at t=0, target completes at t=1:
        # x has processed exactly 1 unit when it is cancelled.
        assert metrics.work_units == 2
        assert metrics.queries_cancelled == 1

    def test_drain_policy_counts_full_cost(self):
        metrics, _ = run_engine(self.speculative_side_schema(), "NSE100", {"s": 0}, halt_policy="drain")
        assert metrics.work_units == 6
        assert metrics.queries_cancelled == 0

    def test_bad_halt_policy_rejected(self):
        schema, _ = diamond_schema()
        with pytest.raises(ValueError, match="halt_policy"):
            Engine(schema, Strategy.parse("PCE0"), IdealDatabase(Simulation()), "explode")


class TestSpeculationAccounting:
    def test_wasted_speculative_work_counted(self):
        # x must stay "possibly needed" for P, so route it into the target.
        schema = DecisionFlowSchema(
            [
                Attribute("s"),
                Attribute("gate", task=q("gate", inputs=("s",), value=0, cost=3)),
                Attribute(
                    "x",
                    task=q("x", inputs=("s",), value=5, cost=2),
                    condition=Comparison("gate", Op.GT, 10),  # will be false
                ),
                Attribute("t", task=q("t", inputs=("gate", "x"), value=1, cost=1), is_target=True),
            ]
        )
        metrics, instance = run_engine(schema, "PSE100", {"s": 0})
        assert instance.cells["x"].state is AttributeState.DISABLED
        assert metrics.speculative_launched >= 1
        assert metrics.speculative_wasted_queries == 1
        assert metrics.speculative_wasted_units == 2

    def test_conservative_never_wastes(self):
        schema, source_values = diamond_schema()
        metrics, _ = run_engine(schema, "PCE100", source_values)
        assert metrics.speculative_launched == 0
        assert metrics.speculative_wasted_units == 0


class TestMultiInstance:
    def test_instances_are_isolated(self):
        schema, _ = diamond_schema()
        simulation = Simulation()
        engine = Engine(schema, Strategy.parse("PCE100"), IdealDatabase(simulation))
        low = engine.submit_instance({"s": 5})
        high = engine.submit_instance({"s": 50})
        simulation.run()
        assert low.cells["b"].value is NULL
        assert high.cells["b"].value == 10
        assert low.done and high.done

    def test_staggered_arrivals(self):
        schema, source_values = chain_schema(length=3, cost=1)
        simulation = Simulation()
        engine = Engine(schema, Strategy.parse("PCE0"), IdealDatabase(simulation))
        first = engine.submit_instance(source_values, at=0.0)
        second = engine.submit_instance(source_values, at=10.0)
        simulation.run()
        assert first.metrics.finish_time == 3.0
        assert second.metrics.finish_time == 13.0

    def test_on_complete_callback(self):
        schema, source_values = diamond_schema()
        simulation = Simulation()
        engine = Engine(schema, Strategy.parse("PCE0"), IdealDatabase(simulation))
        seen = []
        engine.submit_instance(source_values, on_complete=seen.append)
        simulation.run()
        assert len(seen) == 1
        assert seen[0].done

    def test_run_single_convenience(self):
        schema, source_values = diamond_schema()
        engine = Engine(schema, Strategy.parse("PCE0"), IdealDatabase(Simulation()))
        metrics = engine.run_single(source_values)
        assert metrics.done
        assert metrics.work_units == 2  # only query a runs (b disabled)

    def test_engine_repr(self):
        schema, source_values = diamond_schema()
        engine = Engine(schema, Strategy.parse("PSE80"), IdealDatabase(Simulation()))
        engine.run_single(source_values)
        assert "PSE80" in repr(engine)
        assert "1/1 done" in repr(engine)


class TestMetricsCounts:
    def test_query_counters(self):
        schema, source_values = diamond_schema()
        metrics, _ = run_engine(schema, "PCE100", source_values)
        assert metrics.queries_launched == 1
        assert metrics.queries_completed == 1
        assert metrics.queries_cancelled == 0
        assert metrics.synthesis_executed == 1  # the target

    def test_unneeded_metrics(self):
        schema = DecisionFlowSchema(
            [
                Attribute("s"),
                Attribute("dead", task=q("dead", inputs=("s",), value=0, cost=4)),
                Attribute(
                    "gated",
                    task=q("gated", inputs=("dead",), value=0, cost=2),
                    condition=Comparison("s", Op.GT, 10),
                ),
                Attribute("t", task=q("t", inputs=("s",), value=1, cost=1), is_target=True),
            ]
        )
        metrics, _ = run_engine(schema, "PCE0", {"s": 0})
        # 'gated' is disabled instantly; 'dead' fed only 'gated' → unneeded.
        assert metrics.unneeded_detected == 1
        assert metrics.unneeded_cost_avoided == 4
        assert metrics.work_units == 1
