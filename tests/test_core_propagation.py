"""Backward propagation: the NeededTracker's dead-edge analysis."""

from repro import Attribute, Comparison, DecisionFlowSchema, IsNull, Op
from repro.core.propagation import NeededTracker
from tests._support import q


def chain_with_dangler():
    """s → a → t, plus d consuming a but feeding nothing."""
    return DecisionFlowSchema(
        [
            Attribute("s"),
            Attribute("a", task=q("a", inputs=("s",))),
            Attribute("d", task=q("d", inputs=("a",))),
            Attribute("t", task=q("t", inputs=("a",)), is_target=True),
        ]
    )


class TestInitialLiveness:
    def test_everything_reaching_target_is_needed(self):
        tracker = NeededTracker(chain_with_dangler())
        for name in ("s", "a", "t"):
            assert not tracker.is_unneeded(name)

    def test_attribute_with_no_path_to_target_is_unneeded_at_start(self):
        tracker = NeededTracker(chain_with_dangler())
        assert tracker.is_unneeded("d")

    def test_dangling_chain_cascades(self):
        schema = DecisionFlowSchema(
            [
                Attribute("s"),
                Attribute("d1", task=q("d1", inputs=("s",))),
                Attribute("d2", task=q("d2", inputs=("d1",))),
                Attribute("t", task=q("t", inputs=("s",)), is_target=True),
            ]
        )
        tracker = NeededTracker(schema)
        assert tracker.is_unneeded("d2")
        assert tracker.is_unneeded("d1")  # its only consumer is unneeded
        assert not tracker.is_unneeded("s")  # still feeds the target


class TestEventDrivenPruning:
    def test_target_stabilized_releases_ancestors(self):
        schema = chain_with_dangler()
        tracker = NeededTracker(schema)
        tracker.on_stabilized("t")
        # a's only live consumer (t, via data) is gone; d was already dead.
        assert tracker.is_unneeded("a")
        assert tracker.is_unneeded("s")

    def test_condition_resolution_kills_enabling_edges_only(self):
        schema = DecisionFlowSchema(
            [
                Attribute("s"),
                Attribute("e", task=q("e", inputs=("s",))),
                Attribute("x", task=q("x", inputs=("s",))),
                Attribute(
                    "t",
                    task=q("t", inputs=("x",)),
                    condition=Comparison("e", Op.GT, 0),
                    is_target=True,
                ),
            ]
        )
        tracker = NeededTracker(schema)
        assert not tracker.is_unneeded("e")
        tracker.on_condition_resolved("t")
        # e fed only t's condition: unneeded now.  x still feeds t's data.
        assert tracker.is_unneeded("e")
        assert not tracker.is_unneeded("x")

    def test_computed_kills_data_edges_only(self):
        schema = DecisionFlowSchema(
            [
                Attribute("s"),
                Attribute("x", task=q("x", inputs=("s",))),
                Attribute("e", task=q("e", inputs=("s",))),
                Attribute(
                    "t",
                    task=q("t", inputs=("x",)),
                    condition=IsNull("e"),
                    is_target=True,
                ),
            ]
        )
        tracker = NeededTracker(schema)
        tracker.on_computed("t")  # t's value computed speculatively
        assert tracker.is_unneeded("x")       # data input no longer needed
        assert not tracker.is_unneeded("e")   # condition still unresolved

    def test_paper_promo_scenario(self):
        """Expendable income = 0 ⇒ give_promo disabled ⇒ hit list unneeded.

        Miniature of the paper's backward-propagation example: once the
        only consumer of promo_hit_list is known DISABLED, the hit list —
        though itself enabled — is not needed.
        """
        schema = DecisionFlowSchema(
            [
                Attribute("income"),
                Attribute("hit_list", task=q("hit_list", inputs=("income",))),
                Attribute(
                    "give_promo",
                    task=q("give_promo", inputs=("income",)),
                    condition=Comparison("income", Op.GT, 0),
                ),
                Attribute(
                    "presentation",
                    task=q("presentation", inputs=("hit_list",)),
                    condition=Comparison("give_promo", Op.EQ, True),
                ),
                Attribute(
                    "page",
                    task=q("page", inputs=("presentation",)),
                    is_target=True,
                ),
            ]
        )
        tracker = NeededTracker(schema)
        assert not tracker.is_unneeded("hit_list")
        # income = 0 resolves give_promo's condition to false → DISABLED/stable,
        # which in turn resolves presentation's condition to false → stable.
        tracker.on_condition_resolved("give_promo")
        tracker.on_stabilized("give_promo")
        tracker.on_condition_resolved("presentation")
        tracker.on_stabilized("presentation")
        assert tracker.is_unneeded("hit_list")
        # The target itself is still needed (must stabilize).
        assert not tracker.is_unneeded("page")


class TestRobustness:
    def test_double_events_do_not_underflow(self):
        schema = chain_with_dangler()
        tracker = NeededTracker(schema)
        tracker.on_stabilized("t")
        tracker.on_stabilized("t")
        tracker.on_condition_resolved("t")
        assert tracker.live_out_degree("a") >= 0
        assert tracker.live_out_degree("s") >= 0

    def test_unneeded_is_monotone(self):
        schema = chain_with_dangler()
        tracker = NeededTracker(schema)
        before = set(tracker.unneeded)
        tracker.on_computed("t")
        tracker.on_condition_resolved("t")
        tracker.on_stabilized("t")
        assert before <= tracker.unneeded

    def test_total_kills_bounded_by_edges(self):
        schema = chain_with_dangler()
        tracker = NeededTracker(schema)
        edge_count = schema.graph.edge_count() + len(schema.target_names)
        for name in schema.names:
            tracker.on_stabilized(name)
            tracker.on_condition_resolved(name)
            tracker.on_computed(name)
        # Every edge died at most once: total live-out cannot go negative.
        assert all(tracker.live_out_degree(n) >= 0 for n in schema.names)
        killed = sum(
            edge_count - tracker.live_out_degree(n) >= 0 for n in schema.names
        )
        assert killed == len(schema.names)
