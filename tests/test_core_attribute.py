"""Attribute specifications."""

import pytest

from repro import Attribute, Comparison, Op, TRUE, source_attribute
from tests._support import q, syn


class TestAttribute:
    def test_source(self):
        spec = source_attribute("s", doc="the input")
        assert spec.is_source
        assert spec.data_inputs == ()
        assert spec.condition_inputs == frozenset()
        assert spec.cost == 0
        assert spec.doc == "the input"

    def test_internal_query(self):
        spec = Attribute("a", task=q("a", inputs=("s",), cost=3), condition=Comparison("s", Op.GT, 0))
        assert not spec.is_source
        assert spec.data_inputs == ("s",)
        assert spec.condition_inputs == {"s"}
        assert spec.cost == 3

    def test_synthesis_has_zero_cost(self):
        spec = Attribute("a", task=syn("a", ("s",), lambda v: 0))
        assert spec.cost == 0

    def test_default_condition_is_true(self):
        spec = Attribute("a", task=q("a"))
        assert spec.condition is TRUE

    def test_bad_name(self):
        with pytest.raises(ValueError):
            Attribute("")
        with pytest.raises(ValueError):
            Attribute(None)  # type: ignore[arg-type]

    def test_bad_condition_type(self):
        with pytest.raises(TypeError):
            Attribute("a", task=q("a"), condition="s > 0")  # type: ignore[arg-type]

    def test_repr_mentions_kind(self):
        assert "(source)" in repr(Attribute("s"))
        assert "(target)" in repr(Attribute("t", task=q("t"), is_target=True))
        assert "(internal)" in repr(Attribute("a", task=q("a")))
