"""Snapshot-relation mining (paper §2 reporting)."""

import pytest

from repro import (
    Attribute,
    Comparison,
    DecisionFlowSchema,
    Engine,
    IdealDatabase,
    Op,
    QueryTask,
    Simulation,
    Strategy,
)
from repro.analysis.mining import SnapshotTable, suggest_refinements
from tests._support import q


def gated_schema():
    """'rare' enables only when s >= 90; 'common' almost always; target always."""
    return DecisionFlowSchema(
        [
            Attribute("s"),
            Attribute(
                "rare",
                task=q("rare", inputs=("s",), value="R", cost=5),
                condition=Comparison("s", Op.GE, 90),
            ),
            Attribute(
                "common",
                task=q("common", inputs=("s",), value="C", cost=1),
                condition=Comparison("s", Op.GE, 1),
            ),
            Attribute(
                "varies",
                task=QueryTask("q_varies", ("s",), lambda v: v["s"] % 3, cost=1),
            ),
            # The target consumes everything, so every attribute stabilizes
            # before the instance completes (observed = 100%).
            Attribute(
                "t",
                task=q("t", inputs=("common", "rare", "varies"), value=0, cost=1),
                is_target=True,
            ),
        ]
    )


def run_population(schema, sources, code="NCE100"):
    simulation = Simulation()
    engine = Engine(schema, Strategy.parse(code), IdealDatabase(simulation))
    instances = [
        engine.submit_instance(sv, at=float(i * 100)) for i, sv in enumerate(sources)
    ]
    simulation.run()
    return SnapshotTable.collect(schema, instances)


@pytest.fixture
def table():
    # s in 0..99: 'rare' enabled 10%, 'common' 99%, 'varies' cycles 0,1,2.
    return run_population(gated_schema(), [{"s": value} for value in range(100)])


class TestStatistics:
    def test_counts(self, table):
        assert len(table) == 100
        assert table.enabled_count("rare") == 10
        assert table.enabled_count("common") == 99

    def test_frequencies(self, table):
        assert table.enabled_frequency("rare") == pytest.approx(0.10)
        assert table.observed_frequency("common") == 1.0

    def test_value_counts(self, table):
        counts = table.value_counts("varies")
        assert sum(counts.values()) == 100
        assert set(counts) == {0, 1, 2}

    def test_dominant_value(self, table):
        assert table.dominant_value_frequency("rare") == 1.0  # constant "R"
        assert table.dominant_value_frequency("varies") < 0.5

    def test_mean_work(self, table):
        # per instance: common(1)+varies(1)+t(1) always; rare(5) in 10%.
        assert table.mean_work() == pytest.approx(3.0 + 0.1 * 5, abs=0.2)

    def test_unfinished_instances_rejected(self):
        schema = gated_schema()
        simulation = Simulation()
        engine = Engine(schema, Strategy.parse("PCE0"), IdealDatabase(simulation))
        instance = engine.submit_instance({"s": 5})  # not yet run
        table = SnapshotTable(schema)
        with pytest.raises(ValueError, match="not finished"):
            table.add_instance(instance)

    def test_render(self, table):
        text = table.render()
        assert "100 executions" in text
        assert "rare" in text and "enabled|obs" in text


class TestRefinements:
    def test_never_enabled_detected(self):
        table = run_population(gated_schema(), [{"s": value} for value in range(50)])
        kinds = {(r.kind, r.attribute) for r in suggest_refinements(table)}
        assert ("never-enabled", "rare") in kinds  # s<50 never reaches 90

    def test_always_enabled_detected(self, table):
        kinds = {(r.kind, r.attribute) for r in suggest_refinements(table)}
        assert ("always-enabled", "common") in kinds

    def test_constant_value_detected(self, table):
        findings = suggest_refinements(table)
        constant = [r for r in findings if r.kind == "constant-value"]
        assert any(r.attribute == "common" for r in constant)
        # 'varies' returns three values: must NOT be flagged constant.
        assert not any(r.attribute == "varies" for r in constant)

    def test_expensive_rarely_used_detected(self, table):
        kinds = {(r.kind, r.attribute) for r in suggest_refinements(table)}
        assert ("expensive-rarely-used", "rare") in kinds

    def test_unconditional_attrs_not_flagged_always(self, table):
        findings = suggest_refinements(table)
        always = [r.attribute for r in findings if r.kind == "always-enabled"]
        assert "varies" not in always  # no condition to remove

    def test_implication_detected(self, table):
        findings = suggest_refinements(table)
        implications = [r for r in findings if r.kind == "implied-enablement"]
        # rare ⊂ common (s>=90 ⊂ s>=1): enabled(rare) ⇒ enabled(common).
        assert any(
            r.attribute == "rare" and "common" in r.detail for r in implications
        )

    def test_min_support_gates_everything(self, table):
        assert suggest_refinements(table, min_support=1000) == []

    def test_refinement_str(self, table):
        finding = suggest_refinements(table)[0]
        assert finding.kind in str(finding)
        assert finding.attribute in str(finding)
