"""The Figure-3 attribute state automaton."""

import pytest
from hypothesis import given, strategies as st

from repro import NULL
from repro.core.state import (
    AttributeCell,
    AttributeState,
    Enablement,
    Readiness,
    derive_state,
    legal_successors,
)
from repro.errors import IllegalTransitionError

S = AttributeState


class TestDeriveState:
    @pytest.mark.parametrize(
        "readiness,enablement,expected",
        [
            (Readiness.PENDING, Enablement.UNKNOWN, S.UNINITIALIZED),
            (Readiness.READY, Enablement.UNKNOWN, S.READY),
            (Readiness.COMPUTED, Enablement.UNKNOWN, S.COMPUTED),
            (Readiness.PENDING, Enablement.ENABLED, S.ENABLED),
            (Readiness.READY, Enablement.ENABLED, S.READY_ENABLED),
            (Readiness.COMPUTED, Enablement.ENABLED, S.VALUE),
            (Readiness.PENDING, Enablement.DISABLED, S.DISABLED),
            (Readiness.READY, Enablement.DISABLED, S.DISABLED),
            (Readiness.COMPUTED, Enablement.DISABLED, S.DISABLED),
        ],
    )
    def test_mapping(self, readiness, enablement, expected):
        assert derive_state(readiness, enablement) is expected

    def test_stability(self):
        assert S.VALUE.stable and S.DISABLED.stable
        for state in (S.UNINITIALIZED, S.READY, S.COMPUTED, S.ENABLED, S.READY_ENABLED):
            assert not state.stable


class TestLegalSuccessors:
    """The automaton's reachability relation, per Figure 3."""

    def test_terminal_states(self):
        assert legal_successors(S.VALUE) == frozenset()
        assert legal_successors(S.DISABLED) == frozenset()

    def test_ready_enabled_only_reaches_value(self):
        assert legal_successors(S.READY_ENABLED) == {S.VALUE}

    def test_computed_resolves_either_way(self):
        assert legal_successors(S.COMPUTED) == {S.VALUE, S.DISABLED}

    def test_enabled(self):
        assert legal_successors(S.ENABLED) == {S.READY_ENABLED, S.VALUE}

    def test_ready(self):
        assert legal_successors(S.READY) == {
            S.READY_ENABLED,
            S.COMPUTED,
            S.VALUE,
            S.DISABLED,
        }

    def test_uninitialized_reaches_everything(self):
        assert legal_successors(S.UNINITIALIZED) == set(S) - {S.UNINITIALIZED}

    def test_paper_partial_order_ready_below_computed(self):
        # READY ⊑ COMPUTED in the paper's ordering: COMPUTED is reachable.
        assert S.COMPUTED in legal_successors(S.READY)
        assert S.READY not in legal_successors(S.COMPUTED)


class TestAttributeCell:
    def test_initial_state(self):
        cell = AttributeCell("x")
        assert cell.state is S.UNINITIALIZED
        assert not cell.stable

    def test_source_cell(self):
        cell = AttributeCell.source("s", 42)
        assert cell.state is S.VALUE
        assert cell.stable
        assert cell.value == 42
        assert cell.is_source

    def test_value_raises_when_unstable(self):
        cell = AttributeCell("x")
        with pytest.raises(ValueError, match="not stable"):
            _ = cell.value

    def test_happy_path_to_value(self):
        cell = AttributeCell("x")
        assert cell.mark_enabled() is S.ENABLED
        assert cell.mark_ready() is S.READY_ENABLED
        assert cell.set_computed(7) is S.VALUE
        assert cell.value == 7

    def test_speculative_path_then_enabled(self):
        cell = AttributeCell("x")
        cell.mark_ready()
        assert cell.set_computed(7) is S.COMPUTED
        assert cell.speculative_value == 7
        assert cell.mark_enabled() is S.VALUE
        assert cell.value == 7

    def test_speculative_path_then_disabled(self):
        cell = AttributeCell("x")
        cell.mark_ready()
        cell.set_computed(7)
        assert cell.mark_disabled() is S.DISABLED
        assert cell.value is NULL          # observable value is ⊥
        assert cell.speculative_value == 7  # diagnostic retains the result

    def test_disabled_without_computation(self):
        cell = AttributeCell("x")
        assert cell.mark_disabled() is S.DISABLED
        assert cell.value is NULL

    def test_compute_requires_ready(self):
        cell = AttributeCell("x")
        with pytest.raises(IllegalTransitionError):
            cell.set_computed(1)

    def test_double_ready_rejected(self):
        cell = AttributeCell("x")
        cell.mark_ready()
        with pytest.raises(IllegalTransitionError):
            cell.mark_ready()

    def test_enable_after_disable_rejected(self):
        cell = AttributeCell("x")
        cell.mark_disabled()
        with pytest.raises(IllegalTransitionError):
            cell.mark_enabled()

    def test_disable_after_enable_rejected(self):
        # Monotonicity: a resolved condition never flips.
        cell = AttributeCell("x")
        cell.mark_enabled()
        with pytest.raises(IllegalTransitionError):
            cell.mark_disabled()

    def test_speculative_value_requires_computed(self):
        cell = AttributeCell("x")
        with pytest.raises(ValueError):
            _ = cell.speculative_value

    def test_repr(self):
        assert "UNINITIALIZED" in repr(AttributeCell("x"))


_MUTATORS = ("mark_ready", "mark_enabled", "mark_disabled", "set_computed")


@given(st.lists(st.sampled_from(_MUTATORS), max_size=8))
def test_cell_never_leaves_the_automaton(operations):
    """Any mutator sequence either raises or follows Figure 3's edges."""
    cell = AttributeCell("x")
    state = cell.state
    for op in operations:
        try:
            if op == "set_computed":
                cell.set_computed(0)
            else:
                getattr(cell, op)()
        except IllegalTransitionError:
            assert cell.state is state  # failed transitions must not mutate
            continue
        new_state = cell.state
        assert new_state is state or new_state in legal_successors(state)
        state = new_state


@given(st.lists(st.sampled_from(_MUTATORS), max_size=8))
def test_stable_cells_are_frozen_or_reject(operations):
    """Once stable, the observable value never changes (monotonic assignment)."""
    cell = AttributeCell("x")
    observed = None
    for op in operations:
        try:
            if op == "set_computed":
                cell.set_computed(1)
            else:
                getattr(cell, op)()
        except IllegalTransitionError:
            pass
        if cell.stable:
            if observed is None:
                observed = cell.value
            else:
                assert cell.value == observed or cell.value is observed
