"""Engine correctness against the declarative semantics (property-based).

The paper proves its optimizations correct w.r.t. the unique complete
snapshot; here Hypothesis generates arbitrary well-formed decision flows
and arbitrary strategies, and we check that the optimized engine's
terminal snapshot is *compatible* with the reference evaluator:

* every stabilized attribute has the snapshot's state and value;
* every target attribute stabilizes;
* conservative strategies never execute a disabled attribute;
* work never exceeds the schema's total query cost;
* attributes left unstable under option P are semantically irrelevant:
  perturbing their task results does not change any target value.
"""

from hypothesis import given, settings, strategies as st

from repro import (
    ALL_STRATEGY_CODES,
    Attribute,
    AttributeState,
    Comparison,
    DecisionFlowSchema,
    IsNull,
    NULL,
    Op,
    check_against_snapshot,
    evaluate_schema,
)
from repro.core.tasks import QueryTask
from tests._support import run_engine

# ---------------------------------------------------------------------------
# Schema generator: layered DAGs with data and enabling edges
# ---------------------------------------------------------------------------


def _task_fn(salt):
    def fn(values):
        total = salt
        for value in values.values():
            if value is not NULL and isinstance(value, int):
                total += value
        return total % 97

    return fn


@st.composite
def random_schemas(draw):
    layer_sizes = draw(st.lists(st.integers(1, 3), min_size=1, max_size=4))
    names = ["src"]
    attributes = [Attribute("src")]
    ops = [Op.EQ, Op.NE, Op.LT, Op.LE, Op.GT, Op.GE]

    counter = 0
    for size in layer_sizes:
        layer = []
        for _ in range(size):
            name = f"n{counter}"
            counter += 1
            inputs = draw(
                st.lists(st.sampled_from(names), unique=True, min_size=1, max_size=3)
            )
            salt = draw(st.integers(0, 96))
            cost = draw(st.integers(1, 3))
            condition_kind = draw(st.sampled_from(["true", "cmp", "null", "and", "or"]))
            if condition_kind == "true":
                condition = None
            else:
                ref1 = draw(st.sampled_from(names))
                ref2 = draw(st.sampled_from(names))
                c1 = Comparison(ref1, draw(st.sampled_from(ops)), draw(st.integers(0, 96)))
                c2 = IsNull(ref2)
                if condition_kind == "cmp":
                    condition = c1
                elif condition_kind == "null":
                    condition = c2
                elif condition_kind == "and":
                    condition = c1 & c2
                else:
                    condition = c1 | c2
            kwargs = {} if condition is None else {"condition": condition}
            attributes.append(
                Attribute(
                    name,
                    task=QueryTask(f"q_{name}", inputs, _task_fn(salt), cost),
                    **kwargs,
                )
            )
            layer.append(name)
        names.extend(layer)

    non_source = [a.name for a in attributes[1:]]
    target_names = draw(
        st.lists(st.sampled_from(non_source), unique=True, min_size=1, max_size=2)
    )
    # Always make the deepest attribute a target so executions do real work.
    if non_source[-1] not in target_names:
        target_names.append(non_source[-1])
    for attribute in attributes:
        if attribute.name in target_names:
            attribute.is_target = True
    return DecisionFlowSchema(attributes, name="hyp"), {"src": draw(st.integers(0, 96))}


_CODES = [code + permitted for code in ALL_STRATEGY_CODES for permitted in ("0", "40", "100")]


@settings(max_examples=120, deadline=None)
@given(data=st.data(), schema_and_source=random_schemas())
def test_engine_matches_declarative_semantics(data, schema_and_source):
    schema, source_values = schema_and_source
    code = data.draw(st.sampled_from(_CODES))
    metrics, instance = run_engine(schema, code, source_values)
    assert instance.done

    snapshot = evaluate_schema(schema, source_values)
    violations = check_against_snapshot(
        snapshot, instance.state_map(), instance.value_map()
    )
    assert violations == [], f"{code}: {violations}"

    # Work accounting sanity.
    assert 0 <= metrics.work_units <= schema.total_query_cost()
    assert metrics.queries_completed + metrics.queries_cancelled == metrics.queries_launched


@settings(max_examples=60, deadline=None)
@given(data=st.data(), schema_and_source=random_schemas())
def test_conservative_strategies_only_execute_enabled_attributes(data, schema_and_source):
    schema, source_values = schema_and_source
    code = data.draw(st.sampled_from(["PCE0", "PCC0", "NCE100", "PCC100", "NCC40"]))
    _, instance = run_engine(schema, code, source_values)
    snapshot = evaluate_schema(schema, source_values)
    for name in instance.launched:
        assert snapshot.states[name] is AttributeState.VALUE, (
            f"{code} launched {name}, which the snapshot disables"
        )


@settings(max_examples=60, deadline=None)
@given(schema_and_source=random_schemas())
def test_unstable_leftovers_cannot_influence_targets(schema_and_source):
    """Attributes skipped by option P are semantically irrelevant.

    Rebuild the schema with poisoned task functions for every attribute
    the P-engine left unstable; the complete snapshot's target values must
    not change.  This validates the unneeded-detection rule itself, not
    just the engine's use of it.
    """
    schema, source_values = schema_and_source
    _, instance = run_engine(schema, "PCE0", source_values)
    skipped = {
        name
        for name in schema.non_source_names
        if not instance.cells[name].stable
    }
    if not skipped:
        return
    poisoned_attributes = []
    for attribute in schema:
        if attribute.name in skipped:
            poisoned_attributes.append(
                Attribute(
                    attribute.name,
                    task=QueryTask(
                        attribute.task.name,
                        attribute.task.inputs,
                        # A value no generated task can produce (they emit
                        # ints in [0, 97)), kept an int so downstream
                        # comparisons stay well typed.
                        lambda values: 4242,
                        attribute.task.cost,
                    ),
                    condition=attribute.condition,
                    is_target=attribute.is_target,
                )
            )
        else:
            poisoned_attributes.append(attribute)
    poisoned_schema = DecisionFlowSchema(poisoned_attributes, name="poisoned")

    original = evaluate_schema(schema, source_values)
    poisoned = evaluate_schema(poisoned_schema, source_values)
    for target in schema.target_names:
        assert original.states[target] is poisoned.states[target]
        assert original.values[target] == poisoned.values[target] or (
            original.values[target] is NULL and poisoned.values[target] is NULL
        )


@settings(max_examples=40, deadline=None)
@given(schema_and_source=random_schemas())
def test_speculation_changes_work_not_answers(schema_and_source):
    """PSE100 and PCE0 must agree on target values, whatever the work gap."""
    schema, source_values = schema_and_source
    _, fast = run_engine(schema, "PSE100", source_values)
    _, slow = run_engine(schema, "PCE0", source_values)
    for target in schema.target_names:
        assert fast.cells[target].value == slow.cells[target].value or (
            fast.cells[target].value is NULL and slow.cells[target].value is NULL
        )


@settings(max_examples=40, deadline=None)
@given(schema_and_source=random_schemas())
def test_determinism(schema_and_source):
    """Two runs of the same strategy are event-for-event identical."""
    schema, source_values = schema_and_source
    first_metrics, first = run_engine(schema, "PSE40", source_values)
    second_metrics, second = run_engine(schema, "PSE40", source_values)
    assert first.state_map() == second.state_map()
    assert first_metrics.work_units == second_metrics.work_units
    assert first_metrics.elapsed == second_metrics.elapsed
