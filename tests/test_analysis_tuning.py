"""Strategy tuning against a Db function (the Figure 9(b) procedure)."""

import pytest

from repro.analysis.guidelines import StrategyPoint
from repro.analysis.tuning import tune
from repro.simdb.profiler import DbFunction


def linear_db():
    return DbFunction(((0.0, 10.0), (50.0, 110.0)))  # slope 2 ms/Gmpl


def profile():
    return [
        StrategyPoint("PCE0", work=20.0, time_units=20.0),
        StrategyPoint("PC*100", work=22.0, time_units=8.0),
        StrategyPoint("PSE100", work=90.0, time_units=7.0),  # saturates
    ]


class TestTune:
    def test_feasibility_split(self):
        report = tune(profile(), linear_db(), throughput_per_s=10.0)
        by_code = {p.code: p for p in report.predictions}
        assert by_code["PCE0"].feasible
        assert by_code["PC*100"].feasible
        assert not by_code["PSE100"].feasible  # 10/s × 90u × slope 2 ⇒ no fixpoint
        assert report.feasible_codes() == ("PC*100", "PCE0")

    def test_best_minimizes_predicted_seconds(self):
        report = tune(profile(), linear_db(), throughput_per_s=10.0)
        assert report.best.code == "PC*100"  # 8 units × ~unit time beats 20 ×

    def test_predicted_seconds_formula(self):
        report = tune(profile(), linear_db(), throughput_per_s=10.0)
        prediction = next(p for p in report.predictions if p.code == "PCE0")
        assert prediction.predicted_seconds == pytest.approx(
            prediction.time_units * prediction.unit_time_ms / 1000.0
        )
        assert prediction.gmpl is not None

    def test_max_work_reported(self):
        report = tune(profile(), linear_db(), throughput_per_s=10.0)
        # slope 2: W_max = 1000/(10×2) = 50.
        assert report.max_work == pytest.approx(50.0, abs=0.1)

    def test_all_saturated_returns_no_best(self):
        heavy = [StrategyPoint("X", 90.0, 5.0), StrategyPoint("Y", 99.0, 4.0)]
        report = tune(heavy, linear_db(), throughput_per_s=10.0)
        assert report.best is None
        assert report.feasible_codes() == ()

    def test_predictions_sorted_by_code(self):
        report = tune(profile(), linear_db(), throughput_per_s=10.0)
        codes = [p.code for p in report.predictions]
        assert codes == sorted(codes)
