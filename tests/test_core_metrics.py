"""Instance metrics and aggregation."""

import pytest

from repro.core.metrics import InstanceMetrics, summarize


def finished(work=10, elapsed=5.0, instance_id="i"):
    return InstanceMetrics(
        instance_id=instance_id,
        start_time=100.0,
        finish_time=100.0 + elapsed,
        work_units=work,
    )


class TestInstanceMetrics:
    def test_elapsed(self):
        assert finished(elapsed=5.0).elapsed == 5.0

    def test_elapsed_requires_finish(self):
        metrics = InstanceMetrics(instance_id="i", start_time=0.0)
        assert not metrics.done
        with pytest.raises(ValueError, match="not finished"):
            _ = metrics.elapsed

    def test_time_in_units_scaling(self):
        metrics = finished(elapsed=6.0)
        assert metrics.time_in_units() == 6.0
        assert metrics.time_in_units(unit_duration=2.0) == 3.0

    def test_time_in_seconds(self):
        metrics = finished(elapsed=250.0)  # ms clock
        assert metrics.time_in_seconds() == 0.25


class TestSummarize:
    def test_basic_stats(self):
        summary = summarize([finished(10, 4.0), finished(20, 8.0)])
        assert summary.count == 2
        assert summary.mean_work == 15.0
        assert summary.mean_elapsed == 6.0
        assert summary.std_work == 5.0
        assert summary.total_work == 30

    def test_single_instance_zero_std(self):
        summary = summarize([finished()])
        assert summary.std_work == 0.0
        assert summary.std_elapsed == 0.0

    def test_unfinished_excluded(self):
        unfinished = InstanceMetrics(instance_id="u", start_time=0.0)
        summary = summarize([finished(10, 4.0), unfinished])
        assert summary.count == 1

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="no finished"):
            summarize([])
        with pytest.raises(ValueError, match="no finished"):
            summarize([InstanceMetrics(instance_id="u", start_time=0.0)])

    def test_empty_ok_returns_zeroed_summary(self):
        for metrics in ([], [InstanceMetrics(instance_id="u", start_time=0.0)]):
            summary = summarize(metrics, empty_ok=True)
            assert summary.count == 0
            assert summary.total_work == 0
            assert summary.mean_work == 0.0
            assert summary.mean_elapsed == 0.0
            assert summary.mean_speculative_wasted_units == 0.0
            assert summary.mean_unneeded_detected == 0.0

    def test_summary_conversions(self):
        summary = summarize([finished(10, 500.0)])
        assert summary.mean_time_in_units(unit_duration=1.0) == 500.0
        assert summary.mean_time_in_seconds() == 0.5
