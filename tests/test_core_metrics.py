"""Instance metrics and aggregation."""

import pytest

from repro.core.metrics import InstanceMetrics, MetricsSummary, summarize


def finished(work=10, elapsed=5.0, instance_id="i"):
    return InstanceMetrics(
        instance_id=instance_id,
        start_time=100.0,
        finish_time=100.0 + elapsed,
        work_units=work,
    )


class TestInstanceMetrics:
    def test_elapsed(self):
        assert finished(elapsed=5.0).elapsed == 5.0

    def test_elapsed_requires_finish(self):
        metrics = InstanceMetrics(instance_id="i", start_time=0.0)
        assert not metrics.done
        with pytest.raises(ValueError, match="not finished"):
            _ = metrics.elapsed

    def test_time_in_units_scaling(self):
        metrics = finished(elapsed=6.0)
        assert metrics.time_in_units() == 6.0
        assert metrics.time_in_units(unit_duration=2.0) == 3.0

    def test_time_in_seconds(self):
        metrics = finished(elapsed=250.0)  # ms clock
        assert metrics.time_in_seconds() == 0.25


class TestSummarize:
    def test_basic_stats(self):
        summary = summarize([finished(10, 4.0), finished(20, 8.0)])
        assert summary.count == 2
        assert summary.mean_work == 15.0
        assert summary.mean_elapsed == 6.0
        assert summary.std_work == 5.0
        assert summary.total_work == 30

    def test_single_instance_zero_std(self):
        summary = summarize([finished()])
        assert summary.std_work == 0.0
        assert summary.std_elapsed == 0.0

    def test_unfinished_excluded(self):
        unfinished = InstanceMetrics(instance_id="u", start_time=0.0)
        summary = summarize([finished(10, 4.0), unfinished])
        assert summary.count == 1

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="no finished"):
            summarize([])
        with pytest.raises(ValueError, match="no finished"):
            summarize([InstanceMetrics(instance_id="u", start_time=0.0)])

    def test_empty_ok_returns_zeroed_summary(self):
        for metrics in ([], [InstanceMetrics(instance_id="u", start_time=0.0)]):
            summary = summarize(metrics, empty_ok=True)
            assert summary.count == 0
            assert summary.total_work == 0
            assert summary.mean_work == 0.0
            assert summary.mean_elapsed == 0.0
            assert summary.mean_speculative_wasted_units == 0.0
            assert summary.mean_unneeded_detected == 0.0

    def test_summary_conversions(self):
        summary = summarize([finished(10, 500.0)])
        assert summary.mean_time_in_units(unit_duration=1.0) == 500.0
        assert summary.mean_time_in_seconds() == 0.5


class TestMerge:
    """MetricsSummary.merge: cross-shard aggregation of disjoint sets."""

    def _population(self, spec):
        """spec: list of (work, elapsed) per instance."""
        return [
            finished(work, elapsed, instance_id=f"i{k}")
            for k, (work, elapsed) in enumerate(spec)
        ]

    def test_merge_nothing_is_the_zeroed_summary(self):
        assert MetricsSummary.merge() == MetricsSummary.empty()
        assert MetricsSummary.merge() == summarize([], empty_ok=True)

    def test_merge_only_empties_is_zeroed(self):
        merged = MetricsSummary.merge(MetricsSummary.empty(), MetricsSummary.empty())
        assert merged.count == 0
        assert merged == summarize([], empty_ok=True)

    def test_single_nonempty_summary_passes_through_exactly(self):
        # Count 3 so a weighted recombination would drift by float ulps.
        original = summarize(self._population([(3, 7.0), (5, 11.0), (9, 2.0)]))
        merged = MetricsSummary.merge(MetricsSummary.empty(), original)
        assert merged == original
        assert merged is not original  # a copy, not an alias

    def test_merge_equals_summarize_of_concatenation(self):
        part_a = self._population([(3, 7.0), (5, 11.0)])
        part_b = self._population([(9, 2.0), (1, 4.0), (6, 6.0)])
        merged = MetricsSummary.merge(summarize(part_a), summarize(part_b))
        combined = summarize(part_a + part_b)
        assert merged.count == combined.count
        assert merged.total_work == combined.total_work
        for name in (
            "mean_work",
            "std_work",
            "mean_elapsed",
            "std_elapsed",
            "mean_speculative_wasted_units",
            "mean_unneeded_detected",
            "mean_queries_launched",
        ):
            assert getattr(merged, name) == pytest.approx(getattr(combined, name)), name

    def test_merge_weights_by_count(self):
        heavy = summarize(self._population([(10, 1.0)] * 3))
        light = summarize(self._population([(1, 10.0)]))
        merged = MetricsSummary.merge(heavy, light)
        assert merged.count == 4
        assert merged.mean_work == pytest.approx((3 * 10 + 1) / 4)
        assert merged.mean_elapsed == pytest.approx((3 * 1.0 + 10.0) / 4)
        assert merged.total_work == 31

    def test_merge_is_associative_enough(self):
        parts = [
            summarize(self._population([(w, e)]))
            for w, e in [(2, 3.0), (8, 1.0), (5, 9.0)]
        ]
        left = MetricsSummary.merge(MetricsSummary.merge(parts[0], parts[1]), parts[2])
        flat = MetricsSummary.merge(*parts)
        assert left.count == flat.count == 3
        assert left.mean_work == pytest.approx(flat.mean_work)
        assert left.std_elapsed == pytest.approx(flat.std_elapsed)


class TestQueryCacheCounters:
    def test_summarize_leaves_counters_zero(self):
        metrics = InstanceMetrics("i", 0.0, finish_time=4.0, work_units=3)
        summary = summarize([metrics])
        assert summary.query_cache_hits == 0
        assert summary.query_cache_misses == 0
        assert summary.query_cache_coalesced == 0

    def test_merge_sums_counters_across_shards(self):
        from dataclasses import replace

        a = replace(
            summarize([InstanceMetrics("a", 0.0, finish_time=2.0, work_units=2)]),
            query_cache_hits=3, query_cache_misses=5, query_cache_coalesced=7,
        )
        b = replace(
            summarize([InstanceMetrics("b", 0.0, finish_time=4.0, work_units=4)]),
            query_cache_hits=1, query_cache_misses=2, query_cache_coalesced=4,
        )
        merged = MetricsSummary.merge(a, b)
        assert merged.query_cache_hits == 4
        assert merged.query_cache_misses == 7
        assert merged.query_cache_coalesced == 11

    def test_merge_keeps_counters_of_empty_shards(self):
        from dataclasses import replace

        busy = replace(
            summarize([InstanceMetrics("a", 0.0, finish_time=2.0, work_units=2)]),
            query_cache_misses=2,
        )
        # A shard whose instances are all still in flight has an empty
        # summary but real cache traffic; the totals must survive merge.
        idle = replace(MetricsSummary.empty(), query_cache_coalesced=9)
        merged = MetricsSummary.merge(busy, idle)
        assert merged.count == 1
        assert merged.query_cache_misses == 2
        assert merged.query_cache_coalesced == 9
        only_idle = MetricsSummary.merge(idle)
        assert only_idle.count == 0
        assert only_idle.query_cache_coalesced == 9


class TestCohortCounters:
    """cohort_hits/cohort_splits are whole-shard totals: merge must sum
    them exactly — never average, never drop empty shards' counts."""

    def _shard(self, rng):
        """One shard summary: possibly empty, with random cohort totals."""
        from dataclasses import replace

        if rng.random() < 0.4:  # idle shard: no finished instances yet
            base = MetricsSummary.empty()
        else:
            base = summarize(
                [
                    InstanceMetrics(
                        f"i{k}", 0.0, finish_time=rng.uniform(1.0, 9.0),
                        work_units=rng.randrange(1, 20),
                    )
                    for k in range(rng.randrange(1, 5))
                ]
            )
        return replace(
            base,
            cohort_hits=rng.randrange(0, 50),
            cohort_splits=rng.randrange(0, 12),
        )

    def test_summarize_leaves_cohort_counters_zero(self):
        summary = summarize([InstanceMetrics("i", 0.0, finish_time=4.0, work_units=3)])
        assert summary.cohort_hits == 0
        assert summary.cohort_splits == 0

    def test_merge_sums_exactly_over_random_shard_mixes(self):
        import random

        for seed in range(50):
            rng = random.Random(seed)
            shards = [self._shard(rng) for _ in range(rng.randrange(1, 7))]
            merged = MetricsSummary.merge(*shards)
            assert merged.cohort_hits == sum(s.cohort_hits for s in shards), seed
            assert merged.cohort_splits == sum(s.cohort_splits for s in shards), seed
            # Order-invariant and associative: shuffle, then fold pairwise.
            shuffled = shards[:]
            rng.shuffle(shuffled)
            folded = shuffled[0]
            for shard in shuffled[1:]:
                folded = MetricsSummary.merge(folded, shard)
            assert folded.cohort_hits == merged.cohort_hits, seed
            assert folded.cohort_splits == merged.cohort_splits, seed

    def test_empty_shards_still_contribute_counters(self):
        from dataclasses import replace

        # Shards whose instances are all mid-flight summarize to count=0
        # but have already recorded cohort traffic; an average (or a
        # count-weighted mean) would erase it.
        idle_a = replace(MetricsSummary.empty(), cohort_hits=7, cohort_splits=2)
        idle_b = replace(MetricsSummary.empty(), cohort_hits=5)
        merged = MetricsSummary.merge(idle_a, idle_b)
        assert merged.count == 0
        assert merged.cohort_hits == 12
        assert merged.cohort_splits == 2

    def test_merge_roundtrips_through_wire_format(self):
        from dataclasses import replace

        shard = replace(
            summarize([InstanceMetrics("a", 0.0, finish_time=2.0, work_units=2)]),
            cohort_hits=4, cohort_splits=1,
        )
        merged = MetricsSummary.merge(shard, MetricsSummary.empty())
        assert MetricsSummary.from_dict(merged.to_dict()) == merged


class TestSummaryDict:
    """to_dict/from_dict: the wire format GET /metrics serves."""

    def _summary(self):
        return MetricsSummary(
            count=3,
            mean_work=12.333333333333334,
            std_work=1.699673171197595,
            mean_elapsed=7.1,
            std_elapsed=0.2,
            mean_speculative_wasted_units=0.5,
            mean_unneeded_detected=1.25,
            total_work=37,
            mean_queries_launched=4.666666666666667,
            query_cache_hits=9,
            query_cache_misses=4,
            query_cache_coalesced=2,
        )

    def test_to_dict_covers_every_field(self):
        from dataclasses import fields

        data = self._summary().to_dict()
        assert set(data) == {f.name for f in fields(MetricsSummary)}

    def test_from_dict_inverts_to_dict_exactly(self):
        summary = self._summary()
        assert MetricsSummary.from_dict(summary.to_dict()) == summary

    def test_json_round_trip_is_exact(self):
        import json

        summary = self._summary()
        over_the_wire = json.loads(json.dumps(summary.to_dict()))
        assert MetricsSummary.from_dict(over_the_wire) == summary

    def test_unknown_keys_rejected(self):
        data = self._summary().to_dict()
        data["bogus"] = 1
        with pytest.raises(ValueError, match="bogus"):
            MetricsSummary.from_dict(data)

    def test_merge_then_dict_keeps_summed_cache_counters(self):
        shard_a = self._summary()
        shard_b = self._summary()
        merged = MetricsSummary.merge(shard_a, shard_b)
        data = merged.to_dict()
        assert data["query_cache_hits"] == 18
        assert data["query_cache_misses"] == 8
        assert data["query_cache_coalesced"] == 4
        assert MetricsSummary.from_dict(data) == merged
