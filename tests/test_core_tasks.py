"""Foreign (query) and synthesis tasks."""

import pytest

from repro import NULL
from repro.core.tasks import QueryTask, SynthesisTask, constant, query, synthesize


class TestQueryTask:
    def test_compute_receives_only_declared_inputs(self):
        seen = {}

        def fn(values):
            seen.update(values)
            return 1

        task = QueryTask("q", ("a", "b"), fn, cost=2)
        task.compute({"a": 1, "b": 2, "c": 3})
        assert seen == {"a": 1, "b": 2}

    def test_cost_validation(self):
        with pytest.raises(ValueError, match="cost"):
            QueryTask("q", (), constant(0), cost=0)

    def test_duplicate_inputs_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            QueryTask("q", ("a", "a"), constant(0), cost=1)

    def test_is_query(self):
        assert QueryTask("q", (), constant(0), 1).is_query
        assert not SynthesisTask("s", (), constant(0)).is_query

    def test_null_inputs_are_passed_through(self):
        task = QueryTask("q", ("a",), lambda v: v["a"] is NULL, cost=1)
        assert task.compute({"a": NULL}) is True

    def test_repr(self):
        assert "cost=3" in repr(QueryTask("q", (), constant(0), 3))


class TestSynthesisTask:
    def test_compute(self):
        task = SynthesisTask("s", ("a", "b"), lambda v: v["a"] + v["b"])
        assert task.compute({"a": 2, "b": 3}) == 5

    def test_missing_input_raises(self):
        task = SynthesisTask("s", ("a",), lambda v: v["a"])
        with pytest.raises(KeyError):
            task.compute({})

    def test_repr(self):
        assert "s_x" in repr(SynthesisTask("s_x", ("a",), constant(0)))


class TestConvenience:
    def test_constant(self):
        assert constant(42)({}) == 42
        assert constant(42)({"anything": 1}) == 42

    def test_query_with_value(self):
        task = query("q", value=7, cost=2)
        assert task.compute({}) == 7
        assert task.cost == 2

    def test_query_with_fn(self):
        task = query("q", inputs=("a",), fn=lambda v: v["a"] * 2)
        assert task.compute({"a": 3}) == 6

    def test_synthesize(self):
        task = synthesize("s", ("a",), lambda v: -v["a"])
        assert task.compute({"a": 3}) == -3
