"""Differential harness: the batched engine vs the reference engine.

The :class:`~repro.core.batch_engine.BatchedEngine` replaces the
reference engine's name-keyed instance graphs with compiled-plan arrays.
This suite is the lockdown: seeded *generated* scenarios sweep every
execution dimension — strategy (eager ``P*`` / lazy ``N*`` including the
``PSE*`` parallelism family), result sharing, halt policies, failure
injection, unneeded-cancellation, and all three backends under both DES
kernels — and each scenario runs through both engines, asserting the
full observable trace is identical:

* per-instance completed-value maps (targets *and* intermediates),
* every :class:`InstanceMetrics` counter, including Work and
  finish times (TimeInUnits on the ideal backend), cancellation /
  failure / sharing / speculation / unneeded counts,
* database-level work, completion/cancellation totals, and mean Gmpl,
* the engine-observer event stream, compared both as the per-run
  multiset the contract guarantees and as the exact sequence the
  deterministic DES actually produces.

Both engines drive the *same* database implementations, so times are
required to match exactly (not approximately): a divergence anywhere in
launch ordering would shift submission ids and show up immediately.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, fields

import pytest

from repro import BatchedEngine, Engine, Simulation, Strategy
from repro.api import DecisionService, ExecutionConfig
from repro.api.backends import Backend
from repro.core.engine import EngineObserver
from repro.core.metrics import InstanceMetrics
from repro.obs import Observability

from tests._support import chain_schema, diamond_schema, make_database, scenario_pattern

ENGINE_CLASSES = {"reference": Engine, "batched": BatchedEngine}

#: Every InstanceMetrics counter participates in the trace comparison.
METRIC_FIELDS = tuple(f.name for f in fields(InstanceMetrics))


class RecordingObserver(EngineObserver):
    """Flattens every observer callback into a comparable event tuple."""

    def __init__(self):
        self.events: list[tuple] = []

    def on_instance_start(self, instance):
        self.events.append(("start", instance.instance_id))

    def on_launch(self, instance, name, *, speculative, shared):
        self.events.append(("launch", instance.instance_id, name, speculative, shared))

    def on_query_done(self, instance, name, *, units, completed):
        self.events.append(("done", instance.instance_id, name, units, completed))

    def on_instance_complete(self, instance):
        self.events.append(("complete", instance.instance_id))


# -- scenario generation -------------------------------------------------------


@dataclass(frozen=True)
class Scenario:
    """One generated execution configuration (seed-independent)."""

    backend: str = "ideal"
    kernel: str = "coalesced"
    code: str = "PSE50"
    halt_policy: str = "cancel"
    share: bool = False
    failure_prob: float = 0.0
    cancel_unneeded: bool = False
    instances: int = 5
    spacing: float = 2.0
    nb_nodes: int = 24
    pct_enabled: float = 50.0
    max_cost: int = 6

    @property
    def label(self) -> str:
        bits = [self.backend, self.kernel, self.code, self.halt_policy]
        if self.share:
            bits.append("share")
        if self.failure_prob:
            bits.append(f"fail{self.failure_prob:g}")
        if self.cancel_unneeded:
            bits.append("cu")
        bits.append(f"i{self.instances}x{self.spacing:g}")
        return "-".join(bits)


#: Corner cases that must always be present: the paper's eager (P*) and
#: lazy (N*) strategies, the PSE* parallelism family, every backend and
#: kernel, sharing, both halt policies, failures, and cancel-unneeded.
CORNERS = [
    Scenario(code="PSE0"),
    Scenario(code="PSE50"),
    Scenario(code="PSE100", spacing=0.0),
    Scenario(code="PCE0"),
    Scenario(code="NSE50"),
    Scenario(code="NCC80", halt_policy="drain"),
    Scenario(code="PSC100", share=True, spacing=0.0),
    Scenario(code="PSE80", share=True, failure_prob=0.2),
    Scenario(code="PSE50", halt_policy="drain", share=True),
    Scenario(code="PSE50", failure_prob=0.3),
    Scenario(code="PCC50", cancel_unneeded=True),
    Scenario(code="PSE100", cancel_unneeded=True, halt_policy="drain"),
    Scenario(backend="ideal", kernel="per-unit", code="PSE50"),
    Scenario(backend="profiled", code="PSE100", spacing=0.0),
    Scenario(backend="profiled", code="PSE50", share=True, failure_prob=0.25),
    Scenario(backend="profiled", kernel="per-unit", code="PCE0", halt_policy="drain"),
    Scenario(backend="bounded", code="PSE50", instances=4, nb_nodes=16),
    Scenario(backend="bounded", code="NSE100", share=True, instances=4, nb_nodes=16),
]


def generate_scenarios(total: int = 26, seed: int = 20260729) -> list[Scenario]:
    """The corner list topped up with seeded random configurations."""
    rng = random.Random(seed)
    scenarios = list(CORNERS)
    seen = set(scenarios)
    while len(scenarios) < total:
        backend = rng.choice(["ideal", "ideal", "profiled", "bounded"])
        candidate = Scenario(
            backend=backend,
            kernel="coalesced" if backend == "bounded" else rng.choice(["coalesced", "per-unit"]),
            code=(
                rng.choice("PN")
                + rng.choice("SC")
                + rng.choice("EC")
                + str(rng.choice([0, 25, 50, 80, 100]))
            ),
            halt_policy=rng.choice(["cancel", "drain"]),
            share=rng.random() < 0.4,
            failure_prob=rng.choice([0.0, 0.0, 0.15, 0.3]),
            cancel_unneeded=rng.random() < 0.3,
            instances=rng.randint(4, 6) if backend != "bounded" else 4,
            spacing=rng.choice([0.0, 1.0, 2.0]),
            nb_nodes=rng.choice([16, 24]) if backend != "bounded" else 16,
            pct_enabled=rng.choice([30.0, 50.0, 70.0]),
            max_cost=rng.choice([4, 6]),
        )
        if candidate not in seen:
            seen.add(candidate)
            scenarios.append(candidate)
    return scenarios


SCENARIOS = generate_scenarios()


def test_scenario_coverage():
    """The generated sweep honors the acceptance floor and spans the grid."""
    assert len(SCENARIOS) >= 20
    assert {s.backend for s in SCENARIOS} == {"ideal", "profiled", "bounded"}
    assert {s.kernel for s in SCENARIOS} >= {"coalesced", "per-unit"}
    assert any(s.code.startswith("N") for s in SCENARIOS)  # lazy evaluation
    assert any(s.code.startswith("P") for s in SCENARIOS)  # eager evaluation
    assert {s.code for s in SCENARIOS} >= {"PSE0", "PSE50", "PSE100"}  # PSE* family
    assert any(s.share for s in SCENARIOS)
    assert any(s.halt_policy == "drain" for s in SCENARIOS)
    assert any(s.failure_prob > 0 for s in SCENARIOS)
    assert any(s.cancel_unneeded for s in SCENARIOS)


# -- trace capture -------------------------------------------------------------


def run_scenario(
    engine_kind: str,
    scenario: Scenario,
    seed: int,
    *,
    dispatch: str = "per-event",
    query_cache: bool = False,
    cohorts: bool = False,
    observe: bool = False,
) -> dict:
    """Execute one scenario on one engine; returns the observable trace."""
    pattern = scenario_pattern(
        seed,
        nb_nodes=scenario.nb_nodes,
        pct_enabled=scenario.pct_enabled,
        max_cost=scenario.max_cost,
    )
    sim = Simulation()
    database = make_database(
        scenario.backend, scenario.kernel, sim, seed, scenario.failure_prob
    )
    observer = RecordingObserver()
    engine = ENGINE_CLASSES[engine_kind](
        pattern.schema,
        Strategy.parse(scenario.code, cancel_unneeded=scenario.cancel_unneeded),
        database,
        halt_policy=scenario.halt_policy,
        share_results=scenario.share,
        observer=observer,
        query_cache=query_cache,
        cohorts=cohorts,
        obs=Observability.create() if observe else None,
    )
    if dispatch == "pooled":
        engine.enable_pooled_dispatch()
    for index in range(scenario.instances):
        engine.submit_instance(pattern.source_values, at=index * scenario.spacing)
    sim.run()
    return {
        "cohort_stats": (engine.cohort_hits, engine.cohort_splits),
        "values": [
            (inst.instance_id, inst.done, tuple(sorted(
                (name, repr(value)) for name, value in inst.value_map().items()
            )))
            for inst in engine.instances
        ],
        "metrics": [
            tuple(getattr(inst.metrics, name) for name in METRIC_FIELDS)
            for inst in engine.instances
        ],
        "database": (
            database.total_units,
            database.queries_completed,
            database.queries_cancelled,
            database.queries_failed,
            database.mean_gmpl(),
        ),
        "end_time": sim.now,
        "events": observer.events,
        "obs": (
            {"spans": len(engine.obs.tracer), **engine.obs.registry.snapshot()}
            if observe
            else None
        ),
    }


def assert_traces_identical(reference: dict, batched: dict) -> None:
    assert batched["values"] == reference["values"]
    assert batched["metrics"] == reference["metrics"]
    assert batched["database"] == reference["database"]
    assert batched["end_time"] == reference["end_time"]
    # The contract: observer event *multisets* match.  The deterministic
    # DES makes the stronger sequence equality hold too; assert both so a
    # future ordering regression is caught with the sharper message.
    assert Counter(batched["events"]) == Counter(reference["events"])
    assert batched["events"] == reference["events"]


# -- the seeded sweep ----------------------------------------------------------


@pytest.mark.parametrize("seed", range(3))
@pytest.mark.parametrize("scenario", SCENARIOS, ids=[s.label for s in SCENARIOS])
def test_engines_produce_identical_traces(scenario: Scenario, seed: int):
    reference = run_scenario("reference", scenario, seed)
    batched = run_scenario("batched", scenario, seed)
    assert_traces_identical(reference, batched)
    # Sanity: the scenario actually exercised the engine.
    assert any(done for _, done, _ in reference["values"])


# -- pooled dispatch and the query share cache ---------------------------------
#
# Pooled dispatch promises the *same* observable trace with a cheaper
# drain, and the query cache must behave identically under both drains
# (and both engines).  A curated scenario subset spans all three
# backends, both kernels, sharing, failures, drain halts, and
# cancel-unneeded; the full event sequence is compared, not a summary.

DISPATCH_SCENARIOS = [
    Scenario(code="PSE50"),
    Scenario(code="PSE100", spacing=0.0),
    Scenario(code="PCE0"),
    Scenario(code="NCC80", halt_policy="drain"),
    Scenario(code="PSC100", share=True, spacing=0.0),
    Scenario(code="PSE80", share=True, failure_prob=0.2),
    Scenario(code="PCC50", cancel_unneeded=True),
    Scenario(backend="ideal", kernel="per-unit", code="PSE50"),
    Scenario(backend="profiled", code="PSE100", spacing=0.0),
    Scenario(backend="profiled", kernel="per-unit", code="PCE0", halt_policy="drain"),
    Scenario(backend="bounded", code="PSE50", instances=4, nb_nodes=16),
]


def test_dispatch_scenario_coverage():
    assert {s.backend for s in DISPATCH_SCENARIOS} == {"ideal", "profiled", "bounded"}
    assert {s.kernel for s in DISPATCH_SCENARIOS} >= {"coalesced", "per-unit"}
    assert any(s.share for s in DISPATCH_SCENARIOS)
    assert any(s.failure_prob > 0 for s in DISPATCH_SCENARIOS)
    assert any(s.halt_policy == "drain" for s in DISPATCH_SCENARIOS)
    assert any(s.cancel_unneeded for s in DISPATCH_SCENARIOS)


@pytest.mark.parametrize("query_cache", [False, True], ids=["nocache", "cache"])
@pytest.mark.parametrize("engine_kind", ["reference", "batched"])
@pytest.mark.parametrize(
    "scenario", DISPATCH_SCENARIOS, ids=[s.label for s in DISPATCH_SCENARIOS]
)
def test_pooled_dispatch_matches_per_event(scenario, engine_kind, query_cache):
    """dispatch="pooled" × cache on/off is trace-identical to per-event."""
    per_event = run_scenario(
        engine_kind, scenario, seed=0, dispatch="per-event", query_cache=query_cache
    )
    pooled = run_scenario(
        engine_kind, scenario, seed=0, dispatch="pooled", query_cache=query_cache
    )
    assert_traces_identical(per_event, pooled)


def test_pooled_dispatch_counters_track_pools():
    """The engine's pool stats move under pooled dispatch and count every
    consumed slot (fired events plus cancelled-in-pool skips)."""
    from repro import BatchedEngine, IdealDatabase

    pattern = scenario_pattern(0)
    sim = Simulation()
    engine = BatchedEngine(pattern.schema, Strategy.parse("PSE100"), IdealDatabase(sim))
    engine.enable_pooled_dispatch()
    for _ in range(8):
        engine.submit_instance(pattern.source_values)
    sim.run()
    assert engine.pooled_batches > 0
    assert engine.pooled_events >= sim.events_executed > 0
    # Uniform sweeps genuinely pool: far fewer batches than events.
    assert engine.pooled_batches < engine.pooled_events


# -- observability is a pure observer -----------------------------------------


@pytest.mark.parametrize("dispatch", ["per-event", "pooled"])
@pytest.mark.parametrize("engine_kind", ["reference", "batched"])
@pytest.mark.parametrize(
    "scenario", DISPATCH_SCENARIOS, ids=[s.label for s in DISPATCH_SCENARIOS]
)
def test_armed_observability_is_trace_identical(scenario, engine_kind, dispatch):
    """Arming the repro.obs tracer + registry must not perturb execution:
    the full observable trace (values, metrics, db work, event sequence,
    end time) is bit-identical to the disarmed run."""
    disarmed = run_scenario(engine_kind, scenario, seed=0, dispatch=dispatch)
    armed = run_scenario(
        engine_kind, scenario, seed=0, dispatch=dispatch, observe=True
    )
    assert_traces_identical(disarmed, armed)
    # ...and the armed run actually recorded something: spans in the
    # flight recorder, counters in the registry.
    assert armed["obs"]["spans"] > 0
    counters = {c["name"]: c["value"] for c in armed["obs"]["counters"]}
    assert counters["engine_scheduling_rounds"] > 0
    assert counters["engine_queries_launched"] > 0


def test_armed_cohort_run_counts_forms_and_joins():
    """Cohorted sweeps record cohort lifecycle counters when armed."""
    burst = Scenario(code="PSE100", spacing=0.0, instances=6)
    disarmed = run_scenario("batched", burst, seed=0, cohorts=True)
    armed = run_scenario("batched", burst, seed=0, cohorts=True, observe=True)
    assert_traces_identical(disarmed, armed)
    counters = {c["name"]: c["value"] for c in armed["obs"]["counters"]}
    assert counters["cohort_forms"] >= 1
    assert counters["cohort_joins"] == armed["cohort_stats"][0] > 0


@pytest.mark.parametrize("engine_kind", ["reference", "batched"])
def test_query_cache_cuts_db_work_and_preserves_full_launch_values(engine_kind):
    """On a failure-free full-launch sweep (PSE100: every candidate
    launches, nothing is timing-gated) the cache removes db work without
    touching the resolved values.  This is the narrow decision-value
    check; the cache's general contract is weaker — it changes execution
    *dynamics* (completion timing, %Permitted accounting, failure
    exposure) like any sharing optimization, so cached runs are compared
    against each other (pooled vs per-event, sharded vs plain, engine vs
    engine in the suites above), never bit-for-bit against uncached
    runs outside this scenario."""
    scenario = Scenario(code="PSE100", spacing=0.0, instances=6)
    plain = run_scenario(engine_kind, scenario, seed=1)
    cached = run_scenario(engine_kind, scenario, seed=1, query_cache=True)
    assert cached["values"] == plain["values"]
    assert cached["database"][0] < plain["database"][0]  # fewer total units


# -- cohort execution ----------------------------------------------------------
#
# Cohort execution promises the *same* observable trace while running one
# representative per (start valuation, strategy, instant) group.  The
# curated ring spans all three backends, same-instant bursts (the cohort
# case) and spaced arrivals (the no-op case), failure injection and the
# bounded backend (both force copy-on-diverge splits), drain halts,
# cancel-unneeded, sharing (the documented fallback to individual
# execution), and the cache on/off × lockstep/live mode boundary.

COHORT_SCENARIOS = [
    Scenario(code="PSE100", spacing=0.0),
    Scenario(code="PSE50", spacing=0.0),
    Scenario(code="PSE50", spacing=1.0),
    Scenario(code="PCE0", spacing=0.0),
    Scenario(code="NSE50", spacing=0.0),
    Scenario(code="NCC80", halt_policy="drain", spacing=0.0),
    Scenario(code="PCC50", cancel_unneeded=True, spacing=0.0),
    Scenario(code="PSE80", failure_prob=0.2, spacing=0.0),
    Scenario(code="PSC100", share=True, spacing=0.0),
    Scenario(backend="profiled", code="PSE100", spacing=0.0),
    Scenario(backend="profiled", code="PSE50", failure_prob=0.25, spacing=0.0),
    Scenario(backend="bounded", code="PSE50", instances=4, nb_nodes=16, spacing=0.0),
    Scenario(backend="bounded", code="NSE100", instances=4, nb_nodes=16, spacing=0.0),
]


def test_cohort_scenario_coverage():
    assert {s.backend for s in COHORT_SCENARIOS} == {"ideal", "profiled", "bounded"}
    assert any(s.spacing == 0.0 for s in COHORT_SCENARIOS)
    assert any(s.spacing > 0.0 for s in COHORT_SCENARIOS)
    assert any(s.failure_prob > 0 for s in COHORT_SCENARIOS)
    assert any(s.share for s in COHORT_SCENARIOS)
    assert any(s.halt_policy == "drain" for s in COHORT_SCENARIOS)
    assert any(s.cancel_unneeded for s in COHORT_SCENARIOS)


@pytest.mark.parametrize("query_cache", [False, True], ids=["nocache", "cache"])
@pytest.mark.parametrize("engine_kind", ["reference", "batched"])
@pytest.mark.parametrize(
    "scenario", COHORT_SCENARIOS, ids=[s.label for s in COHORT_SCENARIOS]
)
def test_cohorts_match_individual_execution(scenario, engine_kind, query_cache):
    """cohorts=True is trace-identical to individual execution on both
    engines (a documented no-op on the reference engine)."""
    for seed in range(2):
        individual = run_scenario(
            engine_kind, scenario, seed=seed, query_cache=query_cache
        )
        cohorted = run_scenario(
            engine_kind, scenario, seed=seed, query_cache=query_cache, cohorts=True
        )
        assert_traces_identical(individual, cohorted)
        assert individual["cohort_stats"] == (0, 0)
        if engine_kind == "reference":
            assert cohorted["cohort_stats"] == (0, 0)


@pytest.mark.parametrize("query_cache", [False, True], ids=["nocache", "cache"])
def test_cohorts_capture_same_instant_bursts(query_cache):
    """Identical same-instant submissions actually form cohorts, so the
    trace equality above isn't vacuous."""
    burst = Scenario(code="PSE100", spacing=0.0)
    trace = run_scenario("batched", burst, seed=0, query_cache=query_cache, cohorts=True)
    hits, splits = trace["cohort_stats"]
    assert hits == burst.instances - 1
    assert splits == 0
    bounded = Scenario(
        backend="bounded", code="PSE100", instances=4, nb_nodes=16, spacing=0.0
    )
    trace = run_scenario(
        "batched", bounded, seed=0, query_cache=query_cache, cohorts=True
    )
    hits, splits = trace["cohort_stats"]
    assert hits > 0
    if not query_cache:
        # Mirrored members submit their own queries, so the bounded
        # backend's out-of-order completions force copy-on-diverge
        # splits; with the cache every member coalesces behind the one
        # primary and legitimately inherits its outcome instead.
        assert splits > 0
    spaced = Scenario(code="PSE50", spacing=1.0)
    trace = run_scenario("batched", spaced, seed=0, query_cache=query_cache, cohorts=True)
    assert trace["cohort_stats"] == (0, 0)


@pytest.mark.parametrize("query_cache", [False, True], ids=["nocache", "cache"])
@pytest.mark.parametrize(
    "scenario",
    [s for s in COHORT_SCENARIOS if s.spacing == 0.0][:6],
    ids=[s.label for s in COHORT_SCENARIOS if s.spacing == 0.0][:6],
)
def test_cohorts_match_under_pooled_dispatch(scenario, query_cache):
    """cohorts × pooled dispatch (the benchmark configuration) stays
    trace-identical to the per-event individual baseline."""
    individual = run_scenario("batched", scenario, seed=0, query_cache=query_cache)
    cohorted = run_scenario(
        "batched", scenario, seed=0,
        dispatch="pooled", query_cache=query_cache, cohorts=True,
    )
    assert_traces_identical(individual, cohorted)


def _run_handbuilt(engine_kind: str, schema, source_values, code: str,
                   failure_prob: float) -> dict:
    """Generated patterns are query-only; these schemas mix in synthesis
    tasks and statically disabled branches."""
    sim = Simulation()
    database = make_database("ideal", "coalesced", sim, 0, failure_prob)
    observer = RecordingObserver()
    engine = ENGINE_CLASSES[engine_kind](
        schema, Strategy.parse(code), database, observer=observer
    )
    for index in range(4):
        engine.submit_instance(source_values, at=index * 1.0)
    sim.run()
    return {
        "values": [
            tuple(sorted((n, repr(v)) for n, v in inst.value_map().items()))
            for inst in engine.instances
        ],
        "states": [
            tuple(sorted((n, s.value) for n, s in inst.state_map().items()))
            for inst in engine.instances
        ],
        "metrics": [
            tuple(getattr(inst.metrics, name) for name in METRIC_FIELDS)
            for inst in engine.instances
        ],
        "events": observer.events,
    }


@pytest.mark.parametrize("code", ["PCE0", "PSE100", "NSC100", "NCE50"])
@pytest.mark.parametrize("failure_prob", [0.0, 0.4])
def test_handbuilt_schemas_with_synthesis_match(code, failure_prob):
    for schema, source_values in (diamond_schema(), chain_schema(length=5, cost=2)):
        reference = _run_handbuilt("reference", schema, source_values, code, failure_prob)
        batched = _run_handbuilt("batched", schema, source_values, code, failure_prob)
        assert batched == reference


# -- service-level closed loop -------------------------------------------------


def _run_closed_loop(
    engine_kind: str,
    backend: str,
    code: str,
    seed: int,
    *,
    dispatch: str = "per-event",
    query_cache: bool = False,
) -> dict:
    """Closed system through the facade: replacement instances start inside
    completion dispatches, exercising same-instant start/completion ties."""
    pattern = scenario_pattern(seed, nb_nodes=20, pct_enabled=60.0, max_cost=5)
    sim = Simulation()
    database = make_database(backend, "coalesced", sim, seed)
    bundle = Backend(
        backend, sim, database, time_unit="units" if backend == "ideal" else "ms"
    )
    service = DecisionService(
        pattern.schema,
        ExecutionConfig.from_code(
            code,
            engine=engine_kind,
            share_results=True,
            dispatch=dispatch,
            query_cache=query_cache,
        ),
        backend=bundle,
    )
    log = service.attach_log()
    service.run_closed(12, concurrency=3, values=pattern.source_values)
    summary = service.summary()
    return {
        "per_instance": [
            (handle.instance_id, handle.done, handle.metrics.work_units,
             handle.metrics.finish_time, tuple(sorted(handle.result().items(), key=repr)))
            for handle in service.handles
        ],
        "summary": (summary.count, summary.total_work, summary.mean_work,
                    summary.mean_elapsed, summary.mean_queries_launched),
        "events": Counter(
            (type(event).__name__,) + tuple(
                getattr(event, name)
                for name in ("instance_id", "attribute", "units", "completed", "shared")
                if hasattr(event, name)
            )
            for event in log.events
        ),
        "end_time": sim.now,
    }


@pytest.mark.parametrize("backend", ["ideal", "profiled"])
@pytest.mark.parametrize("code", ["PSE50", "PSE100"])
def test_closed_loop_service_traces_match(backend: str, code: str):
    for seed in range(3):
        reference = _run_closed_loop("reference", backend, code, seed)
        batched = _run_closed_loop("batched", backend, code, seed)
        assert batched == reference


@pytest.mark.parametrize("query_cache", [False, True], ids=["nocache", "cache"])
@pytest.mark.parametrize("engine_kind", ["reference", "batched"])
@pytest.mark.parametrize("backend", ["ideal", "profiled"])
def test_closed_loop_pooled_matches_per_event(backend, engine_kind, query_cache):
    """The preemption-heavy case: replacement submissions schedule band-0
    starts at the completion instant, which must cut the pooled drain
    short exactly where per-event stepping would interleave them."""
    for seed in range(2):
        per_event = _run_closed_loop(
            engine_kind, backend, "PSE50", seed, query_cache=query_cache
        )
        pooled = _run_closed_loop(
            engine_kind, backend, "PSE50", seed,
            dispatch="pooled", query_cache=query_cache,
        )
        assert pooled == per_event
