"""Multi-target flows and conditions over target attributes."""

import pytest

from repro import (
    Attribute,
    AttributeState,
    Comparison,
    DecisionFlowSchema,
    NULL,
    Op,
    evaluate_schema,
)
from tests._support import q, run_engine


def two_target_schema():
    """Two independent targets; t2 is gated on the source value."""
    return DecisionFlowSchema(
        [
            Attribute("s"),
            Attribute("a", task=q("a", inputs=("s",), value=1, cost=2)),
            Attribute("t1", task=q("t1", inputs=("a",), value=10, cost=1), is_target=True),
            Attribute(
                "t2",
                task=q("t2", inputs=("s",), value=20, cost=4),
                condition=Comparison("s", Op.GT, 5),
                is_target=True,
            ),
        ]
    )


class TestMultipleTargets:
    def test_completion_requires_all_targets(self):
        metrics, instance = run_engine(two_target_schema(), "PCE100", {"s": 9})
        assert instance.cells["t1"].value == 10
        assert instance.cells["t2"].value == 20
        assert metrics.work_units == 7

    def test_disabled_target_counts_as_stable(self):
        metrics, instance = run_engine(two_target_schema(), "PCE100", {"s": 1})
        assert instance.cells["t2"].value is NULL
        assert metrics.work_units == 3  # only a and t1 execute

    def test_reference_semantics_agree(self):
        schema = two_target_schema()
        for s in (1, 9):
            snapshot = evaluate_schema(schema, {"s": s})
            _, instance = run_engine(schema, "PSE100", {"s": s})
            for target in schema.target_names:
                assert instance.cells[target].state is snapshot.states[target]

    def test_one_slow_target_holds_completion(self):
        # t1 is done at t=3; the instance must wait for t2 (cost 4) at t=4.
        metrics, _ = run_engine(two_target_schema(), "PCE100", {"s": 9})
        assert metrics.elapsed == 4.0


class TestConditionsOnTargets:
    def condition_on_target_schema(self):
        """A post-processing attribute enabled by a *target's* value."""
        return DecisionFlowSchema(
            [
                Attribute("s"),
                Attribute("t", task=q("t", inputs=("s",), value=7, cost=1), is_target=True),
                Attribute(
                    "audit",
                    task=q("audit", inputs=("t",), value="logged", cost=2),
                    condition=Comparison("t", Op.GT, 5),
                    is_target=True,
                ),
            ]
        )

    def test_chained_targets_stabilize_in_order(self):
        metrics, instance = run_engine(self.condition_on_target_schema(), "PCE0", {"s": 0})
        assert instance.cells["t"].value == 7
        assert instance.cells["audit"].value == "logged"
        assert metrics.elapsed == 3.0

    def test_audit_disabled_when_threshold_missed(self):
        schema = DecisionFlowSchema(
            [
                Attribute("s"),
                Attribute("t", task=q("t", inputs=("s",), value=3, cost=1), is_target=True),
                Attribute(
                    "audit",
                    task=q("audit", inputs=("t",), value="logged", cost=2),
                    condition=Comparison("t", Op.GT, 5),
                    is_target=True,
                ),
            ]
        )
        metrics, instance = run_engine(schema, "PCE0", {"s": 0})
        assert instance.cells["audit"].state is AttributeState.DISABLED
        assert metrics.work_units == 1
