"""Scheduler: heuristic ordering and the %Permitted selection rule."""

from repro import Attribute, DecisionFlowSchema, Strategy
from repro.core.instance import InstanceRuntime
from repro.core.scheduler import rank_key, select_for_launch
from tests._support import q


def fanout_schema():
    """Four independent queries off the source, then a combining target.

    Depths: a1..a4 = 1; costs 5, 1, 3, 2 — so Earliest ties everything at
    depth 1 (falls back to topo order) while Cheapest orders a2, a4, a3, a1.
    """
    return DecisionFlowSchema(
        [
            Attribute("s"),
            Attribute("a1", task=q("a1", inputs=("s",), value=1, cost=5)),
            Attribute("a2", task=q("a2", inputs=("s",), value=2, cost=1)),
            Attribute("a3", task=q("a3", inputs=("s",), value=3, cost=3)),
            Attribute("a4", task=q("a4", inputs=("s",), value=4, cost=2)),
            Attribute(
                "t", task=q("t", inputs=("a1", "a2", "a3", "a4"), value=0, cost=1), is_target=True
            ),
        ]
    )


def started(code):
    instance = InstanceRuntime(fanout_schema(), Strategy.parse(code), "i", {"s": 0}, 0.0)
    instance.start()
    return instance


def deep_schema():
    """a (depth 1, cost 5) and b (depth 2, cost 1, independent path)."""
    return DecisionFlowSchema(
        [
            Attribute("s"),
            Attribute("x", task=q("x", inputs=("s",), value=0, cost=1)),
            Attribute("a", task=q("a", inputs=("s",), value=1, cost=5)),
            Attribute("b", task=q("b", inputs=("x",), value=2, cost=1)),
            Attribute("t", task=q("t", inputs=("a", "b"), value=0, cost=1), is_target=True),
        ]
    )


class TestRankKey:
    def test_earliest_orders_by_depth(self):
        instance = InstanceRuntime(deep_schema(), Strategy.parse("PCE100"), "i", {"s": 0}, 0.0)
        instance.start()
        assert rank_key(instance, "x") < rank_key(instance, "b")  # depth 1 < 2

    def test_cheapest_orders_by_cost(self):
        instance = started("PCC100")
        order = sorted(["a1", "a2", "a3", "a4"], key=lambda n: rank_key(instance, n))
        assert order == ["a2", "a4", "a3", "a1"]

    def test_earliest_ties_break_by_topo_index(self):
        instance = started("PCE100")
        order = sorted(["a4", "a2", "a3", "a1"], key=lambda n: rank_key(instance, n))
        assert order == ["a1", "a2", "a3", "a4"]


class TestPermittedSelection:
    def test_zero_percent_is_sequential(self):
        instance = started("PCE0")
        first = select_for_launch(instance)
        assert len(first) == 1
        instance.launched.add(first[0])
        instance.inflight[first[0]] = object()
        # One in flight → nothing else may launch at 0%.
        assert select_for_launch(instance) == []

    def test_hundred_percent_launches_all(self):
        instance = started("PCE100")
        assert len(select_for_launch(instance)) == 4

    def test_fifty_percent_half_of_pool(self):
        instance = started("PCE50")
        assert len(select_for_launch(instance)) == 2  # ceil(0.5 * 4)

    def test_target_counts_inflight(self):
        instance = started("PCE50")
        launch = select_for_launch(instance)
        for name in launch:
            instance.launched.add(name)
            instance.inflight[name] = object()
        # pool=2, inflight=2 → target=ceil(0.5*4)=2 → no extra slots.
        assert select_for_launch(instance) == []

    def test_empty_pool(self):
        instance = started("PCE100")
        for name in ("a1", "a2", "a3", "a4"):
            instance.launched.add(name)
        assert select_for_launch(instance) == []

    def test_at_least_one_guarantee(self):
        # Even 0% must pick one task when the instance is idle (the paper's
        # "at least one attribute must be selected").
        instance = started("PCC0")
        assert select_for_launch(instance) == ["a2"]  # cheapest first

    def test_selection_is_deterministic(self):
        first = select_for_launch(started("PSE60"))
        second = select_for_launch(started("PSE60"))
        assert first == second

    def test_shared_waits_do_not_consume_slots(self):
        from repro.core.engine import _SharedWait

        instance = started("PCE50")
        # Two attributes "launched" as zero-cost joins on another instance's
        # queries: they must not count toward the %Permitted in-flight total.
        for name in ("a1", "a2"):
            instance.launched.add(name)
            instance.inflight[name] = _SharedWait(("key", name))
        # pool=2, real inflight=0 → target=ceil(0.5·2)=1 → one real launch.
        assert len(select_for_launch(instance)) == 1

    def test_real_handles_still_consume_slots(self):
        instance = started("PCE50")
        launch = select_for_launch(instance)
        for name in launch:
            instance.launched.add(name)
            instance.inflight[name] = object()  # objects default to counting
        assert select_for_launch(instance) == []
