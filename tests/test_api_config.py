"""ExecutionConfig values and the named-backend registry."""

import pytest

from repro.api import (
    Backend,
    ExecutionConfig,
    available_backends,
    create_backend,
    register_backend,
)
from repro.api import backends as backends_module
from repro.core.strategy import Strategy
from repro.errors import StrategyError
from repro.simdb.database import IdealDatabase, ProfiledDatabase, SimulatedDatabase
from repro.simdb.des import Simulation
from repro.simdb.profiler import DbFunction


class TestExecutionConfig:
    def test_defaults(self):
        config = ExecutionConfig()
        assert config.code == "PCE0"
        assert config.halt_policy == "cancel"
        assert config.share_results is False
        assert config.backend == "ideal"
        assert dict(config.backend_options) == {}

    def test_from_code(self):
        config = ExecutionConfig.from_code("PSE80")
        assert config.strategy == Strategy.parse("PSE80")
        assert config.permitted == 80
        assert config.code == "PSE80"

    def test_from_code_with_strategy_overrides(self):
        config = ExecutionConfig.from_code("PSE80", permitted=40, cancel_unneeded=True)
        assert config.code == "PSE40"
        assert config.cancel_unneeded is True

    def test_from_code_with_config_overrides(self):
        config = ExecutionConfig.from_code(
            "PCE100", share_results=True, halt_policy="drain", backend="bounded"
        )
        assert config.share_results is True
        assert config.halt_policy == "drain"
        assert config.backend == "bounded"

    def test_strategy_string_coerced(self):
        assert ExecutionConfig(strategy="NCC0").code == "NCC0"

    def test_replace_config_fields(self):
        base = ExecutionConfig.from_code("PCE0")
        changed = base.replace(share_results=True, backend="bounded")
        assert changed.share_results and changed.backend == "bounded"
        # The original is untouched (configs are values).
        assert not base.share_results and base.backend == "ideal"

    def test_replace_routes_strategy_fields(self):
        base = ExecutionConfig.from_code("PCE0")
        changed = base.replace(permitted=50, speculative=True)
        assert changed.code == "PSE50"
        assert base.code == "PCE0"

    def test_replace_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown config field"):
            ExecutionConfig().replace(bogus=1)

    def test_bad_halt_policy_rejected(self):
        with pytest.raises(ValueError, match="halt_policy"):
            ExecutionConfig(halt_policy="pause")

    def test_bad_strategy_rejected(self):
        with pytest.raises(StrategyError):
            ExecutionConfig(strategy=42)

    def test_bad_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            ExecutionConfig(backend="")

    def test_backend_options_frozen(self):
        config = ExecutionConfig(backend_options={"seed": 1})
        with pytest.raises(TypeError):
            config.backend_options["seed"] = 2

    def test_immutable(self):
        config = ExecutionConfig()
        with pytest.raises(AttributeError):
            config.halt_policy = "drain"

    def test_repr_mentions_code_and_backend(self):
        text = repr(ExecutionConfig.from_code("PSE80", share_results=True))
        assert "PSE80" in text and "ideal" in text and "shared" in text

    def test_sharding_defaults(self):
        config = ExecutionConfig()
        assert config.shards == 1
        assert config.executor == "serial"

    @pytest.mark.parametrize("shards", [0, -3, 1.5, "4", True])
    def test_bad_shards_rejected_naming_the_value(self, shards):
        with pytest.raises(ValueError, match=f"shards must be an int >= 1, got {shards!r}"):
            ExecutionConfig(shards=shards)

    @pytest.mark.parametrize("executor", ["threads", "", "Serial"])
    def test_bad_executor_rejected_naming_the_value(self, executor):
        with pytest.raises(ValueError, match="executor must be one of"):
            ExecutionConfig(executor=executor)

    def test_placement_defaults_and_validation(self):
        assert ExecutionConfig().placement == "hash"
        assert ExecutionConfig(placement="least-loaded").placement == "least-loaded"
        with pytest.raises(ValueError, match="placement must be one of"):
            ExecutionConfig(placement="round-robin-ish")

    def test_sharding_fields_via_from_code_and_replace(self):
        config = ExecutionConfig.from_code("PSE80", shards=4, executor="process")
        assert (config.shards, config.executor) == (4, "process")
        reduced = config.replace(shards=2, executor="serial")
        assert (reduced.shards, reduced.executor) == (2, "serial")
        assert (config.shards, config.executor) == (4, "process")  # value semantics

    def test_repr_mentions_sharding_when_non_default(self):
        assert "shards=4xprocess" in repr(ExecutionConfig(shards=4, executor="process"))
        assert "shards" not in repr(ExecutionConfig())


class TestBackendRegistry:
    def test_builtins_registered(self):
        assert {"ideal", "bounded", "profiled"} <= set(available_backends())

    def test_ideal_backend(self):
        backend = create_backend("ideal")
        assert isinstance(backend.database, IdealDatabase)
        assert backend.time_unit == "units"
        assert backend.database.sim is backend.simulation

    def test_bounded_backend_with_field_overrides(self):
        backend = create_backend("bounded", num_cpus=2, seed=5)
        assert isinstance(backend.database, SimulatedDatabase)
        assert backend.database.params.num_cpus == 2
        assert backend.time_unit == "ms"

    def test_bounded_rejects_params_plus_overrides(self):
        from repro.simdb.database import DbParams

        with pytest.raises(ValueError, match="not both"):
            create_backend("bounded", params=DbParams(), num_cpus=2)

    def test_profiled_backend_with_explicit_function(self):
        db = DbFunction(((1.0, 10.0), (8.0, 40.0)))
        backend = create_backend("profiled", db_function=db)
        assert isinstance(backend.database, ProfiledDatabase)
        assert backend.database.db_function is db

    def test_fresh_instances_per_create(self):
        first = create_backend("ideal")
        second = create_backend("ideal")
        assert first.simulation is not second.simulation
        assert first.database is not second.database

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            create_backend("quantum")

    def test_register_custom_backend(self):
        def factory(unit_duration=0.5):
            simulation = Simulation()
            return Backend(
                "turbo", simulation, IdealDatabase(simulation, unit_duration=unit_duration)
            )

        register_backend("turbo", factory)
        try:
            backend = create_backend("turbo")
            assert backend.database.unit_duration == 0.5
            assert "turbo" in available_backends()
            with pytest.raises(ValueError, match="already registered"):
                register_backend("turbo", factory)
            register_backend("turbo", factory, replace=True)  # explicit override ok
        finally:
            backends_module._REGISTRY.pop("turbo", None)

    def test_factory_must_return_backend(self):
        register_backend("broken", lambda: object())
        try:
            with pytest.raises(TypeError, match="expected Backend"):
                create_backend("broken")
        finally:
            backends_module._REGISTRY.pop("broken", None)

    def test_backend_validates_simulation_binding(self):
        simulation = Simulation()
        other = Simulation()
        with pytest.raises(ValueError, match="different simulation"):
            Backend("odd", other, IdealDatabase(simulation))

    def test_backend_validates_time_unit(self):
        simulation = Simulation()
        with pytest.raises(ValueError, match="time_unit"):
            Backend("odd", simulation, IdealDatabase(simulation), time_unit="hours")


class TestDispatchAndQueryCache:
    def test_defaults(self):
        config = ExecutionConfig()
        assert config.dispatch == "per-event"
        assert config.query_cache is False

    def test_pooled_dispatch_accepted(self):
        config = ExecutionConfig.from_code("PSE80", dispatch="pooled", query_cache=True)
        assert config.dispatch == "pooled"
        assert config.query_cache is True

    def test_bad_dispatch_rejected(self):
        with pytest.raises(ValueError, match="dispatch"):
            ExecutionConfig(dispatch="batched")

    def test_non_bool_query_cache_rejected(self):
        with pytest.raises(ValueError, match="query_cache"):
            ExecutionConfig(query_cache=4096)

    def test_replace_routes_dispatch_fields(self):
        config = ExecutionConfig().replace(dispatch="pooled", query_cache=True)
        assert (config.dispatch, config.query_cache) == ("pooled", True)

    def test_repr_names_non_defaults(self):
        config = ExecutionConfig(dispatch="pooled", query_cache=True)
        assert "dispatch=pooled" in repr(config)
        assert "query-cache" in repr(config)


class TestObserve:
    def test_defaults_off(self):
        assert ExecutionConfig().observe is False

    def test_armed_via_from_code_and_replace(self):
        assert ExecutionConfig.from_code("PSE80", observe=True).observe is True
        assert ExecutionConfig().replace(observe=True).observe is True

    def test_non_bool_observe_rejected(self):
        with pytest.raises(ValueError, match="observe"):
            ExecutionConfig(observe=1)

    def test_repr_names_observe_when_armed(self):
        assert "observe" in repr(ExecutionConfig(observe=True))
        assert "observe" not in repr(ExecutionConfig())
