"""Deterministic RNG streams."""

import pytest

from repro.simdb.rng import derive_rng, exponential


class TestDeriveRng:
    def test_same_keys_same_stream(self):
        a = derive_rng(7, "x", 1)
        b = derive_rng(7, "x", 1)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_keys_differ(self):
        a = derive_rng(7, "x")
        b = derive_rng(7, "y")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_different_seeds_differ(self):
        assert derive_rng(1, "x").random() != derive_rng(2, "x").random()

    def test_mixed_key_types(self):
        # Keys are stringified: ints, floats, strings all work.
        stream = derive_rng(0, "a", 1, 2.5)
        assert 0.0 <= stream.random() < 1.0


class TestExponential:
    def test_mean_roughly_inverse_rate(self):
        rng = derive_rng(0, "exp")
        samples = [exponential(rng, 0.5) for _ in range(5000)]
        assert sum(samples) / len(samples) == pytest.approx(2.0, rel=0.1)

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            exponential(derive_rng(0), 0.0)
        with pytest.raises(ValueError):
            exponential(derive_rng(0), -1.0)
