"""The package's public surface: exports, version, run_once helper."""

import repro
from repro import PatternParams, Strategy, generate_pattern, run_once


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"__all__ exports missing name {name!r}"

    def test_version(self):
        major, _minor, _patch = repro.__version__.split(".")
        assert int(major) >= 1

    def test_core_reexports(self):
        import repro.core as core

        for name in core.__all__:
            assert hasattr(core, name)

    def test_simdb_reexports(self):
        import repro.simdb as simdb

        for name in simdb.__all__:
            assert hasattr(simdb, name)

    def test_api_reexports(self):
        import repro.api as api

        for name in api.__all__:
            assert hasattr(api, name)

    def test_api_facade_importable_from_top_level(self):
        from repro.api import DecisionService, ExecutionConfig

        assert repro.DecisionService is DecisionService
        assert repro.ExecutionConfig is ExecutionConfig

    def test_analysis_reexports(self):
        import repro.analysis as analysis

        for name in analysis.__all__:
            assert hasattr(analysis, name)

    def test_bench_reexports(self):
        import repro.bench as bench

        for name in bench.__all__:
            assert hasattr(bench, name)


class TestRunOnce:
    def test_run_once_round_trip(self):
        pattern = generate_pattern(PatternParams(nb_nodes=12, nb_rows=2, seed=0))
        metrics = run_once(pattern, Strategy.parse("PCE0"))
        assert metrics.done
        assert metrics.work_units >= pattern.schema["tgt"].cost

    def test_run_once_isolated_between_calls(self):
        pattern = generate_pattern(PatternParams(nb_nodes=12, nb_rows=2, seed=0))
        first = run_once(pattern, Strategy.parse("PSE100"))
        second = run_once(pattern, Strategy.parse("PSE100"))
        assert first.work_units == second.work_units
        assert first.elapsed == second.elapsed
