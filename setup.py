"""Setup shim: enables legacy editable installs (`pip install -e . --no-use-pep517`)
in offline environments where the `wheel` package is unavailable.
All project metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
