"""Figure 6(b): Work vs %enabled for PC*100 / PS*100 / PCE0.

Shape: speculative execution pays a work premium over conservative, and
the premium shrinks as %enabled grows (fewer misfires to waste).
"""

from repro.bench import fig6b


def test_fig6b_work_vs_enabled(benchmark, report_figure, bench_seeds):
    result = benchmark.pedantic(fig6b, args=(bench_seeds,), rounds=1, iterations=1)
    report_figure(result)

    by_enabled = {row[0]: dict(zip(result.headers[1:], row[1:])) for row in result.rows}
    # Speculative does at least as much work as conservative everywhere.
    for values in by_enabled.values():
        assert values["PS*100"] >= values["PC*100"] - 1e-9
    # The *relative* speculative premium shrinks from low to high %enabled.
    premium_low = by_enabled[20]["PS*100"] / by_enabled[20]["PC*100"]
    premium_high = by_enabled[90]["PS*100"] / by_enabled[90]["PC*100"]
    assert premium_high < premium_low
