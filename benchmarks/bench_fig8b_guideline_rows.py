"""Figure 8(b): guideline map minT vs Work while nb_rows varies.

The paper reads this map as e.g. "for a work limit of 40 units the minimal
response time is obtained with PS*100% when the pattern has 2 or 4 rows"
and "no implementation can guarantee a work limit of 25 units with schemas
of 8 rows" — the benchmark reproduces that kind of reading with our
numbers: more rows = more parallelism = lower achievable minT at large
budgets.
"""

from repro.analysis import FrontierStep, min_time_for_budget
from repro.bench import fig8b


def test_fig8b_guideline_rows(benchmark, report_figure, bench_seeds):
    result = benchmark.pedantic(fig8b, args=(bench_seeds,), rounds=1, iterations=1)
    report_figure(result)

    curves: dict[int, list[FrontierStep]] = {}
    for nb_rows, work, min_t, code in result.rows:
        curves.setdefault(nb_rows, []).append(FrontierStep(work, min_t, code))
    assert set(curves) == {1, 2, 4, 8, 16}

    # With a generous budget, wider schemas (more rows) achieve lower minT.
    generous = 1e9
    best_by_rows = {
        rows: min_time_for_budget(steps, generous).time_units
        for rows, steps in curves.items()
    }
    assert best_by_rows[16] < best_by_rows[4] < best_by_rows[1]
