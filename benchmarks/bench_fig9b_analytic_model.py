"""Figure 9(b): analytical model vs open-system measurement at Th = 10/s.

The paper's procedure: profile Db (graph a), read the guideline map
(graph b), multiply into a predicted TimeInSeconds (graph c), and verify
against measurement (graph d); at their operating point PC*100% wins and
the prediction is accurate.  Checks here: the model's recommended strategy
is also the measured winner (or within 15% of it), and predictions for
moderately loaded strategies land within a factor-2 band — the fluid
model's accuracy degrades near saturation, which EXPERIMENTS.md discusses.
"""

import os

from repro.bench import fig9b


def test_fig9b_analytic_model(benchmark, report_figure, bench_seeds):
    n_instances = int(os.environ.get("REPRO_BENCH_FIG9B_INSTANCES", "300"))
    result = benchmark.pedantic(
        fig9b,
        kwargs={"seeds": bench_seeds, "n_instances": n_instances},
        rounds=1,
        iterations=1,
    )
    report_figure(result)

    rows = {row[0]: row for row in result.rows}
    measured = {
        code: row[5] for code, row in rows.items() if row[5] is not None
    }
    predicted = {
        code: row[4] for code, row in rows.items() if row[4] is not None
    }
    assert measured, "no feasible strategies at the studied throughput"

    measured_winner = min(measured, key=measured.get)
    model_winner = min(predicted, key=predicted.get)
    # The model's pick performs within 25% of the true best measurement
    # (open-system measurement noise; the paper reports <10% at its
    # operating point — see EXPERIMENTS.md for the accuracy discussion).
    assert measured[model_winner] <= 1.25 * measured[measured_winner]
