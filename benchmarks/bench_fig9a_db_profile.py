"""Figure 9(a): the empirical Db function (UnitTime vs Gmpl).

Shape: near-flat at the zero-contention service time (~10 ms with the
default calibration) and asymptotically linear once the four CPUs
saturate — the paper's curve spans roughly 10-100 ms over Gmpl 0-35.
"""

from repro.bench import fig9a


def test_fig9a_db_profile(benchmark, report_figure):
    result = benchmark.pedantic(fig9a, rounds=1, iterations=1)
    report_figure(result)

    points = [(row[0], row[1]) for row in result.rows]
    unit_times = [t for _, t in points]
    # Monotone non-decreasing response times (within measurement noise).
    assert all(b >= a - 0.5 for a, b in zip(unit_times, unit_times[1:]))
    # Low-load plateau near the zero-contention service time.
    assert 9.0 <= unit_times[0] <= 13.0
    # Saturated region is several times slower than the plateau.
    assert unit_times[-1] > 4 * unit_times[0]
