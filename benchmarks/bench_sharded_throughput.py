"""Micro-benchmark: sharded sweep throughput (instances/second of host time).

Not a paper figure — this measures the reproduction itself.  The PR-3
ROADMAP baseline showed the batched engine's 10k-instance sweep capped at
~2.6x by the single shared DES calendar (Amdahl: the engine layer no
longer dominates, the calendar does).  The sharded runtime removes that
ceiling by partitioning the population across independent engine + DES +
database shards; with the ``process`` executor, shards drain on separate
cores.

The sweep runs one PSE100 population (ideal backend, batched engine)
three ways — a plain single-shard service, the sharded runtime with the
serial executor (partitioning overhead alone), and the sharded runtime
with the process executor — and reports instances/sec.  The gate: the
**4-shard process executor must deliver >= 2x** the plain batched
service on the 10 000-instance sweep.  Identical merged Work across all
three paths is asserted before any rate is reported.

The speedup is a *hardware* claim — shards drain on separate cores — so
the 2x gate arms only when the host actually exposes >= 4 usable cores
(``sched_getaffinity``; cgroup-pinned CI containers often expose one).
On narrower hosts the sweep still runs end to end and gates on the
overhead tripwire instead, and the recorded figure names the core count
so a baseline read off a laptop is never mistaken for a fleet number.

``--quick`` (CI smoke) shrinks the population and always uses the
tripwire (worker-pool startup dominates small sweeps, so the quick ratio
only proves the machinery works).
"""

from __future__ import annotations

import time

from conftest import usable_cores
from repro import ExecutionConfig, PatternParams, generate_pattern
from repro.api import DecisionService
from repro.bench.figures import FigureResult
from repro.runtime import ShardedDecisionService

#: Full-mode gate (4 shards, process executor, 10k instances, >= 4 cores)
#: and the tripwire used on narrower hosts and in quick mode (worker-pool
#: startup and single-core scheduling must never cost more than this).
FULL_TARGET = 2.0
TRIPWIRE = 0.25

SHARDS = 4
CODE = "PSE100"


def _pattern():
    return generate_pattern(PatternParams(nb_rows=4, pct_enabled=50, seed=7))


def _run_single(pattern, instances: int) -> tuple[float, int]:
    service = DecisionService(
        pattern.schema, ExecutionConfig.from_code(CODE, engine="batched")
    )
    started = time.perf_counter()
    for _ in range(instances):
        service.submit(pattern.source_values)
    service.run()
    host_seconds = time.perf_counter() - started
    assert service.summary().count == instances
    return instances / host_seconds, service.database.total_units


def _run_sharded(pattern, instances: int, shards: int, executor: str) -> tuple[float, int]:
    service = ShardedDecisionService(
        pattern.schema,
        ExecutionConfig.from_code(
            CODE, engine="batched", shards=shards, executor=executor
        ),
    )
    started = time.perf_counter()
    for _ in range(instances):
        service.submit(pattern.source_values)
    service.run()
    host_seconds = time.perf_counter() - started
    assert service.summary().count == instances
    return instances / host_seconds, service.total_units


def measure_sharded_throughput(counts, shards: int = SHARDS) -> FigureResult:
    pattern = _pattern()
    rows = []
    for count in counts:
        single_rate, single_work = _run_single(pattern, count)
        serial_rate, serial_work = _run_sharded(pattern, count, shards, "serial")
        process_rate, process_work = _run_sharded(pattern, count, shards, "process")
        assert serial_work == single_work, "serial sharding changed total Work"
        assert process_work == single_work, "process sharding changed total Work"
        rows.append(
            [
                count,
                single_rate,
                serial_rate,
                process_rate,
                process_rate / single_rate,
            ]
        )
    return FigureResult(
        figure_id="Bench sharded throughput",
        title=(
            f"sharded sweep throughput, {shards} shards vs single batched "
            f"service ({CODE}, ideal backend)"
        ),
        headers=[
            "instances",
            "single inst/s",
            f"{shards}-shard serial inst/s",
            f"{shards}-shard process inst/s",
            "process speedup",
        ],
        rows=rows,
        notes=[
            "identical merged Work across all three paths is asserted before reporting",
            "serial column isolates partitioning overhead (same thread, N calendars)",
            "process column = one worker per shard via multiprocessing",
            f"host cores: {usable_cores()} "
            f"(the >= {FULL_TARGET:g}x gate arms only with >= {SHARDS} cores)",
            f"gate: process speedup >= {FULL_TARGET:g}x at the 10k sweep "
            f"(full mode, >= {SHARDS} cores)",
        ],
    )


def test_sharded_throughput(report_figure, bench_artifact, quick):
    counts = (600,) if quick else (1_000, 10_000)
    result = report_figure(measure_sharded_throughput(counts))
    speedups = {row[0]: row[4] for row in result.rows}
    headline = counts[-1]
    rows = {row[0]: row for row in result.rows}
    full_gate_armed = not quick and usable_cores() >= SHARDS
    target = FULL_TARGET if full_gate_armed else TRIPWIRE
    bench_artifact(
        "bench_sharded_throughput",
        metrics={
            "instances": headline,
            "shards": SHARDS,
            "single_inst_per_s": rows[headline][1],
            "process_inst_per_s": rows[headline][3],
            "speedup": speedups[headline],
        },
        gate={
            "description": (
                f"{SHARDS}-shard process executor >= {target:g}x single-shard"
                + ("" if full_gate_armed else " (tripwire: narrow host or quick mode)")
            ),
            "target": target,
            "measured": speedups[headline],
            "passed": speedups[headline] >= target,
        },
    )
    if quick:
        assert speedups[600] >= TRIPWIRE, (
            f"process executor only {speedups[600]:.2f}x at 600 instances"
        )
    elif usable_cores() >= SHARDS:
        assert speedups[10_000] >= FULL_TARGET, (
            f"process executor only {speedups[10_000]:.2f}x at 10k instances "
            f"on {usable_cores()} cores"
        )
    else:
        # Single-/dual-core host: parallel speedup is physically capped,
        # so gate the machinery overhead instead of the hardware.
        assert speedups[10_000] >= TRIPWIRE, (
            f"process executor only {speedups[10_000]:.2f}x at 10k instances "
            f"(tripwire on a {usable_cores()}-core host)"
        )
