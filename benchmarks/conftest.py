"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one table/figure of the paper and both prints
it and writes it under ``results/``.  Scale knobs (seed count, instance
counts) default to values that keep the full suite at laptop scale; set
``REPRO_BENCH_SEEDS`` to trade time for tighter averages, or pass
``--quick`` for the reduced-size smoke configuration CI runs on every
push (fewer seeds, smaller sweeps, assertions relaxed to regression
tripwires).

The artifact format (schema, validator, writer) lives in
:mod:`repro.bench.artifact`; the ``bench_artifact`` fixture and the
module-level names below are thin wrappers kept for the benchmark
modules and the CI smoke step that import them from here.
"""

from __future__ import annotations

import pytest

from repro.bench.artifact import (
    BENCH_ARTIFACT_KEYS,
    RESULTS_DIR,
    usable_cores,
    validate_bench_artifact,
    write_bench_artifact,
)

__all__ = [
    "BENCH_ARTIFACT_KEYS",
    "RESULTS_DIR",
    "usable_cores",
    "validate_bench_artifact",
]


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help="reduced-size benchmark smoke: fewer seeds and smaller sweeps",
    )


@pytest.fixture(scope="session")
def quick(request) -> bool:
    """True when the suite runs in the reduced-size smoke configuration."""
    return bool(request.config.getoption("--quick"))


@pytest.fixture(scope="session")
def bench_seeds(quick) -> tuple[int, ...]:
    """Pattern seeds each figure averages over."""
    import os

    count = int(os.environ.get("REPRO_BENCH_SEEDS", "2" if quick else "6"))
    return tuple(range(count))


@pytest.fixture
def report_figure(capsys, quick):
    """Print a FigureResult and persist it to results/<figure_id>.txt.

    ``--quick`` runs print only: their reduced sweeps must not clobber
    the recorded full-size baselines under ``results/``.
    """

    def _report(result):
        text = result.render()
        if not quick:
            RESULTS_DIR.mkdir(exist_ok=True)
            slug = (
                result.figure_id.lower()
                .replace(" ", "_")
                .replace("(", "")
                .replace(")", "")
            )
            (RESULTS_DIR / f"{slug}.txt").write_text(text + "\n")
        with capsys.disabled():
            print()
            print(text)
        return result

    return _report


@pytest.fixture
def bench_artifact(quick):
    """Write a machine-readable ``results/BENCH_<name>.json`` artifact.

    Thin wrapper over :func:`repro.bench.artifact.write_bench_artifact`
    that binds the suite's ``--quick`` mode, so quick (CI smoke) runs
    write ``BENCH_<name>_quick.json`` and never clobber the recorded
    full-size baselines.
    """

    def _write(name: str, metrics: dict, gate: dict):
        return write_bench_artifact(name, metrics, gate, quick=quick)

    return _write
