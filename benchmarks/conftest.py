"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one table/figure of the paper and both prints
it and writes it under ``results/``.  Scale knobs (seed count, instance
counts) default to values that keep the full suite at laptop scale; set
``REPRO_BENCH_SEEDS`` to trade time for tighter averages.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def bench_seeds() -> tuple[int, ...]:
    """Pattern seeds each figure averages over."""
    count = int(os.environ.get("REPRO_BENCH_SEEDS", "6"))
    return tuple(range(count))


@pytest.fixture
def report_figure(capsys):
    """Print a FigureResult and persist it to results/<figure_id>.txt."""

    def _report(result):
        RESULTS_DIR.mkdir(exist_ok=True)
        text = result.render()
        slug = (
            result.figure_id.lower()
            .replace(" ", "_")
            .replace("(", "")
            .replace(")", "")
        )
        (RESULTS_DIR / f"{slug}.txt").write_text(text + "\n")
        with capsys.disabled():
            print()
            print(text)
        return result

    return _report
