"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one table/figure of the paper and both prints
it and writes it under ``results/``.  Scale knobs (seed count, instance
counts) default to values that keep the full suite at laptop scale; set
``REPRO_BENCH_SEEDS`` to trade time for tighter averages, or pass
``--quick`` for the reduced-size smoke configuration CI runs on every
push (fewer seeds, smaller sweeps, assertions relaxed to regression
tripwires).
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

#: Keys every BENCH_*.json artifact must carry (CI asserts this schema).
BENCH_ARTIFACT_KEYS = ("bench", "mode", "host_cores", "metrics", "gate")


def usable_cores() -> int:
    """Cores this process may actually run on (affinity-aware)."""
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def validate_bench_artifact(data: dict) -> None:
    """Schema check shared by the CI smoke step and the fixture itself."""
    missing = [key for key in BENCH_ARTIFACT_KEYS if key not in data]
    if missing:
        raise ValueError(f"bench artifact missing keys: {missing}")
    if data["mode"] not in ("full", "quick"):
        raise ValueError(f"bench artifact mode must be full/quick, got {data['mode']!r}")
    if not isinstance(data["metrics"], dict) or not data["metrics"]:
        raise ValueError("bench artifact metrics must be a non-empty object")
    gate = data["gate"]
    if not isinstance(gate, dict) or "passed" not in gate:
        raise ValueError("bench artifact gate must carry a 'passed' flag")


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help="reduced-size benchmark smoke: fewer seeds and smaller sweeps",
    )


@pytest.fixture(scope="session")
def quick(request) -> bool:
    """True when the suite runs in the reduced-size smoke configuration."""
    return bool(request.config.getoption("--quick"))


@pytest.fixture(scope="session")
def bench_seeds(quick) -> tuple[int, ...]:
    """Pattern seeds each figure averages over."""
    count = int(os.environ.get("REPRO_BENCH_SEEDS", "2" if quick else "6"))
    return tuple(range(count))


@pytest.fixture
def report_figure(capsys, quick):
    """Print a FigureResult and persist it to results/<figure_id>.txt.

    ``--quick`` runs print only: their reduced sweeps must not clobber
    the recorded full-size baselines under ``results/``.
    """

    def _report(result):
        text = result.render()
        if not quick:
            RESULTS_DIR.mkdir(exist_ok=True)
            slug = (
                result.figure_id.lower()
                .replace(" ", "_")
                .replace("(", "")
                .replace(")", "")
            )
            (RESULTS_DIR / f"{slug}.txt").write_text(text + "\n")
        with capsys.disabled():
            print()
            print(text)
        return result

    return _report


@pytest.fixture
def bench_artifact(quick):
    """Write a machine-readable ``results/BENCH_<name>.json`` artifact.

    The throughput/event-rate benchmarks call this next to their
    ``results/*.txt`` tables so the perf trajectory is trackable across
    PRs: host cores, the headline metrics (inst/s, speedups, ...), and
    the gate outcome.  Quick (CI smoke) runs write
    ``BENCH_<name>_quick.json`` so reduced sweeps never clobber the
    recorded full-size baselines.
    """

    def _write(name: str, metrics: dict, gate: dict) -> Path:
        payload = {
            "bench": name,
            "mode": "quick" if quick else "full",
            "host_cores": usable_cores(),
            "platform": platform.platform(),
            "python": platform.python_version(),
            "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "metrics": metrics,
            "gate": gate,
        }
        validate_bench_artifact(payload)
        RESULTS_DIR.mkdir(exist_ok=True)
        suffix = "_quick" if quick else ""
        path = RESULTS_DIR / f"BENCH_{name}{suffix}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return path

    return _write
