"""Ablation A3: closed- vs open-loop Db profiling for model accuracy.

The analytical model interpolates an empirical Db function.  Profiling it
closed-loop (fixed Gmpl, as Figure 9(a) suggests) misses open-system
queueing variance and yields optimistic predictions; open-loop profiling
(Poisson unit stream) folds that variance in.
"""

from repro.bench import ablation_profile_mode


def test_ablation_profile_mode(benchmark, report_figure, bench_seeds):
    result = benchmark.pedantic(
        ablation_profile_mode, args=(bench_seeds,), rounds=1, iterations=1
    )
    report_figure(result)

    for _code, _measured, _closed_ms, closed_err, _open_ms, open_err in result.rows:
        # Open-loop profiling must not be (much) worse than closed-loop.
        assert open_err <= closed_err + 5.0
