"""Figure 5(b): Work vs nb_rows for PCC0/PCE0/NCC0/NCE0 (%enabled = 75)."""

from repro.bench import fig5b


def test_fig5b_work_vs_rows(benchmark, report_figure, bench_seeds):
    result = benchmark.pedantic(fig5b, args=(bench_seeds,), rounds=1, iterations=1)
    report_figure(result)

    # The P cluster stays below the N cluster across every row count.
    for row in result.rows:
        values = dict(zip(result.headers[1:], row[1:]))
        assert max(values["PCC0"], values["PCE0"]) <= min(values["NCC0"], values["NCE0"]) + 1e-9
