"""Figure 6(a): TimeInUnits vs %enabled for PC*100 / PS*100 / PCE0.

Shape: maximal parallelism cuts response time far below the sequential
PCE0 (the paper reports ~60% at %enabled = 25), and the speculative
strategy shaves a little more off the conservative one.
"""

from repro.bench import fig6a


def test_fig6a_time_vs_enabled(benchmark, report_figure, bench_seeds):
    result = benchmark.pedantic(fig6a, args=(bench_seeds,), rounds=1, iterations=1)
    report_figure(result)

    by_enabled = {row[0]: dict(zip(result.headers[1:], row[1:])) for row in result.rows}
    # Parallelism wins big at low-to-mid %enabled (the paper cites ~60%
    # reduction at %enabled=25; our sweep samples 20 and 30).
    assert by_enabled[20]["PC*100"] < 0.7 * by_enabled[20]["PCE0"]
    assert by_enabled[30]["PC*100"] < 0.7 * by_enabled[30]["PCE0"]
    # Speculative response time never exceeds conservative by much.
    for row in result.rows:
        values = dict(zip(result.headers[1:], row[1:]))
        assert values["PS*100"] <= values["PC*100"] * 1.10 + 1e-9
