"""Figure 5(a): Work vs %enabled for PCC0/PCE0/NCC0/NCE0 (nb_rows = 4).

Shape checks (the paper's reading of the figure):
* the P strategies form a cluster strictly below the N cluster at low
  %enabled, converging at %enabled = 100;
* N work is roughly linear in %enabled;
* P's relative saving is largest at %enabled = 10.
"""

from repro.bench import fig5a


def test_fig5a_work_vs_enabled(benchmark, report_figure, bench_seeds):
    result = benchmark.pedantic(fig5a, args=(bench_seeds,), rounds=1, iterations=1)
    report_figure(result)

    by_enabled = {row[0]: dict(zip(result.headers[1:], row[1:])) for row in result.rows}
    low, full = by_enabled[10], by_enabled[100]

    # All strategies converge when everything is enabled.
    assert max(full.values()) - min(full.values()) < 1e-9
    # P saves substantially over N at low %enabled (paper: ~60%).
    p_low = min(low["PCC0"], low["PCE0"])
    n_low = min(low["NCC0"], low["NCE0"])
    assert p_low < 0.8 * n_low
    # N work grows with %enabled (roughly linear in enabled fraction).
    n_curve = [by_enabled[e]["NCE0"] for e in range(10, 101, 10)]
    assert all(a <= b + 1e-9 for a, b in zip(n_curve, n_curve[1:]))
