"""Figure 7(b): Work vs %Permitted for PCC*/PCE*/PSC*/PSE*.

Shape: Earliest and Cheapest consume about the same work at every
parallelism level; the speculative families sit above the conservative
ones.
"""

from repro.bench import fig7b


def test_fig7b_work_vs_parallelism(benchmark, report_figure, bench_seeds):
    result = benchmark.pedantic(fig7b, args=(bench_seeds,), rounds=1, iterations=1)
    report_figure(result)

    for row in result.rows:
        values = dict(zip(result.headers[1:], row[1:]))
        # Speculative never does less work than its conservative sibling.
        assert values["PSE*"] >= values["PCE*"] - 1e-9
        assert values["PSC*"] >= values["PCC*"] - 1e-9
        # E and C heuristics are work-comparable (paper: within ~10%).
        assert abs(values["PCE*"] - values["PCC*"]) <= 0.25 * values["PCC*"] + 2.0
