"""Micro-benchmark: instant-pooled dispatch + query share cache throughput.

Not a paper figure — this measures the reproduction itself.  The PR-4
ROADMAP baseline left **per-event Python dispatch** as the single-shard
constant: at 10k instances the batched engine spends its time stepping
the DES calendar one event at a time and re-issuing the same queries
instance after instance.  This PR attacks both halves:

* ``dispatch="pooled"`` — :meth:`Simulation.step_instant` pops every
  event sharing the ``(time, priority band)`` frontier in one pass and
  the engine consumes the pool in one call (identical trace; the
  per-event step costs are paid once per instant);
* ``query_cache=True`` — the :class:`QueryShareCache` coalesces
  identical in-flight queries into one database dispatch with fan-out
  delivery, and memo-serves re-issued ones, so an overlapping sweep
  issues each distinct query once per shard instead of once per instance.

The sweep runs one PSE100 population (ideal backend, batched engine,
single shard — exactly the PR-4 baseline configuration) four ways and
reports instances/sec: per-event without cache (the baseline), pooled
alone, cache alone, and pooled + cache.  The gate: **pooled + cache must
deliver >= 1.5x** the baseline on the 10 000-instance sweep.  Identical
per-instance decision values across all four paths are asserted before
any rate is reported (db work legitimately shrinks with the cache — that
is the point — so Work is compared only between the two cache-less
paths).

``--quick`` (CI smoke) shrinks the population and relaxes the gate to a
regression tripwire; both modes write a machine-readable
``results/BENCH_*.json`` artifact.
"""

from __future__ import annotations

import time

from conftest import usable_cores
from repro import ExecutionConfig, PatternParams, generate_pattern
from repro.api import DecisionService
from repro.bench.figures import FigureResult

#: Full-mode gate (10k instances): pooled dispatch + query cache vs the
#: PR-4 single-shard per-event baseline.  Quick mode uses the tripwire.
FULL_TARGET = 1.5
TRIPWIRE = 1.1

CODE = "PSE100"

VARIANTS = (
    ("per-event", False, "baseline (per-event)"),
    ("pooled", False, "pooled"),
    ("per-event", True, "cache"),
    ("pooled", True, "pooled+cache"),
)


def _pattern():
    return generate_pattern(PatternParams(nb_rows=4, pct_enabled=50, seed=7))


def _sweep(pattern, instances: int, dispatch: str, query_cache: bool):
    service = DecisionService(
        pattern.schema,
        ExecutionConfig.from_code(
            CODE, engine="batched", dispatch=dispatch, query_cache=query_cache
        ),
    )
    started = time.perf_counter()
    for _ in range(instances):
        service.submit(pattern.source_values)
    service.run()
    host_seconds = time.perf_counter() - started
    summary = service.summary()
    assert summary.count == instances
    values = frozenset(
        tuple(sorted((k, repr(v)) for k, v in h.instance.value_map().items()))
        for h in service.handles
    )
    if dispatch == "pooled":
        assert service.engine.pooled_batches > 0, "pooled dispatch never pooled"
    return {
        "rate": instances / host_seconds,
        "db_units": service.database.total_units,
        "values": values,
        "cache_misses": summary.query_cache_misses,
        "cache_shared": summary.query_cache_hits + summary.query_cache_coalesced,
        "pooled_batches": service.engine.pooled_batches,
        "pooled_events": service.engine.pooled_events,
    }


def measure_pooled_dispatch(counts) -> tuple[FigureResult, dict]:
    """Returns the rendered figure plus the headline sweep's pool stats
    (instants pooled / events per pool for the pooled+cache run)."""
    pattern = _pattern()
    rows = []
    pool_stats: dict = {}
    for count in counts:
        runs = {
            label: _sweep(pattern, count, dispatch, cache)
            for dispatch, cache, label in VARIANTS
        }
        baseline = runs["baseline (per-event)"]
        assert runs["pooled"]["db_units"] == baseline["db_units"], (
            "pooled dispatch changed db work"
        )
        for label, run in runs.items():
            assert run["values"] == baseline["values"], (
                f"{label} changed decision values"
            )
        assert runs["pooled+cache"]["db_units"] < baseline["db_units"], (
            "the cache did not remove db work on an overlapping sweep"
        )
        rows.append(
            [
                count,
                baseline["rate"],
                runs["pooled"]["rate"],
                runs["cache"]["rate"],
                runs["pooled+cache"]["rate"],
                runs["pooled+cache"]["rate"] / baseline["rate"],
            ]
        )
        combined = runs["pooled+cache"]
        pool_stats = {
            "pooled_batches": combined["pooled_batches"],
            "pooled_events": combined["pooled_events"],
            "mean_pool_size": combined["pooled_events"] / max(combined["pooled_batches"], 1),
        }
    figure = FigureResult(
        figure_id="Bench pooled dispatch",
        title=(
            f"pooled dispatch + query share cache vs per-event baseline "
            f"({CODE}, ideal backend, batched engine, single shard)"
        ),
        headers=[
            "instances",
            "baseline inst/s",
            "pooled inst/s",
            "cache inst/s",
            "pooled+cache inst/s",
            "combined speedup",
        ],
        rows=rows,
        notes=[
            "identical per-instance decision values across all four paths asserted",
            "identical db work asserted between the two cache-less paths",
            "cache = one db dispatch per distinct query; fan-out completions cost 0 units",
            f"host cores: {usable_cores()}",
            f"gate: pooled+cache >= {FULL_TARGET:g}x baseline at the 10k sweep (full mode)",
        ],
    )
    return figure, pool_stats


def test_pooled_dispatch_throughput(report_figure, bench_artifact, quick):
    counts = (600,) if quick else (1_000, 10_000)
    figure, pool_stats = measure_pooled_dispatch(counts)
    result = report_figure(figure)
    headline = counts[-1]
    by_count = {row[0]: row for row in result.rows}
    speedup = by_count[headline][5]
    target = TRIPWIRE if quick else FULL_TARGET
    bench_artifact(
        "bench_pooled_dispatch",
        metrics={
            "instances": headline,
            "baseline_inst_per_s": by_count[headline][1],
            "pooled_inst_per_s": by_count[headline][2],
            "cache_inst_per_s": by_count[headline][3],
            "pooled_cache_inst_per_s": by_count[headline][4],
            "speedup": speedup,
            **pool_stats,
        },
        gate={
            "description": f"pooled+cache >= {target:g}x per-event baseline",
            "target": target,
            "measured": speedup,
            "passed": speedup >= target,
        },
    )
    assert speedup >= target, (
        f"pooled+cache only {speedup:.2f}x the per-event baseline at "
        f"{headline} instances (target {target:g}x)"
    )
