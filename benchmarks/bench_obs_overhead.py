"""Micro-benchmark: the cost of arming the observability layer.

Not a paper figure — this gates the repro.obs design constraint.  The
metrics registry and span tracer thread through the batched engine's
hottest paths (scheduling rounds, query lifecycle, pooled DES drains),
so the layer is only acceptable if (a) disarmed it is one attribute
test per guard, and (b) armed it stays cheap enough for always-on use
in the daemon.

The sweep runs the PR-7 cohort headline configuration (PSE100, ideal
backend, batched engine, pooled dispatch, query cache) twice per round
— ``observe=False`` then ``observe=True`` — interleaved over several
rounds so clock drift and allocator state hit both sides equally, and
keeps each side's best rate.  Identical per-instance decision values
and identical database work are asserted between the two paths before
any rate is reported: arming must be invisible to execution, not just
cheap.

The gate is the **armed/disarmed slowdown ratio** (disarmed rate over
armed rate).  ``--quick`` (CI smoke) shrinks the population, relaxes
the gate to a regression tripwire, and writes the schema-checked
``results/ci/BENCH_obs_overhead_quick.json`` artifact CI asserts.
"""

from __future__ import annotations

import time

from conftest import usable_cores
from repro import ExecutionConfig, PatternParams, generate_pattern
from repro.api import DecisionService
from repro.bench.figures import FigureResult

#: Armed may cost at most this multiple of disarmed (full mode); quick
#: CI runs use the tripwire to absorb shared-runner noise.  Armed runs
#: record every scheduling round, query, and pooled drain into the
#: flight recorder (~65 events/instance on this sweep), so the budget
#: is a tracing budget, not a no-op budget — the disarmed ≤5% claim is
#: enforced by the cohort bench tripwire staying green.
FULL_TARGET = 1.5
TRIPWIRE = 2.0

CODE = "PSE100"
ROUNDS = 3


def _pattern():
    return generate_pattern(PatternParams(nb_rows=4, pct_enabled=50, seed=7))


def _sweep(pattern, instances: int, observe: bool):
    service = DecisionService(
        pattern.schema,
        ExecutionConfig.from_code(
            CODE,
            engine="batched",
            dispatch="pooled",
            query_cache=True,
            observe=observe,
        ),
    )
    started = time.perf_counter()
    for _ in range(instances):
        service.submit(pattern.source_values)
    service.run()
    host_seconds = time.perf_counter() - started
    assert service.summary().count == instances
    values = frozenset(
        tuple(sorted((k, repr(v)) for k, v in h.instance.value_map().items()))
        for h in service.handles
    )
    spans = len(service.obs.tracer)
    assert (spans > 0) == observe, "tracer armed state out of step with config"
    return {
        "rate": instances / host_seconds,
        "db_units": service.database.total_units,
        "values": values,
        "spans": spans,
    }


def measure_overhead(instances: int) -> tuple[FigureResult, dict]:
    """Best-of-N interleaved disarmed/armed rates plus the gate ratio."""
    pattern = _pattern()
    best = {"disarmed": 0.0, "armed": 0.0}
    spans = 0
    for _ in range(ROUNDS):
        disarmed = _sweep(pattern, instances, observe=False)
        armed = _sweep(pattern, instances, observe=True)
        assert armed["values"] == disarmed["values"], (
            "arming observability changed decision values"
        )
        assert armed["db_units"] == disarmed["db_units"], (
            "arming observability changed db work"
        )
        best["disarmed"] = max(best["disarmed"], disarmed["rate"])
        best["armed"] = max(best["armed"], armed["rate"])
        spans = armed["spans"]
    ratio = best["disarmed"] / best["armed"]
    figure = FigureResult(
        figure_id="Bench obs overhead",
        title=(
            f"observability armed vs disarmed "
            f"({CODE}, ideal backend, batched engine, pooled+cache)"
        ),
        headers=["instances", "disarmed inst/s", "armed inst/s", "slowdown"],
        rows=[[instances, best["disarmed"], best["armed"], ratio]],
        notes=[
            "identical per-instance decision values asserted between both paths",
            "identical db work asserted between both paths",
            f"best of {ROUNDS} interleaved rounds per side",
            f"armed flight recorder captured {spans} span/instant events",
            f"host cores: {usable_cores()}",
            f"gate: armed slowdown <= {FULL_TARGET:g}x disarmed (full mode)",
        ],
    )
    return figure, {"ratio": ratio, "spans": spans, **best}


def test_observability_overhead(report_figure, bench_artifact, quick):
    instances = 600 if quick else 5_000
    figure, stats = measure_overhead(instances)
    report_figure(figure)
    target = TRIPWIRE if quick else FULL_TARGET
    bench_artifact(
        "obs_overhead",
        metrics={
            "instances": instances,
            "disarmed_inst_per_s": stats["disarmed"],
            "armed_inst_per_s": stats["armed"],
            "slowdown": stats["ratio"],
            "trace_events": stats["spans"],
        },
        gate={
            "description": f"armed slowdown <= {target:g}x disarmed",
            "target": target,
            "measured": stats["ratio"],
            "passed": stats["ratio"] <= target,
        },
    )
    assert stats["ratio"] <= target, (
        f"armed observability is {stats['ratio']:.2f}x slower than disarmed "
        f"at {instances} instances (target <= {target:g}x)"
    )
