"""Ablation A4 (extension): cross-instance result sharing.

The paper's conclusions pose "how to optimize when several decision flows
will be executed based on overlapping data".  The engine's shared result
table answers repeated queries once; this benchmark quantifies the
database-load and response-time effect as the population of distinct
customer profiles grows.
"""

from repro.bench import ablation_sharing


def test_ablation_sharing(benchmark, report_figure):
    result = benchmark.pedantic(ablation_sharing, rounds=1, iterations=1)
    report_figure(result)

    for _profiles, units, units_shared, ms, ms_shared in result.rows:
        # Sharing must never increase database work, and with overlapping
        # data it must strictly reduce it.
        assert units_shared < units
        # Lower database load cannot make mean response worse.
        assert ms_shared <= ms + 1.0
    # Gains shrink as profiles diversify (less overlap to exploit).
    shared_units = [row[2] for row in result.rows]
    assert shared_units == sorted(shared_units)
