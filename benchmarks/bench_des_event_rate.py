"""Micro-benchmark: executed DES events per unit of work, by kernel.

Not a paper figure — this measures the reproduction's simulation substrate
itself.  The per-unit kernel pays one heap event per unit of processing,
so a cost-30 query costs 30 events; the coalesced kernel schedules one
completion event per query (plus an occasional reschedule on Gmpl changes
for the profiled server).  This benchmark runs the same cost>=20 workload
through both kernels of both databases and reports executed events, the
event rate per query, and the host-time ratio — the headline number that
makes million-instance capacity sweeps feasible.

``REPRO_BENCH_EVENT_INSTANCES`` scales the run (default 100; CI uses a
reduced configuration).
"""

from __future__ import annotations

import os
import time

from repro import Engine, Simulation, Strategy
from repro.bench.figures import FigureResult
from repro.simdb.database import IdealDatabase, ProfiledDatabase
from repro.simdb.profiler import DbFunction
from repro.workload import PatternParams, generate_pattern

DB_FUNCTION = DbFunction(((1.0, 10.0), (2.0, 14.0), (4.0, 21.0), (8.0, 33.0), (16.0, 61.0)))


def _run(backend: str, kernel: str, instances: int):
    pattern = generate_pattern(
        PatternParams(nb_nodes=24, nb_rows=4, pct_enabled=60.0, min_cost=20, max_cost=40, seed=3)
    )
    sim = Simulation()
    if backend == "ideal":
        database = IdealDatabase(sim, kernel=kernel)
        spacing = 4.0
    else:
        # Spacing keeps Gmpl inside the profiled range (~<= 16): beyond it
        # the Db curve is pure extrapolation and no kernel is meaningful.
        database = ProfiledDatabase(sim, DB_FUNCTION, kernel=kernel)
        spacing = 4000.0
    engine = Engine(pattern.schema, Strategy.parse("PSE80"), database)
    for index in range(instances):
        engine.submit_instance(pattern.source_values, at=index * spacing)
    started = time.perf_counter()
    sim.run()
    host_seconds = time.perf_counter() - started
    queries = database.queries_completed + database.queries_cancelled
    return {
        "events": sim.events_executed,
        "events_per_query": sim.events_executed / queries,
        "total_units": database.total_units,
        "host_seconds": host_seconds,
    }


def _run_db_only(backend: str, kernel: str, instances: int):
    """The substrate alone: an open stream of cost-30 queries, no engine."""
    queries = instances * 16
    sim = Simulation()
    if backend == "ideal":
        database = IdealDatabase(sim, kernel=kernel)
        spacing = 8.0
    else:
        database = ProfiledDatabase(sim, DB_FUNCTION, kernel=kernel)
        spacing = 120.0
    for index in range(queries):
        sim.schedule_at(index * spacing, lambda: database.submit(30, lambda p, c: None))
    started = time.perf_counter()
    sim.run()
    host_seconds = time.perf_counter() - started
    return {
        "events": sim.events_executed,
        "events_per_query": sim.events_executed / queries,
        "total_units": database.total_units,
        "host_seconds": host_seconds,
    }


def measure_event_rate(instances: int | None = None) -> FigureResult:
    instances = instances or int(os.environ.get("REPRO_BENCH_EVENT_INSTANCES", "100"))
    rows = []
    for backend, runner in (
        ("ideal", _run),
        ("profiled", _run),
        ("ideal db-only", _run_db_only),
        ("profiled db-only", _run_db_only),
    ):
        per_unit = runner(backend.split()[0], "per-unit", instances)
        coalesced = runner(backend.split()[0], "coalesced", instances)
        assert coalesced["total_units"] == per_unit["total_units"], "kernels disagree on Work"
        rows.append(
            [
                backend,
                per_unit["events"],
                coalesced["events"],
                per_unit["events"] / coalesced["events"],
                per_unit["events_per_query"],
                coalesced["events_per_query"],
                per_unit["host_seconds"] / max(coalesced["host_seconds"], 1e-9),
            ]
        )
    return FigureResult(
        figure_id="Bench event rate",
        title=f"executed DES events, per-unit vs coalesced kernel ({instances} instances, cost 20-40)",
        headers=[
            "backend",
            "events per-unit",
            "events coalesced",
            "event ratio",
            "ev/query per-unit",
            "ev/query coalesced",
            "host speedup",
        ],
        rows=rows,
        notes=[
            "identical Work under both kernels is asserted before reporting",
            "event ratio is the paper-level win: heap operations per completed query",
        ],
    )


def test_event_rate(benchmark, report_figure, bench_artifact, quick):
    if quick and "REPRO_BENCH_EVENT_INSTANCES" not in os.environ:
        instances = 30
    else:
        instances = None
    result = benchmark.pedantic(
        measure_event_rate, args=(instances,), rounds=1, iterations=1
    )
    report_figure(result)
    worst_ratio = min(row[3] for row in result.rows)
    bench_artifact(
        "bench_des_event_rate",
        metrics={
            backend: {"event_ratio": ratio, "events_coalesced": coalesced}
            for backend, _per_unit, coalesced, ratio, *_ in result.rows
        },
        gate={
            "description": ">= 5x fewer executed events on every backend",
            "target": 5.0,
            "measured": worst_ratio,
            "passed": worst_ratio >= 5.0,
        },
    )
    for backend, per_unit_events, coalesced_events, ratio, *_ in result.rows:
        # Acceptance bar: >= 5x fewer executed events on a cost>=20 workload.
        assert ratio >= 5.0, f"{backend}: only {ratio:.1f}x fewer events"
        assert coalesced_events < per_unit_events
