"""Figure 8(a): guideline map minT vs Work while %enabled varies (nb_rows=4).

Each frontier row reads: with a Work budget >= the row's Work, the row's
strategy achieves response time minT.  Structural checks: within each
%enabled curve, minT strictly decreases as the budget grows.
"""

from repro.bench import fig8a


def test_fig8a_guideline_enabled(benchmark, report_figure, bench_seeds):
    result = benchmark.pedantic(fig8a, args=(bench_seeds,), rounds=1, iterations=1)
    report_figure(result)

    curves: dict[int, list[tuple[float, float]]] = {}
    for enabled, work, min_t, _code in result.rows:
        curves.setdefault(enabled, []).append((work, min_t))
    assert set(curves) == {10, 25, 50, 75, 100}
    for points in curves.values():
        works = [w for w, _ in points]
        times = [t for _, t in points]
        assert works == sorted(works)
        assert all(a > b for a, b in zip(times, times[1:])) or len(times) == 1
