"""Ablation A2 (extension): cancel in-flight queries that became unneeded.

Not in the paper — its backward propagation only keeps unneeded tasks out
of the candidate pool.  Cancelling already-launched unneeded queries can
reclaim database capacity under speculative strategies without hurting
response time (results are discarded either way).
"""

from repro.bench import ablation_cancel_unneeded


def test_ablation_cancel_unneeded(benchmark, report_figure, bench_seeds):
    result = benchmark.pedantic(
        ablation_cancel_unneeded, args=(bench_seeds,), rounds=1, iterations=1
    )
    report_figure(result)

    for _code, work, work_cancel, time_units, time_cancel in result.rows:
        # Cancelling unneeded work must not slow the instance down...
        assert time_cancel <= time_units + 1e-9
        # ...and must not *add* work.
        assert work_cancel <= work + 1e-9
