"""Table 1: simulation parameters, regenerated from the code's defaults."""

from repro.bench import table1


def test_table1_parameters(benchmark, report_figure):
    result = benchmark.pedantic(table1, rounds=1, iterations=1)
    report_figure(result)
    assert len(result.rows) == 16  # Table 1 has sixteen parameter rows
