"""Load benchmark: the decision-service daemon under sustained overload.

Not a paper figure — this gates the :mod:`repro.server` subsystem.  A
pacing client drives arrivals at **~2× the daemon's measured drain rate**
against an in-process :class:`~repro.server.ServerDaemon` (the exact
object the HTTP layer fronts; the transport is bypassed so the benchmark
measures the daemon, not socket overhead).  Under 2× overload the
admission controller must hold the line:

* **bounded queue** — the arrival queue never exceeds the configured
  high-water mark (overflow is rejected with a retry hint, never buffered);
* **zero accepted-instance loss across a mid-run restart** — halfway
  through, the daemon is shut down gracefully (drain + SQLite flush) and
  a fresh daemon is started on the same database file; every instance
  accepted before the restart must still resolve ``done``, and every one
  accepted after must complete;
* **latency is recorded** — p50/p99 wall-clock submit-to-decision
  latency over all accepted instances goes into the schema-checked
  ``results/BENCH_bench_server_load.json`` artifact.

The gate passes only if the offered rate actually reached >= 2x the
calibrated drain rate, the queue stayed bounded, and no accepted
instance was lost.  ``--quick`` (CI smoke) shrinks the calibration sweep
and load-phase durations; both modes run the full protocol including the
restart.
"""

from __future__ import annotations

import time

from conftest import usable_cores
from repro import ExecutionConfig, PatternParams, generate_pattern
from repro.bench.figures import FigureResult
from repro.server import ServerDaemon

CODE = "PSE100"
HIGH_WATER = 200

#: Overload factor the pacing client targets (the gate requires >= 2.0
#: measured; the client aims a little above so scheduling jitter cannot
#: shave the measured ratio under the line).
OVERLOAD = 2.2


def _pattern():
    return generate_pattern(PatternParams(nb_rows=4, pct_enabled=50, seed=7))


def _config():
    # The fastest single-shard recipe the repo has (PR 5's headline):
    # batched engine + pooled dispatch + query share cache.
    return ExecutionConfig.from_code(
        CODE, engine="batched", dispatch="pooled", query_cache=True
    )


def _daemon(pattern, db_path) -> ServerDaemon:
    return ServerDaemon(
        pattern.schema,
        _config(),
        db=str(db_path),
        high_water=HIGH_WATER,
        default_values=pattern.source_values,
    )


def _calibrate(daemon: ServerDaemon, instances: int) -> float:
    """Measured drain rate (inst/s wall): burst-submit, wait, divide."""
    started = time.perf_counter()
    remaining = instances
    while remaining:
        chunk = min(remaining, HIGH_WATER)
        result = daemon.submit_many([None] * chunk)
        if result.ok:
            remaining -= chunk
        else:
            time.sleep(result.retry_after or 0.05)
        daemon.wait_idle(60.0)
    return instances / (time.perf_counter() - started)


def _drive(daemon: ServerDaemon, rate: float, seconds: float, tick: float = 0.02):
    """Offer arrivals at *rate*/s for *seconds*; returns (offered, accepted_ids).

    Burst sizes derive from elapsed wall time, not a fixed per-tick
    quantum, so slow iterations (GIL contention with the drain loop,
    oversleeping) are repaid by larger bursts and the offered rate holds.
    """
    offered = 0
    accepted: list[str] = []
    start = time.perf_counter()
    while True:
        elapsed = time.perf_counter() - start
        if elapsed >= seconds:
            break
        burst = int(rate * min(elapsed + tick, seconds)) - offered
        if burst > 0:
            offered += burst
            result = daemon.submit_many([None] * burst)
            if result.ok:
                accepted.extend(result.accepted)
        time.sleep(tick)
    return offered, accepted


def _resolved_done(daemon: ServerDaemon, ids: list[str]) -> tuple[int, list[float]]:
    """(count resolved done, their wall latencies in seconds)."""
    done = 0
    latencies = []
    for instance_id in ids:
        payload = daemon.get(instance_id)
        if payload is not None and payload["status"] == "done":
            done += 1
            latencies.append(payload["latency"])
    return done, latencies


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, round(q * (len(sorted_values) - 1)))
    return sorted_values[int(index)]


def test_server_load(report_figure, bench_artifact, quick, tmp_path):
    pattern = _pattern()
    db_path = tmp_path / "bench_server_load.sqlite"
    calibration_n = 200 if quick else 1_000
    phase_seconds = 1.0 if quick else 3.0

    # -- calibrate the drain rate on a throwaway daemon state ----------------
    daemon = _daemon(pattern, db_path)
    drain_rate = _calibrate(daemon, calibration_n)
    offered_rate = OVERLOAD * drain_rate

    # -- phase A: sustained 2x overload, then a graceful mid-run restart -----
    offered_a, accepted_a = _drive(daemon, offered_rate, phase_seconds)
    stats_a = daemon.server_stats()
    assert daemon.shutdown(), "daemon failed to drain on shutdown"

    # -- restart against the same SQLite file --------------------------------
    daemon2 = _daemon(pattern, db_path)
    done_a, latencies_a = _resolved_done(daemon2, accepted_a)
    assert done_a == len(accepted_a), (
        f"lost {len(accepted_a) - done_a} of {len(accepted_a)} accepted "
        "instances across the restart"
    )

    # -- phase B: keep the pressure on the restarted daemon ------------------
    offered_b, accepted_b = _drive(daemon2, offered_rate, phase_seconds)
    daemon2.wait_idle(60.0)
    done_b, latencies_b = _resolved_done(daemon2, accepted_b)
    assert done_b == len(accepted_b), (
        f"lost {len(accepted_b) - done_b} of {len(accepted_b)} accepted "
        "instances after the restart"
    )
    stats_b = daemon2.server_stats()
    assert daemon2.shutdown(), "restarted daemon failed to drain on shutdown"

    # -- verdicts -------------------------------------------------------------
    offered = offered_a + offered_b
    accepted = len(accepted_a) + len(accepted_b)
    measured_rate = offered / (2 * phase_seconds)
    overload_ratio = measured_rate / drain_rate
    peak_queue = max(stats_a["peak_queue_depth"], stats_b["peak_queue_depth"])
    bounded = peak_queue <= HIGH_WATER
    latencies = sorted(latencies_a + latencies_b)
    p50 = _percentile(latencies, 0.50)
    p99 = _percentile(latencies, 0.99)

    figure = FigureResult(
        figure_id="Bench server load",
        title=(
            f"daemon under ~{OVERLOAD:g}x overload ({CODE}, batched engine, "
            "pooled dispatch + query cache, SQLite persistence, mid-run restart)"
        ),
        headers=["phase", "offered", "accepted", "rejected", "completed", "peak queue"],
        rows=[
            ["pre-restart", offered_a, len(accepted_a),
             stats_a["rejected"], stats_a["completed"], stats_a["peak_queue_depth"]],
            ["post-restart", offered_b, len(accepted_b),
             stats_b["rejected"], stats_b["completed"], stats_b["peak_queue_depth"]],
        ],
        notes=[
            f"calibrated drain rate: {drain_rate:.0f} inst/s; "
            f"offered {measured_rate:.0f} inst/s = {overload_ratio:.2f}x",
            f"submit-to-decision latency: p50 {p50 * 1000:.1f} ms, "
            f"p99 {p99 * 1000:.1f} ms over {len(latencies)} accepted instances",
            f"queue high-water mark {HIGH_WATER}; peak depth {peak_queue}",
            "every accepted instance resolved 'done', including across the restart",
            f"host cores: {usable_cores()}",
        ],
    )
    report_figure(figure)

    no_loss = done_a == len(accepted_a) and done_b == len(accepted_b)
    passed = bounded and no_loss and overload_ratio >= 2.0
    bench_artifact(
        "bench_server_load",
        metrics={
            "drain_rate_inst_s": drain_rate,
            "offered_rate_inst_s": measured_rate,
            "overload_ratio": overload_ratio,
            "offered": offered,
            "accepted": accepted,
            "rejected": stats_a["rejected"] + stats_b["rejected"],
            "restart_resolved": done_a,
            "p50_latency_ms": p50 * 1000,
            "p99_latency_ms": p99 * 1000,
            "peak_queue_depth": peak_queue,
            "high_water": HIGH_WATER,
        },
        gate={
            "description": (
                "arrivals >= 2x drain rate; queue bounded by the high-water "
                "mark; zero accepted-instance loss across a mid-run restart"
            ),
            "target": 2.0,
            "measured": overload_ratio,
            "bounded_queue": bounded,
            "no_loss": no_loss,
            "passed": passed,
        },
    )
    assert bounded, f"queue exceeded its bound: peak {peak_queue} > {HIGH_WATER}"
    assert overload_ratio >= 2.0, (
        f"offered only {overload_ratio:.2f}x the drain rate; the client "
        "failed to sustain the overload the gate requires"
    )
    assert passed
