"""Ablation A1: halting in-flight queries at instance completion vs draining.

The paper's semantics lets an instance halt as soon as its targets are
stable; whatever speculative queries are still in flight get cancelled at
their next unit boundary.  Draining them instead can only add work.
"""

from repro.bench import ablation_halt_policy


def test_ablation_halt_policy(benchmark, report_figure, bench_seeds):
    result = benchmark.pedantic(
        ablation_halt_policy, args=(bench_seeds,), rounds=1, iterations=1
    )
    report_figure(result)

    for _code, cancel_work, drain_work, delta in result.rows:
        assert drain_work >= cancel_work - 1e-9
        assert abs(delta - (drain_work - cancel_work)) < 1e-9
