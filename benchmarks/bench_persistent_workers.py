"""Micro-benchmark: persistent shard workers vs respawn-per-round, plus
the shared L2 tier's cross-shard hit rate.

Not a paper figure — this measures the reproduction itself.  Before the
persistent-worker runtime, the ``process`` executor was one-shot: every
``run()`` forked a fresh worker per shard, rebuilt the engine + DES +
database stack from the serialized schema, drained, and exited.  An open
system (the ``serve`` daemon) drains *rounds*, so that spawn/rebuild tax
was paid per drain epoch.  The persistent runtime forks each shard's
worker once and streams rounds over a pipe.

Two measurements:

1. **Persistent vs respawn.**  The same multi-round workload is driven
   twice on the process executor — once on a single long-lived
   ``ShardedDecisionService`` (one fleet, N rounds), once with a fresh
   service built and torn down every round (what an open system had to
   do before this runtime).  Identical merged Work and instance counts
   are asserted before any rate is reported.  Unlike the sharded
   throughput gate this is *not* a hardware claim — respawn pays
   fork + rebuild per round on any host — so the gate arms in full mode
   regardless of core count.  The gate runs at service scale (many
   small drain epochs, the shape ``serve`` produces), where the
   per-round tax dominates; a second, non-gating row at batch scale
   (few large rounds) records how the tax amortizes.

2. **L2 hit rate.**  With ``query_cache`` on and >= 2 shards, each
   round's instances are pinned to the *other* shard (its L1 memo is
   cold there), so cross-round reuse can only travel through the shared
   L2 tier.  The benchmark reports the tier's hit rate and asserts hits
   actually materialized.

``--quick`` (CI smoke) shrinks rounds and population and gates on a
tripwire ratio: at smoke scale the per-round workload is so small that
scheduling noise can eat the respawn tax, so quick only proves the
machinery works end to end.
"""

from __future__ import annotations

import time

from repro import ExecutionConfig, PatternParams, generate_pattern
from repro.bench.figures import FigureResult
from repro.runtime import ShardedDecisionService, shard_of

#: Full-mode gate: the persistent fleet must beat respawn-per-round by
#: this much at service scale (12 rounds x 50 instances; measured ~1.7x
#: on a 1-core host).  Quick mode gates on the tripwire (tiny rounds
#: are noise-dominated).
FULL_TARGET = 1.2
TRIPWIRE = 0.6

SHARDS = 4
CODE = "PSE100"
L2_CODE = "PSE50"


def _pattern():
    return generate_pattern(PatternParams(nb_rows=4, pct_enabled=50, seed=7))


def _drive_rounds(service, pattern, rounds: int, per_round: int) -> None:
    for _ in range(rounds):
        for _ in range(per_round):
            service.submit(pattern.source_values)
        service.run()


def _run_persistent(pattern, rounds: int, per_round: int) -> tuple[float, int, int]:
    config = ExecutionConfig.from_code(
        CODE, engine="batched", shards=SHARDS, executor="process"
    )
    started = time.perf_counter()
    service = ShardedDecisionService(pattern.schema, config)
    _drive_rounds(service, pattern, rounds, per_round)
    host_seconds = time.perf_counter() - started
    count, units = service.summary().count, service.total_units
    service.close()
    return host_seconds, count, units


def _run_respawn(pattern, rounds: int, per_round: int) -> tuple[float, int, int]:
    config = ExecutionConfig.from_code(
        CODE, engine="batched", shards=SHARDS, executor="process"
    )
    count = units = 0
    started = time.perf_counter()
    for _ in range(rounds):
        service = ShardedDecisionService(pattern.schema, config)
        _drive_rounds(service, pattern, 1, per_round)
        count += service.summary().count
        units += service.total_units
        service.close()
    host_seconds = time.perf_counter() - started
    return host_seconds, count, units


def _id_on_shard(shard: int, shards: int, prefix: str) -> str:
    for index in range(10_000):
        candidate = f"{prefix}-{index}"
        if shard_of(candidate, shards) == shard:
            return candidate
    raise AssertionError("no id found")  # pragma: no cover


def measure_l2_hit_rate(pattern, rounds: int, per_round: int) -> dict:
    """Alternate each round's batch between two shards; reuse must cross L2."""
    service = ShardedDecisionService(
        pattern.schema,
        ExecutionConfig.from_code(
            L2_CODE, engine="batched", shards=2, executor="process",
            query_cache=True,
        ),
    )
    for round_index in range(rounds):
        for index in range(per_round):
            service.submit(
                pattern.source_values,
                instance_id=_id_on_shard(round_index % 2, 2, f"r{round_index}-{index}"),
            )
        service.run()
    summary = service.summary()
    service.close()
    probes = summary.query_cache_l2_hits + summary.query_cache_l2_misses
    return {
        "l2_hits": summary.query_cache_l2_hits,
        "l2_misses": summary.query_cache_l2_misses,
        "l2_promotions": summary.query_cache_l2_promotions,
        "l2_hit_rate": summary.query_cache_l2_hits / probes if probes else 0.0,
    }


def measure_persistent_workers(sweeps, l2_rounds: int,
                               l2_per_round: int) -> tuple[FigureResult, dict]:
    pattern = _pattern()
    rows = []
    for rounds, per_round in sweeps:
        persistent_s, persistent_count, persistent_units = _run_persistent(
            pattern, rounds, per_round
        )
        respawn_s, respawn_count, respawn_units = _run_respawn(
            pattern, rounds, per_round
        )
        assert persistent_count == respawn_count == rounds * per_round
        assert persistent_units == respawn_units, "respawn changed total Work"
        instances = rounds * per_round
        rows.append(
            [
                f"{rounds} x {per_round}",
                respawn_s,
                persistent_s,
                instances / persistent_s,
                respawn_s / persistent_s,
            ]
        )
    l2 = measure_l2_hit_rate(pattern, l2_rounds, l2_per_round)
    result = FigureResult(
        figure_id="Bench persistent workers",
        title=(
            f"persistent {SHARDS}-shard fleet vs respawn-per-round "
            f"({CODE}, ideal backend, process executor)"
        ),
        headers=[
            "rounds x inst/round",
            "respawn s",
            "persistent s",
            "persistent inst/s",
            "speedup",
        ],
        rows=rows,
        notes=[
            "identical merged Work and instance counts asserted before reporting",
            "respawn = fresh service (fork + rebuild per shard) every round",
            "persistent = one fleet, rounds streamed over worker pipes",
            "first row = service scale (gated); later rows show the tax amortizing",
            f"L2 tier (2 shards, {L2_CODE}, rounds alternating shards): "
            f"{l2['l2_hits']} hits / {l2['l2_misses']} misses "
            f"({100 * l2['l2_hit_rate']:.0f}% hit rate), "
            f"{l2['l2_promotions']} promotions",
            f"gate: persistent >= {FULL_TARGET:g}x respawn at service scale "
            f"(full mode)",
        ],
    )
    return result, l2


def test_persistent_workers(report_figure, bench_artifact, quick):
    sweeps = ((3, 80),) if quick else ((12, 50), (6, 400))
    l2_rounds, l2_per_round = (2, 8) if quick else (4, 24)
    result, l2 = measure_persistent_workers(sweeps, l2_rounds, l2_per_round)
    result = report_figure(result)
    gated = result.rows[0]
    speedup = gated[4]
    target = TRIPWIRE if quick else FULL_TARGET
    bench_artifact(
        "bench_persistent_workers",
        metrics={
            "rounds": sweeps[0][0],
            "instances_per_round": sweeps[0][1],
            "shards": SHARDS,
            "respawn_s": gated[1],
            "persistent_s": gated[2],
            "persistent_inst_per_s": gated[3],
            "speedup": speedup,
            **l2,
        },
        gate={
            "description": (
                f"persistent fleet >= {target:g}x respawn-per-round at "
                f"{sweeps[0][0]} rounds x {sweeps[0][1]} instances"
                + (" (tripwire: quick mode)" if quick else "")
            ),
            "target": target,
            "measured": speedup,
            "passed": speedup >= target,
        },
    )
    assert l2["l2_promotions"] > 0, "round 1 published nothing to the L2 tier"
    assert l2["l2_hits"] > 0, "cross-shard L2 reuse never materialized"
    assert speedup >= target, (
        f"persistent fleet only {speedup:.2f}x respawn at service scale "
        f"({sweeps[0][0]} rounds x {sweeps[0][1]} instances)"
    )
