"""Micro-benchmark: raw engine speed (instances/second of host time).

Not a paper figure — this measures the reproduction itself.  Two parts:

* the original single-instance pytest-benchmark probes (PCE0 / PSE100),
  which guard against accidental algorithmic regressions in the
  propagation machinery (the paper requires it to be linear in the
  schema size);
* the reference-vs-batched sweep: both engines drive the same ideal
  backend through population sizes of 100 / 1 000 / 10 000 instances and
  report instances/sec.  The batched engine's compiled plans and flat
  array state must deliver **>= 3x** throughput on the 1 000-instance
  sweep — the PR-2 ROADMAP baseline showed the coalesced DES kernels
  left per-instance attribute propagation as the scaling bottleneck, and
  this is the gate that keeps it fixed.

``--quick`` (CI smoke) shrinks the sweep to 50/200 instances and relaxes
the gate to a catastrophic-regression tripwire.
"""

from __future__ import annotations

import time

from repro import (
    BatchedEngine,
    Engine,
    IdealDatabase,
    PatternParams,
    Simulation,
    Strategy,
    generate_pattern,
)
from repro.bench import run_pattern_once
from repro.bench.figures import FigureResult

#: Ratio gates for the 1k sweep (full) and the 200-instance smoke (quick).
FULL_TARGET = 3.0
QUICK_TARGET = 1.5


def test_engine_throughput_pce0(benchmark):
    pattern = generate_pattern(PatternParams(nb_rows=4, pct_enabled=50, seed=7))
    strategy = Strategy.parse("PCE0")
    metrics = benchmark(run_pattern_once, pattern, strategy)
    assert metrics.done


def test_engine_throughput_pse100(benchmark):
    pattern = generate_pattern(PatternParams(nb_rows=4, pct_enabled=50, seed=7))
    strategy = Strategy.parse("PSE100")
    metrics = benchmark(run_pattern_once, pattern, strategy)
    assert metrics.done


# -- reference vs batched sweep ------------------------------------------------


def _sweep(engine_cls, pattern, code: str, instances: int) -> tuple[float, int]:
    """Run *instances* concurrent instances to completion; returns
    (instances/sec of host time, total Work) for cross-engine checking."""
    sim = Simulation()
    engine = engine_cls(pattern.schema, Strategy.parse(code), IdealDatabase(sim))
    started = time.perf_counter()
    for _ in range(instances):
        engine.submit_instance(pattern.source_values)
    sim.run()
    host_seconds = time.perf_counter() - started
    assert all(instance.done for instance in engine.instances)
    return instances / host_seconds, engine.database.total_units


def measure_engine_throughput(counts, code: str = "PSE100") -> FigureResult:
    pattern = generate_pattern(PatternParams(nb_rows=4, pct_enabled=50, seed=7))
    rows = []
    for count in counts:
        reference_rate, reference_work = _sweep(Engine, pattern, code, count)
        batched_rate, batched_work = _sweep(BatchedEngine, pattern, code, count)
        assert batched_work == reference_work, "engines disagree on Work"
        rows.append(
            [count, reference_rate, batched_rate, batched_rate / reference_rate]
        )
    return FigureResult(
        figure_id="Bench engine throughput",
        title=f"engine throughput, reference vs batched ({code}, ideal backend)",
        headers=["instances", "reference inst/s", "batched inst/s", "speedup"],
        rows=rows,
        notes=[
            "identical total Work under both engines is asserted before reporting",
            "batched = compiled plan + flat array state + incremental candidate pool",
            f"gate: >= {FULL_TARGET:g}x on the 1k sweep (full mode)",
        ],
    )


def test_reference_vs_batched_throughput(report_figure, bench_artifact, quick):
    counts = (50, 200) if quick else (100, 1_000, 10_000)
    result = report_figure(measure_engine_throughput(counts))
    speedups = {row[0]: row[3] for row in result.rows}
    rates = {row[0]: row[2] for row in result.rows}
    gate_count = 200 if quick else 1_000
    target = QUICK_TARGET if quick else FULL_TARGET
    bench_artifact(
        "bench_engine_throughput",
        metrics={
            "instances": gate_count,
            "batched_inst_per_s": rates[gate_count],
            "speedup": speedups[gate_count],
        },
        gate={
            "description": f"batched >= {target:g}x reference at {gate_count} instances",
            "target": target,
            "measured": speedups[gate_count],
            "passed": speedups[gate_count] >= target,
        },
    )
    if quick:
        assert speedups[200] >= QUICK_TARGET, (
            f"batched engine only {speedups[200]:.2f}x at 200 instances"
        )
    else:
        assert speedups[1_000] >= FULL_TARGET, (
            f"batched engine only {speedups[1_000]:.2f}x at 1k instances"
        )
