"""Micro-benchmark: raw engine speed (instances/second of host time).

Not a paper figure — this measures the reproduction itself, so pytest-
benchmark's statistics are meaningful here (multiple rounds).  It guards
against accidental algorithmic regressions in the propagation machinery,
which the paper requires to be linear in the schema size.
"""

from repro import PatternParams, Strategy, generate_pattern
from repro.bench import run_pattern_once


def test_engine_throughput_pce0(benchmark):
    pattern = generate_pattern(PatternParams(nb_rows=4, pct_enabled=50, seed=7))
    strategy = Strategy.parse("PCE0")
    metrics = benchmark(run_pattern_once, pattern, strategy)
    assert metrics.done


def test_engine_throughput_pse100(benchmark):
    pattern = generate_pattern(PatternParams(nb_rows=4, pct_enabled=50, seed=7))
    strategy = Strategy.parse("PSE100")
    metrics = benchmark(run_pattern_once, pattern, strategy)
    assert metrics.done
