"""Micro-benchmark: cohort execution on an overlapping decision sweep.

Not a paper figure — this measures the reproduction itself.  The PR-5
baseline (pooled dispatch + query share cache) removed duplicate
*queries* from an overlapping sweep but still ran every instance's
decision logic: at 10k identical submissions the engine advances 10k
state machines through the same stages, coalescing each one's launches
behind the same primaries.  Cohort execution (``cohorts=True``) dedupes
the *instances*: arrivals sharing one ``(typed start valuation,
strategy)`` key at one instant form a cohort, one representative runs,
and members are tracked as weighted virtual attachments on the
representative's primaries until they finish (or diverge and split
off).

The sweep runs one PSE100 population (ideal backend, batched engine,
pooled dispatch, query cache on — exactly the PR-5 headline
configuration) twice and reports instances/sec: cohorts off (the
baseline) and cohorts on.  The gate: **cohorts must deliver >= 5x** the
pooled+cache baseline on the 10 000-instance single-valuation sweep.
Identical per-instance decision values and identical database work are
asserted before any rate is reported, along with full cohort capture
(every non-representative instance a cohort hit, zero splits on an
identical-valuation sweep).

``--quick`` (CI smoke) shrinks the population and relaxes the gate to a
regression tripwire; both modes write a machine-readable
``BENCH_*.json`` artifact.
"""

from __future__ import annotations

import time

from conftest import usable_cores
from repro import ExecutionConfig, PatternParams, generate_pattern
from repro.api import DecisionService
from repro.bench.figures import FigureResult

#: Full-mode gate (10k instances): cohort execution vs the PR-5
#: pooled+cache baseline.  Quick mode uses the tripwire.
FULL_TARGET = 5.0
TRIPWIRE = 1.5

CODE = "PSE100"


def _pattern():
    return generate_pattern(PatternParams(nb_rows=4, pct_enabled=50, seed=7))


def _sweep(pattern, instances: int, cohorts: bool):
    service = DecisionService(
        pattern.schema,
        ExecutionConfig.from_code(
            CODE,
            engine="batched",
            dispatch="pooled",
            query_cache=True,
            cohorts=cohorts,
        ),
    )
    started = time.perf_counter()
    for _ in range(instances):
        service.submit(pattern.source_values)
    service.run()
    host_seconds = time.perf_counter() - started
    summary = service.summary()
    assert summary.count == instances
    values = frozenset(
        tuple(sorted((k, repr(v)) for k, v in h.instance.value_map().items()))
        for h in service.handles
    )
    return {
        "rate": instances / host_seconds,
        "db_units": service.database.total_units,
        "values": values,
        "cohort_hits": summary.cohort_hits,
        "cohort_splits": summary.cohort_splits,
    }


def measure_cohort(counts) -> tuple[FigureResult, dict]:
    """Returns the rendered figure plus the headline sweep's cohort stats."""
    pattern = _pattern()
    rows = []
    cohort_stats: dict = {}
    for count in counts:
        baseline = _sweep(pattern, count, cohorts=False)
        cohort = _sweep(pattern, count, cohorts=True)
        assert cohort["values"] == baseline["values"], (
            "cohort execution changed decision values"
        )
        assert cohort["db_units"] == baseline["db_units"], (
            "cohort execution changed db work"
        )
        assert baseline["cohort_hits"] == 0, "cohorts counted while disabled"
        assert cohort["cohort_hits"] == count - 1, (
            "identical-valuation sweep was not fully cohorted"
        )
        assert cohort["cohort_splits"] == 0, (
            "identical-valuation sweep should never split"
        )
        rows.append(
            [
                count,
                baseline["rate"],
                cohort["rate"],
                cohort["rate"] / baseline["rate"],
            ]
        )
        cohort_stats = {
            "cohort_hits": cohort["cohort_hits"],
            "cohort_splits": cohort["cohort_splits"],
        }
    figure = FigureResult(
        figure_id="Bench cohort",
        title=(
            f"cohort execution vs pooled+cache baseline "
            f"({CODE}, ideal backend, batched engine, single shard)"
        ),
        headers=[
            "instances",
            "pooled+cache inst/s",
            "cohorts inst/s",
            "cohort speedup",
        ],
        rows=rows,
        notes=[
            "identical per-instance decision values asserted between both paths",
            "identical db work asserted between both paths",
            "cohort = one representative instance per (valuation, strategy, instant)",
            f"host cores: {usable_cores()}",
            f"gate: cohorts >= {FULL_TARGET:g}x pooled+cache at the 10k sweep (full mode)",
        ],
    )
    return figure, cohort_stats


def test_cohort_throughput(report_figure, bench_artifact, quick):
    counts = (600,) if quick else (1_000, 10_000)
    figure, cohort_stats = measure_cohort(counts)
    result = report_figure(figure)
    headline = counts[-1]
    by_count = {row[0]: row for row in result.rows}
    speedup = by_count[headline][3]
    target = TRIPWIRE if quick else FULL_TARGET
    bench_artifact(
        "bench_cohort",
        metrics={
            "instances": headline,
            "baseline_inst_per_s": by_count[headline][1],
            "cohort_inst_per_s": by_count[headline][2],
            "speedup": speedup,
            **cohort_stats,
        },
        gate={
            "description": f"cohorts >= {target:g}x pooled+cache baseline",
            "target": target,
            "measured": speedup,
            "passed": speedup >= target,
        },
    )
    assert speedup >= target, (
        f"cohorts only {speedup:.2f}x the pooled+cache baseline at "
        f"{headline} instances (target {target:g}x)"
    )
