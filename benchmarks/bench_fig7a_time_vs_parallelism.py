"""Figure 7(a): TimeInUnits vs %Permitted for PCC*/PCE*/PSC*/PSE*.

Shape: response time falls as parallelism rises, and with option P the
Earliest heuristic beats Cheapest (the paper's Lesson 3).
"""

from repro.bench import fig7a


def test_fig7a_time_vs_parallelism(benchmark, report_figure, bench_seeds):
    result = benchmark.pedantic(fig7a, args=(bench_seeds,), rounds=1, iterations=1)
    report_figure(result)

    first = dict(zip(result.headers[1:], result.rows[0][1:]))
    last = dict(zip(result.headers[1:], result.rows[-1][1:]))
    # More parallelism = faster, for every family.
    for family in result.headers[1:]:
        assert last[family] < first[family]
    # Earliest at least matches Cheapest at full parallelism (conservative).
    assert last["PCE*"] <= last["PCC*"] * 1.05 + 1e-9
