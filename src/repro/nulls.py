"""Distinguished values: the null ⊥ of DISABLED attributes and exceptions.

The decision-flow model (Hull et al., ICDE 2000, section 2) requires every
disabled attribute to take a distinguished *null* value, written ⊥, that is
different from every ordinary value a task could produce (including Python's
``None``, which a user-defined task may legitimately return).  Tasks must be
able to execute even when some of their inputs are ⊥, and predicates over ⊥
follow SQL-like semantics: every comparison involving ⊥ is false, and only
the explicit ``IsNull`` test is true.

The paper additionally notes (after [HLS+99a]) that *exception values* are
distinguished from ordinary values: "a decision may have to be made with
incomplete information, e.g., if a database is down".  A foreign task whose
query fails still stabilizes its attribute — with an
:class:`ExceptionValue` carrying the failure reason.  Comparisons over an
exception are false (like ⊥), but ``IsNull`` is false too; the dedicated
``IsException`` predicate detects them, so flows can route around outages
explicitly.
"""

from __future__ import annotations

__all__ = ["NULL", "NullType", "is_null", "ExceptionValue", "is_exception"]


class NullType:
    """Singleton type of the null value ⊥.

    A dedicated singleton (rather than ``None``) keeps "the attribute was
    disabled" distinguishable from "the task returned None".
    """

    _instance: "NullType | None" = None

    def __new__(cls) -> "NullType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "NULL"

    def __bool__(self) -> bool:
        return False

    def __reduce__(self):
        # Pickling must preserve the singleton property.
        return (NullType, ())


#: The unique null value ⊥.
NULL = NullType()


def is_null(value: object) -> bool:
    """Return True iff *value* is the null value ⊥."""
    return value is NULL


class ExceptionValue:
    """Value of an attribute whose foreign task failed (e.g. database down).

    Unlike ⊥ (which means "disabled"), an exception means "enabled, but
    the evaluation failed".  The attribute is stable; downstream tasks
    receive the exception like any other value and must cope with it.
    """

    __slots__ = ("reason",)

    def __init__(self, reason: str = ""):
        self.reason = reason

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ExceptionValue) and other.reason == self.reason

    def __hash__(self) -> int:
        return hash(("ExceptionValue", self.reason))

    def __bool__(self) -> bool:
        return False

    def __repr__(self) -> str:
        return f"EXC({self.reason})" if self.reason else "EXC"


def is_exception(value: object) -> bool:
    """Return True iff *value* is an exception value."""
    return isinstance(value, ExceptionValue)
