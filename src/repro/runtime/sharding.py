"""ShardedDecisionService: one facade, N independent engine + DES shards.

The paper's optimizations are per-instance, which makes instance
populations embarrassingly partitionable: nothing couples two instances
except the database they happen to share (and, optionally, result
sharing).  This module exploits that.  A :class:`ShardedDecisionService`
presents the :class:`~repro.api.service.DecisionService` facade — submit,
``submit_stream``, ``run_closed``, handles, summaries, observer hooks —
but hash-partitions instances across ``config.shards`` shards, each
owning an independent engine (reference or batched), DES calendar, and
database replica built from the backend registry.

Routing is by a *stable* hash (CRC-32 of the instance id) under the
default ``placement="hash"``, so the same workload lands on the same
shards in every process on every run; ``placement="least-loaded"``
instead routes each new submission to the shard with the fewest
instances still in flight (skew rebalancing — deterministic given
submission order, since routing always happens in the parent).  Two
executors drive the fleet (``config.executor``): ``"serial"`` runs every
shard in-process — deterministic, incremental, and for ``shards=1``
indistinguishable from a plain service — while ``"process"`` keeps one
long-lived worker process per shard, streaming each round's ops over a
pipe via :mod:`repro.core.serialize` and merging the incremental
outcomes.  Both executors are fully incremental: submit → run → submit
again works identically on either.

Determinism and equivalence guarantees:

* Any sharded run is exactly reproducible, and the process executor
  reproduces the serial executor's results shard for shard (each worker
  replays the same ops on the same substrate at the same round
  boundaries — including the shared L2 query tier, which commits at
  end-of-round on both executors).
* With one shard, results are identical to a plain ``DecisionService`` —
  bit for bit, including event order.
* With N shards, per-instance results are identical to a single service
  whenever instances do not interact through the database: always on the
  ideal backend (unbounded resources), and on any backend while arrivals
  do not overlap.  Under overlap on a contended backend, sharding *is*
  the point — N replicas replace one shared server, so response times
  (and contention-dependent scheduling) legitimately differ.

Cross-shard aggregation: ``summary()`` merges per-shard summaries via
:meth:`~repro.core.metrics.MetricsSummary.merge`, ``stats()`` reports
per-shard database totals, and :meth:`attach_log` returns a
:class:`MergedEventLog` whose ``events`` property is the stable globally
ordered stream (time, then shard, then in-shard order).
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Iterable, Mapping, Sequence
from zlib import crc32

from repro.api.backends import Backend
from repro.api.config import ExecutionConfig
from repro.api.events import InstanceCompleteEvent, LaunchEvent, QueryDoneEvent
from repro.api.service import DecisionService, InstanceHandle, coerce_config
from repro.core.engine import claim_instance_id
from repro.core.metrics import InstanceMetrics, MetricsSummary
from repro.core.schema import DecisionFlowSchema
from repro.core.strategy import Strategy
from repro.errors import ExecutionError
from repro.nulls import NULL
from repro.obs import MetricsRegistry, export_chrome_trace
from repro.runtime.executors import EXECUTOR_CLASSES, ShardStats
from repro.runtime.worker import InstanceRecord

__all__ = [
    "ShardedDecisionService",
    "ShardedInstanceHandle",
    "MergedEventLog",
    "shard_of",
    "merge_shard_events",
    "create_service",
]


def shard_of(instance_id: str, shards: int) -> int:
    """The home shard of an instance id.

    CRC-32 rather than ``hash()``: Python string hashing is salted per
    process, and routing must agree between the parent and its workers
    (and across runs) for results to be reproducible.
    """
    return crc32(instance_id.encode("utf-8")) % shards


def merge_shard_events(per_shard: Sequence[Sequence[object]]) -> list[object]:
    """Merge per-shard event sequences into the stable global order.

    Shard clocks are independent, so a total order is a convention: sort
    by event time, then shard index, then in-shard arrival order.  Within
    a shard the engine's deterministic sequence is preserved; across
    shards same-instant ties resolve by shard index.  Both executors
    produce the same merged stream for the same workload.
    """
    entries = [
        (event.time, shard, index, event)
        for shard, events in enumerate(per_shard)
        for index, event in enumerate(events or ())
    ]
    entries.sort(key=lambda entry: entry[:3])
    return [entry[3] for entry in entries]


class MergedEventLog:
    """Per-shard event recorder exposing one stable globally ordered stream.

    The sharded counterpart of :class:`~repro.api.events.EventLog`:
    ``events`` merges every shard's sequence per
    :func:`merge_shard_events`; ``per_shard(i)`` reads one shard's raw
    sequence.
    """

    def __init__(self, shards: int):
        self._per_shard: list[list[object]] = [[] for _ in range(shards)]

    def record(self, shard: int, event: object) -> None:
        self._per_shard[shard].append(event)

    def per_shard(self, shard: int) -> tuple[object, ...]:
        return tuple(self._per_shard[shard])

    @property
    def events(self) -> list[object]:
        return merge_shard_events(self._per_shard)

    def of_type(self, event_type: type) -> list[object]:
        return [e for e in self.events if isinstance(e, event_type)]

    def __len__(self) -> int:
        return sum(len(events) for events in self._per_shard)


class ShardedInstanceHandle:
    """A submitted instance in a sharded service: poll it, drive it, read it.

    Mirrors :class:`~repro.api.service.InstanceHandle`.  Under the serial
    executor it wraps the live shard handle; under the process executor
    results materialize once the service has run.
    """

    __slots__ = ("_service", "_shard", "_instance_id", "_local", "_record")

    def __init__(
        self,
        service: "ShardedDecisionService",
        shard: int,
        instance_id: str,
        local: InstanceHandle | None,
    ):
        self._service = service
        self._shard = shard
        self._instance_id = instance_id
        self._local = local
        self._record: InstanceRecord | None = None

    @property
    def instance_id(self) -> str:
        return self._instance_id

    @property
    def shard(self) -> int:
        """The shard this instance was routed to."""
        return self._shard

    def _resolve(self) -> InstanceRecord | None:
        # Re-fetch until the record reports done: the persistent process
        # executor re-materializes records of still-running instances
        # every round, so a cached not-done record goes stale.
        record = self._record
        if record is None or not record.done:
            fetched = self._service._executor.record_for(self._instance_id)
            if fetched is not None:
                self._record = fetched
        return self._record

    @property
    def done(self) -> bool:
        if self._local is not None:
            return self._local.done
        record = self._resolve()
        return record is not None and record.done

    @property
    def metrics(self) -> InstanceMetrics:
        if self._local is not None:
            return self._local.metrics
        record = self._resolve()
        if record is None:
            raise ValueError(
                f"instance {self._instance_id} has no metrics yet: the process "
                "executor materializes results when the service runs"
            )
        return record.metrics

    def value(self, name: str) -> object:
        """The value of one attribute (⊥ until stable)."""
        if self._local is not None:
            return self._local.value(name)
        if name not in self._service.schema:
            # Mirror the live handle's cells[name] lookup: a typo raises
            # on both executors instead of silently reading ⊥ on one.
            raise KeyError(name)
        record = self._resolve()
        if record is None:
            return NULL
        return record.values.get(name, NULL)

    def value_map(self) -> dict[str, object]:
        """Every stable attribute's value."""
        if self._local is not None:
            return dict(self._local.instance.value_map())
        record = self._resolve()
        return dict(record.values) if record is not None else {}

    def wait(self) -> InstanceMetrics:
        """Drive the owning shard until this instance finishes."""
        if self._local is not None:
            return self._local.wait()
        if not self.done:
            self._service.run()
        record = self._resolve()
        if record is None or not record.done:
            raise ExecutionError(
                f"instance {self._instance_id} stalled on shard {self._shard}"
            )
        return record.metrics

    def result(self) -> dict[str, object]:
        """The target attribute values, driving the shard if needed."""
        if self._local is not None:
            return self._local.result()
        self.wait()
        record = self._resolve()
        return {
            name: record.values[name]
            for name in self._service.schema.target_names
            if name in record.values
        }

    def __repr__(self) -> str:
        state = "done" if self.done else "running"
        return (
            f"<ShardedInstanceHandle {self._instance_id!r} "
            f"shard={self._shard} {state}>"
        )


class ShardedDecisionService:
    """Execute decision-flow instances across hash-partitioned shards.

    Accepts the same ``config`` spellings as
    :class:`~repro.api.service.DecisionService` (an
    :class:`~repro.api.config.ExecutionConfig`, a
    :class:`~repro.core.strategy.Strategy`, or a code string);
    ``config.shards`` sets the shard count and ``config.executor`` picks
    the drive mode.  ``backend`` must be a registered backend *name* —
    every shard builds a fresh replica from the registry, so a pre-built
    :class:`~repro.api.backends.Backend` cannot be shared.
    """

    def __init__(
        self,
        schema: DecisionFlowSchema,
        config: ExecutionConfig | Strategy | str | None = None,
        *,
        backend: str | None = None,
        **backend_options: Any,
    ):
        config = coerce_config(config)
        if isinstance(backend, Backend):
            raise TypeError(
                "a sharded service builds one fresh backend per shard from the "
                "registry; pass a registered backend name, not a pre-built Backend"
            )
        if backend is not None:
            config = config.replace(backend=backend)
        if backend_options:
            merged = {**config.backend_options, **backend_options}
            config = config.replace(backend_options=merged)
        self.schema = schema
        self.config = config
        self.shards = config.shards
        self._executor = EXECUTOR_CLASSES[config.executor](schema, config, self.shards)
        self._handles: list[ShardedInstanceHandle] = []
        self._instance_ids: set[str] = set()
        self._id_seq = itertools.count(1)
        #: placement state: where each instance was routed, how many each
        #: shard was assigned, and each shard's completion count as of
        #: the last drain (the live-load signal for least-loaded).
        self._routes: dict[str, int] = {}
        self._assigned = [0] * self.shards
        self._completed_seen = [0] * self.shards
        #: process-executor observation state (serial subscribes live).
        self._handlers: dict[str, list[Callable]] = {
            "launch": [],
            "query_done": [],
            "complete": [],
        }
        self._logs: list[MergedEventLog] = []

    # -- id allocation and routing --------------------------------------------

    def _claim_id(self, instance_id: str | None) -> str:
        return claim_instance_id(
            instance_id, self.schema.name, self._id_seq, self._instance_ids,
            scope="service",
        )

    def shard_of(self, instance_id: str) -> int:
        """Which shard an instance id routes to.

        For an already-routed instance this is its assigned shard under
        any placement policy; otherwise the stable CRC-32 home.
        """
        assigned = self._routes.get(instance_id)
        if assigned is not None:
            return assigned
        return shard_of(instance_id, self.shards)

    def _route(self, instance_id: str) -> int:
        """Assign a new instance a shard under the configured placement."""
        if self.config.placement == "hash":
            shard = shard_of(instance_id, self.shards)
        else:  # least-loaded: fewest in flight, ties to the lowest index
            shard = min(
                range(self.shards),
                key=lambda s: (self._assigned[s] - self._completed_seen[s], s),
            )
        self._routes[instance_id] = shard
        self._assigned[shard] += 1
        return shard

    def _register(
        self, shard: int, instance_id: str, local: InstanceHandle | None
    ) -> ShardedInstanceHandle:
        handle = ShardedInstanceHandle(self, shard, instance_id, local)
        self._handles.append(handle)
        return handle

    # -- submission -----------------------------------------------------------

    def submit(
        self,
        source_values: Mapping[str, object] | None = None,
        *,
        at: float | None = None,
        instance_id: str | None = None,
    ) -> ShardedInstanceHandle:
        """Submit one instance to its home shard."""
        instance_id = self._claim_id(instance_id)
        shard = self._route(instance_id)
        try:
            local = self._executor.submit(shard, instance_id, source_values, at)
        except Exception:
            # A rejected submission (e.g. a past start time) must not
            # burn the name or skew the placement load accounting.
            del self._routes[instance_id]
            self._assigned[shard] -= 1
            raise
        self._instance_ids.add(instance_id)
        return self._register(shard, instance_id, local)

    def submit_stream(
        self,
        arrivals: Iterable[float | tuple[float, Mapping[str, object]]],
        values: Mapping[str, object] | Callable[[int], Mapping[str, object]] | None = None,
        *,
        run: bool = True,
    ) -> list[ShardedInstanceHandle]:
        """Open-system helper; see :meth:`DecisionService.submit_stream`."""
        handles = []
        for index, arrival in enumerate(arrivals):
            if isinstance(arrival, tuple):
                at, source_values = arrival
            else:
                at = arrival
                source_values = values(index) if callable(values) else values
            handles.append(self.submit(source_values, at=at))
        if run:
            self.run()
        return handles

    def run_closed(
        self,
        n: int,
        *,
        concurrency: int = 1,
        values: Mapping[str, object] | Callable[[int], Mapping[str, object]] | None = None,
    ) -> list[ShardedInstanceHandle]:
        """Closed-system helper: per-shard closed loops, then drain.

        Ids are allocated globally and hash-routed; each shard with work
        runs its own replacement loop over its share of the *n* instances.
        *concurrency* splits as evenly as possible across the busy shards
        with every busy shard keeping at least one instance in flight —
        so when ``concurrency < shards`` the global in-flight population
        can exceed *concurrency* (shard clocks are independent; a global
        bound would serialize the fleet).
        """
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        if concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {concurrency}")
        ids = []
        for _ in range(n):
            instance_id = self._claim_id(None)
            self._instance_ids.add(instance_id)
            ids.append(instance_id)
        values_list = [values(i) if callable(values) else values for i in range(n)]
        per_shard_ids: list[list[str]] = [[] for _ in range(self.shards)]
        per_shard_values: list[list[Mapping[str, object] | None]] = [
            [] for _ in range(self.shards)
        ]
        for instance_id, source_values in zip(ids, values_list):
            shard = self._route(instance_id)
            per_shard_ids[shard].append(instance_id)
            per_shard_values[shard].append(source_values)
        active = [s for s in range(self.shards) if per_shard_ids[s]]
        shares = _split_concurrency(concurrency, len(active))
        local_lists: dict[int, list[InstanceHandle] | None] = {}
        for share, shard in zip(shares, active):
            local_lists[shard] = self._executor.start_closed(
                shard, per_shard_ids[shard], per_shard_values[shard], share
            )
        self.run()
        # Wrap in global id order; each shard's live list is in shard
        # submission order, which is its id-list order by construction.
        positions = [0] * self.shards
        handles = []
        for instance_id in ids:
            shard = self.shard_of(instance_id)
            locals_ = local_lists.get(shard)
            local = None
            if locals_ is not None:
                local = locals_[positions[shard]]
                positions[shard] += 1
            handles.append(self._register(shard, instance_id, local))
        return handles

    # -- driving and reading --------------------------------------------------

    def run(self, until: float | None = None) -> None:
        """Drive every shard one round: to *until*, or until its work drains."""
        collect = bool(self._logs) or any(self._handlers.values())
        self._executor.run(until, collect_events=collect)
        self._replay_events()
        if self.config.placement != "hash":
            for index, stat in enumerate(self._executor.shard_stats()):
                self._completed_seen[index] = stat.completed

    @property
    def now(self) -> float:
        """The furthest shard clock."""
        return self._executor.now

    @property
    def handles(self) -> tuple[ShardedInstanceHandle, ...]:
        """Every handle this service has issued, in submission order."""
        return tuple(self._handles)

    @property
    def completed(self) -> tuple[ShardedInstanceHandle, ...]:
        return tuple(h for h in self._handles if h.done)

    def summary(self) -> MetricsSummary:
        """Cross-shard aggregate metrics (`MetricsSummary.merge` of shards)."""
        return MetricsSummary.merge(*self._executor.shard_summaries())

    def stats(self) -> tuple[ShardStats, ...]:
        """Per-shard population, database totals, and clock positions."""
        return tuple(self._executor.shard_stats())

    @property
    def total_units(self) -> int:
        """Units of processing performed across every shard's database."""
        return sum(stat.total_units for stat in self.stats())

    def mean_gmpl(self) -> float:
        """Mean multiprogramming level across shards, weighted by shard time.

        Each shard's Gmpl is averaged over its own clock; the fleet-level
        figure weights shards by how long they ran.
        """
        stats = self.stats()
        total_time = sum(stat.end_time for stat in stats)
        if total_time <= 0:
            return 0.0
        return sum(stat.mean_gmpl * stat.end_time for stat in stats) / total_time

    def time_unit(self) -> str | None:
        """How to read shard clocks (``"units"``/``"ms"``; None before the
        process executor has built its backends)."""
        return self._executor.time_unit()

    def dispatch_stats(self) -> dict:
        """Fleet-level pooled-dispatch counters (summed across shards)."""
        totals = {"pooled_batches": 0, "pooled_events": 0}
        for stats in self._executor.dispatch_stats():
            totals["pooled_batches"] += stats["pooled_batches"]
            totals["pooled_events"] += stats["pooled_events"]
        return totals

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Release executor resources (shuts persistent shard workers down).

        Idempotent; the serial executor has nothing to release.  A closed
        process-executor service can still be read (summaries, handles,
        stats come from cached outcomes) but not driven further.
        """
        self._executor.close()

    def worker_health(self) -> dict:
        """Executor liveness: per-worker alive flags for the process fleet.

        The daemon folds this into ``/healthz``; the serial executor is
        trivially alive.
        """
        return self._executor.worker_health()

    # -- observability (repro.obs) --------------------------------------------

    def observability(self) -> dict:
        """Shard registry snapshots merged into one, labelled ``shard=<n>``.

        Counters and histograms add across shards; gauges stay per-shard
        (each entry keeps its shard label), since summing shard clocks or
        Gmpl figures would be meaningless.  Process-executor shards ship
        their snapshots back inside :class:`ShardOutcome`, exactly like
        their metrics summaries.
        """
        if not self.config.observe:
            return {"enabled": False, "counters": [], "gauges": [], "histograms": []}
        merged = MetricsRegistry()
        for shard, snapshot in enumerate(self._executor.obs_snapshots()):
            if snapshot and snapshot.get("enabled"):
                merged.merge_snapshot(snapshot, extra_labels={"shard": shard})
        return merged.snapshot()

    def trace_groups(self) -> list[tuple[int, str, list]]:
        """Chrome-trace lanes: one process lane per shard."""
        return [
            (shard, f"shard:{shard}", events)
            for shard, events in enumerate(self._executor.trace_groups())
        ]

    def chrome_trace(self) -> dict:
        """The fleet's flight recorders as one Chrome-trace JSON object."""
        return export_chrome_trace(
            self.trace_groups(), armed=bool(self.config.observe)
        )

    # -- observation ----------------------------------------------------------

    def _subscribe(self, kind: str, handler: Callable) -> Callable:
        if self._executor.live:
            self._executor.subscribe(kind, handler)
        else:
            self._handlers[kind].append(handler)
        return handler

    def on_launch(self, handler: Callable[[LaunchEvent], None]):
        """Subscribe to task-launch events; usable as a decorator.

        Serial-executor delivery is live; the process executor replays
        each round's events in the merged global order once its shards
        return.  Handlers may attach at any point in the service's life —
        a handler attached after some rounds have run receives events
        from the next round on.
        """
        return self._subscribe("launch", handler)

    def on_query_done(self, handler: Callable[[QueryDoneEvent], None]):
        """Subscribe to query-completion events; usable as a decorator."""
        return self._subscribe("query_done", handler)

    def on_instance_complete(self, handler: Callable[[InstanceCompleteEvent], None]):
        """Subscribe to instance-completion events; usable as a decorator."""
        return self._subscribe("complete", handler)

    def attach_log(self) -> MergedEventLog:
        """Subscribe a fresh :class:`MergedEventLog` to every shard.

        Logs may attach at any point; under the process executor a log
        attached after some rounds have run records from the next round.
        """
        log = MergedEventLog(self.shards)
        if self._executor.live:
            self._executor.attach_sink(log.record)
        else:
            self._logs.append(log)
        return log

    def _replay_events(self) -> None:
        """Process executor: fan one round's shard events out after it runs."""
        if self._executor.live:
            return
        if not self._logs and not any(self._handlers.values()):
            return
        per_shard = self._executor.round_events()
        for log in self._logs:
            for shard, events in enumerate(per_shard):
                for event in events:
                    log.record(shard, event)
        dispatch = {
            LaunchEvent: self._handlers["launch"],
            QueryDoneEvent: self._handlers["query_done"],
            InstanceCompleteEvent: self._handlers["complete"],
        }
        for event in merge_shard_events(per_shard):
            for handler in dispatch.get(type(event), ()):
                handler(event)

    def __repr__(self) -> str:
        done = sum(1 for h in self._handles if h.done)
        return (
            f"<ShardedDecisionService {self.schema.name!r} {self.config.code} "
            f"shards={self.shards} executor={self.config.executor!r} "
            f"backend={self.config.backend!r} instances={done}/{len(self._handles)} done>"
        )


def _split_concurrency(concurrency: int, active: int) -> list[int]:
    """Split a closed-loop concurrency bound across *active* shards.

    As even as possible, earlier shards take the remainder, and every
    active shard gets at least 1 (a shard with work must make progress).
    """
    if active == 0:
        return []
    base, extra = divmod(concurrency, active)
    return [max(1, base + (1 if index < extra else 0)) for index in range(active)]


def create_service(
    schema: DecisionFlowSchema,
    config: ExecutionConfig | Strategy | str | None = None,
    *,
    backend: Backend | str | None = None,
    **backend_options: Any,
) -> DecisionService | ShardedDecisionService:
    """The right facade for a config: plain service, or sharded fleet.

    A config asking for one serial shard is exactly a plain
    :class:`DecisionService`, so that is what it gets; anything else
    builds a :class:`ShardedDecisionService`.
    """
    coerced = coerce_config(config)
    if coerced.shards == 1 and coerced.executor == "serial":
        return DecisionService(schema, coerced, backend=backend, **backend_options)
    return ShardedDecisionService(schema, coerced, backend=backend, **backend_options)
