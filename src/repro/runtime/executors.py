"""Shard executors: how a sharded service drives its fleet of shards.

Two implementations behind one duck-typed interface, selected by
``ExecutionConfig.executor``:

* :class:`SerialExecutor` — every shard is a live, in-process
  :class:`~repro.api.service.DecisionService` driven on the calling
  thread, one shard after another.  Deterministic, incremental (submit /
  run / submit again), and the reference the differential suite locks the
  process executor against.
* :class:`ProcessExecutor` — submissions buffer as plain-data ops; one
  ``run()`` ships each non-empty shard's workload to a
  ``multiprocessing`` pool as a :class:`~repro.runtime.worker.ShardTask`
  and collects :class:`~repro.runtime.worker.ShardOutcome` results for
  merging.  Batch-oriented: exactly one execution round, to completion.

Both present the same per-shard operations to
:class:`~repro.runtime.sharding.ShardedDecisionService`; the service owns
routing, id allocation, and cross-shard aggregation.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.api.config import EXECUTORS, ExecutionConfig
from repro.api.service import DecisionService, InstanceHandle
from repro.core.metrics import MetricsSummary
from repro.core.schema import DecisionFlowSchema
from repro.core.serialize import SerializationError, config_to_dict, schema_to_dict
from repro.errors import ExecutionError
from repro.runtime.worker import InstanceRecord, ShardOutcome, ShardTask, execute_shard

__all__ = ["ShardStats", "SerialExecutor", "ProcessExecutor", "EXECUTOR_CLASSES"]


@dataclass(frozen=True)
class ShardStats:
    """One shard's aggregate state: population, work, and clock."""

    shard: int
    instances: int
    completed: int
    total_units: int
    queries_completed: int
    queries_cancelled: int
    queries_failed: int
    mean_gmpl: float
    end_time: float


def _shard_config(config: ExecutionConfig) -> ExecutionConfig:
    """The per-shard view of a sharded config: one shard, driven in-place."""
    return config.replace(shards=1, executor="serial")


class SerialExecutor:
    """All shards live in-process; ``run`` drives them one after another."""

    name = "serial"
    live = True

    def __init__(self, schema: DecisionFlowSchema, config: ExecutionConfig, shards: int):
        shard_config = _shard_config(config)
        self.services = [DecisionService(schema, shard_config) for _ in range(shards)]

    def submit(
        self,
        shard: int,
        instance_id: str,
        source_values: Mapping[str, object] | None,
        at: float | None,
    ) -> InstanceHandle:
        return self.services[shard].submit(
            source_values, at=at, instance_id=instance_id
        )

    def start_closed(
        self,
        shard: int,
        instance_ids: Sequence[str],
        values_list: Sequence[Mapping[str, object] | None],
        concurrency: int,
    ) -> list[InstanceHandle]:
        return self.services[shard].run_closed(
            len(instance_ids),
            concurrency=concurrency,
            values=lambda index: values_list[index],
            instance_ids=instance_ids,
            run=False,
        )

    def run(self, until: float | None = None, collect_events: bool = False) -> None:
        for service in self.services:
            service.run(until)

    def record_for(self, instance_id: str) -> InstanceRecord | None:
        return None  # serial handles are live; nothing to materialize

    # -- observation ---------------------------------------------------------

    _SUBSCRIBERS = {
        "launch": "on_launch",
        "query_done": "on_query_done",
        "complete": "on_instance_complete",
    }

    def subscribe(self, kind: str, handler: Callable) -> None:
        for service in self.services:
            getattr(service, self._SUBSCRIBERS[kind])(handler)

    def attach_sink(self, sink: Callable[[int, object], None]) -> None:
        """Feed every shard's typed events into ``sink(shard, event)``."""
        for index, service in enumerate(self.services):
            recorder = self._recorder(index, sink)
            service.on_launch(recorder)
            service.on_query_done(recorder)
            service.on_instance_complete(recorder)

    @staticmethod
    def _recorder(shard: int, sink: Callable[[int, object], None]) -> Callable:
        return lambda event: sink(shard, event)

    # -- aggregation ---------------------------------------------------------

    @property
    def now(self) -> float:
        return max(service.now for service in self.services)

    def shard_summaries(self) -> list[MetricsSummary]:
        return [service.summary() for service in self.services]

    def shard_stats(self) -> list[ShardStats]:
        return [
            ShardStats(
                shard=index,
                instances=len(service.handles),
                completed=len(service.completed),
                total_units=service.database.total_units,
                queries_completed=service.database.queries_completed,
                queries_cancelled=service.database.queries_cancelled,
                queries_failed=service.database.queries_failed,
                mean_gmpl=service.database.mean_gmpl(),
                end_time=service.now,
            )
            for index, service in enumerate(self.services)
        ]

    def time_unit(self) -> str | None:
        return self.services[0].backend.time_unit if self.services else None

    def dispatch_stats(self) -> list[dict]:
        return [service.dispatch_stats() for service in self.services]

    def obs_snapshots(self) -> list[dict]:
        return [service.observability() for service in self.services]

    def trace_groups(self) -> list[list]:
        return [service.obs.tracer.events() for service in self.services]


class ProcessExecutor:
    """Buffer shard workloads; one ``run`` executes them on a worker pool."""

    name = "process"
    live = False

    def __init__(self, schema: DecisionFlowSchema, config: ExecutionConfig, shards: int):
        self.schema = schema
        self.config = config
        self.shards = shards
        self._ops: list[list[tuple]] = [[] for _ in range(shards)]
        self._outcomes: list[ShardOutcome] | None = None
        self._records: dict[str, InstanceRecord] = {}
        #: last (mapping, frozen copy) pair: sweeps submit one shared
        #: mapping thousands of times, and reusing its frozen copy keeps
        #: the buffered ops — and the pickled ShardTask, via the pickler's
        #: memo — O(1) instead of O(n) in the mapping size.
        self._freeze_cache: tuple[object, dict | None] = (None, None)

    @property
    def ran(self) -> bool:
        return self._outcomes is not None

    def _ensure_open(self, action: str) -> None:
        if self.ran:
            raise ExecutionError(
                f"cannot {action}: the process executor executes exactly one "
                "round; use executor='serial' for incremental submission"
            )

    def submit(
        self,
        shard: int,
        instance_id: str,
        source_values: Mapping[str, object] | None,
        at: float | None,
    ) -> None:
        self._ensure_open("submit more instances after run()")
        if at is not None and at < 0.0:
            raise ExecutionError(
                f"instance {instance_id!r}: cannot start at past time {at} "
                "(shard clocks start at 0)"
            )
        self._ops[shard].append(("submit", instance_id, self._frozen(source_values), at))
        return None

    def _frozen(self, source_values: Mapping[str, object] | None) -> dict | None:
        """A snapshot of *source_values* as buffered (mutations after
        submit must not leak into the run), shared across repeat submits
        of the same mapping object."""
        if source_values is None:
            return None
        cached_key, cached_copy = self._freeze_cache
        if source_values is cached_key and cached_copy == source_values:
            return cached_copy
        frozen = dict(source_values)
        self._freeze_cache = (source_values, frozen)
        return frozen

    def start_closed(
        self,
        shard: int,
        instance_ids: Sequence[str],
        values_list: Sequence[Mapping[str, object] | None],
        concurrency: int,
    ) -> None:
        self._ensure_open("start a closed loop after run()")
        frozen = [self._frozen(v) for v in values_list]
        self._ops[shard].append(("closed", list(instance_ids), frozen, concurrency))
        return None

    def run(self, until: float | None = None, collect_events: bool = False) -> None:
        if until is not None:
            raise ExecutionError(
                "the process executor always drains shards to completion; "
                "run(until=...) needs executor='serial'"
            )
        if self.ran:
            return
        try:
            schema_data = schema_to_dict(self.schema)
            config_data = config_to_dict(self.config)
        except SerializationError as error:
            raise ExecutionError(
                "the process executor ships work to workers via "
                f"core.serialize and cannot encode this workload: {error}"
            ) from error
        tasks = [
            ShardTask(shard, schema_data, config_data, ops, collect_events)
            for shard, ops in enumerate(self._ops)
            if ops
        ]
        by_shard = {
            shard: ShardOutcome.idle(shard, self.config.backend, collect_events)
            for shard in range(self.shards)
        }
        if tasks:
            for outcome in self._execute(tasks):
                by_shard[outcome.shard] = outcome
        self._outcomes = [by_shard[shard] for shard in range(self.shards)]
        self._records = {
            record.instance_id: record
            for outcome in self._outcomes
            for record in outcome.records
        }

    def _execute(self, tasks: list[ShardTask]) -> list[ShardOutcome]:
        if len(tasks) == 1:
            # One busy shard gains nothing from a pool; skip the fork/pickle.
            return [execute_shard(tasks[0])]
        # Fork skips re-import in the workers, but only Linux treats it as
        # safe; everywhere else (macOS made spawn the default because fork
        # is not) the platform default start method is the right one, and
        # tasks/outcomes are fully picklable either way.
        if sys.platform == "linux":
            context = multiprocessing.get_context("fork")
        else:  # pragma: no cover - exercised on non-Linux CI hosts
            context = multiprocessing.get_context()
        workers = min(len(tasks), os.cpu_count() or len(tasks))
        with context.Pool(processes=workers) as pool:
            return pool.map(execute_shard, tasks)

    def record_for(self, instance_id: str) -> InstanceRecord | None:
        return self._records.get(instance_id)

    # -- aggregation ---------------------------------------------------------

    @property
    def outcomes(self) -> list[ShardOutcome]:
        if self._outcomes is None:
            raise ExecutionError("the process executor has not run yet")
        return self._outcomes

    @property
    def now(self) -> float:
        if self._outcomes is None:
            return 0.0
        return max((o.end_time for o in self._outcomes), default=0.0)

    def shard_summaries(self) -> list[MetricsSummary]:
        if self._outcomes is None:
            return [MetricsSummary.empty() for _ in range(self.shards)]
        return [outcome.summary for outcome in self._outcomes]

    def shard_stats(self) -> list[ShardStats]:
        if self._outcomes is None:
            return [
                ShardStats(
                    shard=shard,
                    instances=self._count_ops(self._ops[shard]),
                    completed=0,
                    total_units=0,
                    queries_completed=0,
                    queries_cancelled=0,
                    queries_failed=0,
                    mean_gmpl=0.0,
                    end_time=0.0,
                )
                for shard in range(self.shards)
            ]
        return [
            ShardStats(
                shard=outcome.shard,
                instances=len(outcome.records),
                completed=sum(1 for record in outcome.records if record.done),
                total_units=outcome.total_units,
                queries_completed=outcome.queries_completed,
                queries_cancelled=outcome.queries_cancelled,
                queries_failed=outcome.queries_failed,
                mean_gmpl=outcome.mean_gmpl,
                end_time=outcome.end_time,
            )
            for outcome in self._outcomes
        ]

    @staticmethod
    def _count_ops(ops: list[tuple]) -> int:
        return sum(len(op[1]) if op[0] == "closed" else 1 for op in ops)

    def time_unit(self) -> str | None:
        if self._outcomes is None:
            return None
        for outcome in self._outcomes:
            if outcome.time_unit is not None:
                return outcome.time_unit
        return None

    def dispatch_stats(self) -> list[dict]:
        if self._outcomes is None:
            return [
                {"pooled_batches": 0, "pooled_events": 0} for _ in range(self.shards)
            ]
        return [
            {
                "pooled_batches": outcome.pooled_batches,
                "pooled_events": outcome.pooled_events,
            }
            for outcome in self._outcomes
        ]

    def obs_snapshots(self) -> list[dict]:
        if self._outcomes is None:
            return [{} for _ in range(self.shards)]
        return [outcome.obs or {} for outcome in self._outcomes]

    def trace_groups(self) -> list[list]:
        if self._outcomes is None:
            return [[] for _ in range(self.shards)]
        return [outcome.trace or [] for outcome in self._outcomes]


#: Executor implementations behind ``ExecutionConfig.executor``; kept in
#: lockstep with the validation list in :data:`repro.api.config.EXECUTORS`
#: so a config that validates always resolves here.
EXECUTOR_CLASSES = {"serial": SerialExecutor, "process": ProcessExecutor}

if set(EXECUTOR_CLASSES) != set(EXECUTORS):  # pragma: no cover
    raise AssertionError(
        f"executor registry drift: config declares {EXECUTORS}, "
        f"runtime implements {tuple(EXECUTOR_CLASSES)}"
    )
