"""Shard executors: how a sharded service drives its fleet of shards.

Two implementations behind one duck-typed interface, selected by
``ExecutionConfig.executor``:

* :class:`SerialExecutor` — every shard is a live, in-process
  :class:`~repro.api.service.DecisionService` driven on the calling
  thread, one shard after another.  Deterministic, incremental (submit /
  run / submit again), and the reference the differential suite locks the
  process executor against.
* :class:`ProcessExecutor` — a fleet of **long-lived shard workers**:
  one process per shard, spawned once (lazily, at the first submission)
  and kept alive across rounds.  Submissions buffer as plain-data ops;
  every ``run()`` streams each shard's new ops down its pipe, the
  workers drive their live services concurrently, and incremental
  :class:`~repro.runtime.worker.ShardOutcome` frames come back for
  merging.  Fully incremental — submit → run → submit again matches the
  serial executor's contract — and ``run(until=...)`` is supported.

Both executors arm the shared L2 query tier
(:class:`~repro.runtime.l2cache.SharedQueryTier`) when the config asks
for the query cache with more than one shard: the serial executor's
shard services share the committed set in-process, the process executor
replicates it to worker mirrors as pipe deltas, and both commit pending
keys at the same round boundaries — so cache state, counters, and traces
are bit-identical across executors.

Both present the same per-shard operations to
:class:`~repro.runtime.sharding.ShardedDecisionService`; the service owns
routing, id allocation, and cross-shard aggregation.
"""

from __future__ import annotations

import multiprocessing
import sys
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.api.config import EXECUTORS, ExecutionConfig
from repro.api.service import DecisionService, InstanceHandle
from repro.core.metrics import MetricsSummary
from repro.core.schema import DecisionFlowSchema
from repro.core.serialize import SerializationError, config_to_dict, schema_to_dict
from repro.errors import ExecutionError
from repro.runtime.l2cache import SharedQueryTier
from repro.runtime.worker import InstanceRecord, ShardOutcome, worker_main

__all__ = ["ShardStats", "SerialExecutor", "ProcessExecutor", "EXECUTOR_CLASSES"]


@dataclass(frozen=True)
class ShardStats:
    """One shard's aggregate state: population, work, and clock."""

    shard: int
    instances: int
    completed: int
    total_units: int
    queries_completed: int
    queries_cancelled: int
    queries_failed: int
    mean_gmpl: float
    end_time: float


def _shard_config(config: ExecutionConfig) -> ExecutionConfig:
    """The per-shard view of a sharded config: one shard, driven in-place."""
    return config.replace(shards=1, executor="serial")


def _l2_tier(config: ExecutionConfig, shards: int) -> SharedQueryTier | None:
    """The shared L2 tier, when the config arms it (cache + >1 shard)."""
    if config.query_cache and shards > 1:
        return SharedQueryTier()
    return None


class SerialExecutor:
    """All shards live in-process; ``run`` drives them one after another."""

    name = "serial"
    live = True

    def __init__(self, schema: DecisionFlowSchema, config: ExecutionConfig, shards: int):
        shard_config = _shard_config(config)
        self._tier = _l2_tier(config, shards)
        self._views = (
            [self._tier.view() for _ in range(shards)]
            if self._tier is not None
            else [None] * shards
        )
        self.services = [
            DecisionService(schema, shard_config, query_cache_l2=view)
            for view in self._views
        ]

    def submit(
        self,
        shard: int,
        instance_id: str,
        source_values: Mapping[str, object] | None,
        at: float | None,
    ) -> InstanceHandle:
        return self.services[shard].submit(
            source_values, at=at, instance_id=instance_id
        )

    def start_closed(
        self,
        shard: int,
        instance_ids: Sequence[str],
        values_list: Sequence[Mapping[str, object] | None],
        concurrency: int,
    ) -> list[InstanceHandle]:
        return self.services[shard].run_closed(
            len(instance_ids),
            concurrency=concurrency,
            values=lambda index: values_list[index],
            instance_ids=instance_ids,
            run=False,
        )

    def run(self, until: float | None = None, collect_events: bool = False) -> None:
        for service in self.services:
            service.run(until)
        if self._tier is not None:
            # Round boundary: every shard has finished; commit the keys
            # they published so the *next* round can hit them.
            self._tier.commit([view.drain() for view in self._views])

    def record_for(self, instance_id: str) -> InstanceRecord | None:
        return None  # serial handles are live; nothing to materialize

    def round_events(self) -> list[list]:
        return [[] for _ in self.services]  # live delivery; nothing to replay

    def close(self) -> None:
        return None  # nothing external to tear down

    def worker_health(self) -> dict:
        return {
            "executor": self.name,
            "spawned": False,
            "alive": True,
            "workers": [],
        }

    # -- observation ---------------------------------------------------------

    _SUBSCRIBERS = {
        "launch": "on_launch",
        "query_done": "on_query_done",
        "complete": "on_instance_complete",
    }

    def subscribe(self, kind: str, handler: Callable) -> None:
        for service in self.services:
            getattr(service, self._SUBSCRIBERS[kind])(handler)

    def attach_sink(self, sink: Callable[[int, object], None]) -> None:
        """Feed every shard's typed events into ``sink(shard, event)``."""
        for index, service in enumerate(self.services):
            recorder = self._recorder(index, sink)
            service.on_launch(recorder)
            service.on_query_done(recorder)
            service.on_instance_complete(recorder)

    @staticmethod
    def _recorder(shard: int, sink: Callable[[int, object], None]) -> Callable:
        return lambda event: sink(shard, event)

    # -- aggregation ---------------------------------------------------------

    @property
    def now(self) -> float:
        return max(service.now for service in self.services)

    def shard_summaries(self) -> list[MetricsSummary]:
        return [service.summary() for service in self.services]

    def shard_stats(self) -> list[ShardStats]:
        return [
            ShardStats(
                shard=index,
                instances=len(service.handles),
                completed=len(service.completed),
                total_units=service.database.total_units,
                queries_completed=service.database.queries_completed,
                queries_cancelled=service.database.queries_cancelled,
                queries_failed=service.database.queries_failed,
                mean_gmpl=service.database.mean_gmpl(),
                end_time=service.now,
            )
            for index, service in enumerate(self.services)
        ]

    def time_unit(self) -> str | None:
        return self.services[0].backend.time_unit if self.services else None

    def dispatch_stats(self) -> list[dict]:
        return [service.dispatch_stats() for service in self.services]

    def obs_snapshots(self) -> list[dict]:
        return [service.observability() for service in self.services]

    def trace_groups(self) -> list[list]:
        return [service.obs.tracer.events() for service in self.services]


class _WorkerLink:
    """One persistent shard worker: its process and the parent pipe end."""

    __slots__ = ("shard", "process", "conn")

    def __init__(self, shard: int, process, conn):
        self.shard = shard
        self.process = process
        self.conn = conn


class ProcessExecutor:
    """One long-lived worker process per shard, streaming ops over pipes.

    Workers spawn lazily at the first submission (after the workload
    proves serializable) and persist across rounds: each ``run()`` sends
    every worker its buffered ops plus the shared-cache delta, lets the
    fleet execute concurrently, then drains one incremental
    :class:`~repro.runtime.worker.ShardOutcome` per shard.  Aggregate
    reads between rounds come from the cached outcomes — workers idle
    between rounds, so the cache is exact and costs no IPC.

    A dead worker surfaces as a named :class:`ExecutionError` on the
    next send or receive (a closed pipe raises immediately — no hang).
    ``close()`` shuts the fleet down; it runs automatically on garbage
    collection and the workers are daemonic besides, so leaked fleets
    die with the parent.
    """

    name = "process"
    live = False

    def __init__(self, schema: DecisionFlowSchema, config: ExecutionConfig, shards: int):
        self.schema = schema
        self.config = config
        self.shards = shards
        self._ops: list[list[tuple]] = [[] for _ in range(shards)]
        self._outcomes: list[ShardOutcome] | None = None
        self._records: dict[str, InstanceRecord] = {}
        self._round_events: list[list] = [[] for _ in range(shards)]
        self._workers: list[_WorkerLink] | None = None
        self._closed = False
        self._tier = _l2_tier(config, shards)
        #: completed executor rounds (each run() that reached the fleet)
        self.rounds = 0
        #: last (mapping, frozen copy) pair: sweeps submit one shared
        #: mapping thousands of times, and reusing its frozen copy keeps
        #: the buffered ops — and the pickled op list, via the pickler's
        #: memo — O(1) instead of O(n) in the mapping size.
        self._freeze_cache: tuple[object, dict | None] = (None, None)

    # -- worker lifecycle ----------------------------------------------------

    def _ensure_workers(self) -> list[_WorkerLink]:
        if self._closed:
            raise ExecutionError(
                "the process executor is closed; its shard workers have shut down"
            )
        if self._workers is not None:
            return self._workers
        try:
            schema_data = schema_to_dict(self.schema)
            config_data = config_to_dict(self.config)
        except SerializationError as error:
            raise ExecutionError(
                "the process executor ships work to its shard workers via "
                f"core.serialize and cannot encode this workload: {error}"
            ) from error
        # Fork skips re-import in the workers, but only Linux treats it as
        # safe; everywhere else (macOS made spawn the default because fork
        # is not) the platform default start method is the right one, and
        # every frame on the pipe is fully picklable either way.
        if sys.platform == "linux":
            context = multiprocessing.get_context("fork")
        else:  # pragma: no cover - exercised on non-Linux CI hosts
            context = multiprocessing.get_context()
        workers = []
        for shard in range(self.shards):
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=worker_main,
                args=(child_conn, shard, schema_data, config_data, self._tier is not None),
                name=f"repro-shard-{shard}",
                daemon=True,
            )
            process.start()
            child_conn.close()
            workers.append(_WorkerLink(shard, process, parent_conn))
        self._workers = workers
        return workers

    def _worker_died(self, link: _WorkerLink) -> ExecutionError:
        exitcode = link.process.exitcode
        return ExecutionError(
            f"shard {link.shard} worker (pid {link.process.pid}) died"
            f"{f' with exit code {exitcode}' if exitcode is not None else ''}; "
            "the persistent process executor cannot recover its shard state — "
            "close() this service and rebuild it"
        )

    def _send(self, link: _WorkerLink, message: tuple) -> None:
        try:
            link.conn.send(message)
        except (BrokenPipeError, OSError) as error:
            raise self._worker_died(link) from error

    def _recv(self, link: _WorkerLink):
        try:
            frame = link.conn.recv()
        except (EOFError, OSError) as error:
            raise self._worker_died(link) from error
        if frame[0] == "error":
            _, type_name, message, trace = frame
            raise ExecutionError(
                f"shard {link.shard} worker failed: {type_name}: {message}\n"
                f"--- worker traceback ---\n{trace}"
            )
        return frame[1]

    def close(self) -> None:
        """Shut the worker fleet down (idempotent; runs again on gc)."""
        if self._closed:
            return
        self._closed = True
        workers, self._workers = self._workers, None
        if not workers:
            return
        for link in workers:
            try:
                link.conn.send(("shutdown",))
            except (BrokenPipeError, OSError):
                pass
        for link in workers:
            try:
                if link.conn.poll(2.0):
                    link.conn.recv()
            except (EOFError, OSError):
                pass
            link.conn.close()
            link.process.join(timeout=2.0)
            if link.process.is_alive():  # pragma: no cover - stuck worker
                link.process.terminate()
                link.process.join(timeout=1.0)

    def __del__(self):  # pragma: no cover - gc timing dependent
        try:
            self.close()
        except Exception:
            pass

    def worker_health(self) -> dict:
        """Liveness of the persistent fleet, for daemon ``/healthz``."""
        if self._workers is None:
            return {
                "executor": self.name,
                "spawned": False,
                "alive": not self._closed,
                "workers": [],
            }
        workers = [
            {
                "shard": link.shard,
                "pid": link.process.pid,
                "alive": link.process.is_alive(),
            }
            for link in self._workers
        ]
        return {
            "executor": self.name,
            "spawned": True,
            "alive": all(entry["alive"] for entry in workers),
            "workers": workers,
        }

    # -- submission ----------------------------------------------------------

    def submit(
        self,
        shard: int,
        instance_id: str,
        source_values: Mapping[str, object] | None,
        at: float | None,
    ) -> None:
        floor = self._floor(shard)
        if at is not None and at < floor:
            # Mirror the engine's own submit-time check so the error
            # surfaces here, exactly as it does on the serial executor,
            # instead of as a worker error frame at the next run().
            raise ExecutionError(
                f"instance {instance_id!r}: cannot start at past time {at} "
                f"(simulation clock is at {floor})"
            )
        self._ensure_workers()
        self._ops[shard].append(("submit", instance_id, self._frozen(source_values), at))
        return None

    def _floor(self, shard: int) -> float:
        """One shard's earliest admissible start time: its clock position.

        Shard clocks only move during rounds; between rounds the cached
        outcomes are exact, so the last outcome's ``end_time`` *is* the
        worker's live ``sim.now``.
        """
        if self._outcomes is None:
            return 0.0
        return self._outcomes[shard].end_time

    def _frozen(self, source_values: Mapping[str, object] | None) -> dict | None:
        """A snapshot of *source_values* as buffered (mutations after
        submit must not leak into the run), shared across repeat submits
        of the same mapping object."""
        if source_values is None:
            return None
        cached_key, cached_copy = self._freeze_cache
        if source_values is cached_key and cached_copy == source_values:
            return cached_copy
        frozen = dict(source_values)
        self._freeze_cache = (source_values, frozen)
        return frozen

    def start_closed(
        self,
        shard: int,
        instance_ids: Sequence[str],
        values_list: Sequence[Mapping[str, object] | None],
        concurrency: int,
    ) -> None:
        self._ensure_workers()
        frozen = [self._frozen(v) for v in values_list]
        self._ops[shard].append(("closed", list(instance_ids), frozen, concurrency))
        return None

    # -- driving -------------------------------------------------------------

    def run(self, until: float | None = None, collect_events: bool = False) -> None:
        if self._closed:
            raise ExecutionError(
                "the process executor is closed; its shard workers have shut down"
            )
        if self._workers is None:
            # Nothing was ever submitted: an idle fleet, no spawn needed.
            if self._outcomes is None:
                self._outcomes = [
                    ShardOutcome.idle(shard, self.config.backend, collect_events)
                    for shard in range(self.shards)
                ]
            self._round_events = [[] for _ in range(self.shards)]
            return
        added, removed = self._tier.take_delta() if self._tier is not None else ([], [])
        ops, self._ops = self._ops, [[] for _ in range(self.shards)]
        # Send every shard's round first, then drain in shard order: the
        # whole fleet executes concurrently and the parent blocks only on
        # the slowest shard.
        for link in self._workers:
            self._send(
                link,
                ("run", ops[link.shard], until, collect_events, added, removed),
            )
        outcomes: list[ShardOutcome] = []
        new_keys: list[list] = []
        for link in self._workers:
            outcome, keys = self._recv(link)
            outcomes.append(outcome)
            new_keys.append(keys)
        if self._tier is not None:
            self._tier.commit(new_keys)
        self._outcomes = outcomes
        self._round_events = [outcome.events or [] for outcome in outcomes]
        for outcome in outcomes:
            for record in outcome.records:
                self._records[record.instance_id] = record
        self.rounds += 1

    def record_for(self, instance_id: str) -> InstanceRecord | None:
        return self._records.get(instance_id)

    def round_events(self) -> list[list]:
        """Per-shard events newly collected by the last round."""
        return self._round_events

    def snapshots(self) -> list[dict]:
        """Live worker snapshots (one pipe round-trip per shard)."""
        workers = self._ensure_workers()
        for link in workers:
            self._send(link, ("snapshot",))
        return [self._recv(link) for link in workers]

    # -- aggregation ---------------------------------------------------------

    @property
    def outcomes(self) -> list[ShardOutcome]:
        if self._outcomes is None:
            raise ExecutionError("the process executor has not run yet")
        return self._outcomes

    @property
    def now(self) -> float:
        if self._outcomes is None:
            return 0.0
        return max((o.end_time for o in self._outcomes), default=0.0)

    def shard_summaries(self) -> list[MetricsSummary]:
        if self._outcomes is None:
            return [MetricsSummary.empty() for _ in range(self.shards)]
        return [outcome.summary for outcome in self._outcomes]

    def shard_stats(self) -> list[ShardStats]:
        if self._outcomes is None:
            return [
                ShardStats(
                    shard=shard,
                    instances=self._count_ops(self._ops[shard]),
                    completed=0,
                    total_units=0,
                    queries_completed=0,
                    queries_cancelled=0,
                    queries_failed=0,
                    mean_gmpl=0.0,
                    end_time=0.0,
                )
                for shard in range(self.shards)
            ]
        return [
            ShardStats(
                shard=outcome.shard,
                instances=outcome.instances,
                completed=outcome.completed,
                total_units=outcome.total_units,
                queries_completed=outcome.queries_completed,
                queries_cancelled=outcome.queries_cancelled,
                queries_failed=outcome.queries_failed,
                mean_gmpl=outcome.mean_gmpl,
                end_time=outcome.end_time,
            )
            for outcome in self._outcomes
        ]

    @staticmethod
    def _count_ops(ops: list[tuple]) -> int:
        return sum(len(op[1]) if op[0] == "closed" else 1 for op in ops)

    def time_unit(self) -> str | None:
        if self._outcomes is None:
            return None
        for outcome in self._outcomes:
            if outcome.time_unit is not None:
                return outcome.time_unit
        return None

    def dispatch_stats(self) -> list[dict]:
        if self._outcomes is None:
            return [
                {"pooled_batches": 0, "pooled_events": 0} for _ in range(self.shards)
            ]
        return [
            {
                "pooled_batches": outcome.pooled_batches,
                "pooled_events": outcome.pooled_events,
            }
            for outcome in self._outcomes
        ]

    def obs_snapshots(self) -> list[dict]:
        if self._outcomes is None:
            return [{} for _ in range(self.shards)]
        return [outcome.obs or {} for outcome in self._outcomes]

    def trace_groups(self) -> list[list]:
        if self._outcomes is None:
            return [[] for _ in range(self.shards)]
        return [outcome.trace or [] for outcome in self._outcomes]


#: Executor implementations behind ``ExecutionConfig.executor``; kept in
#: lockstep with the validation list in :data:`repro.api.config.EXECUTORS`
#: so a config that validates always resolves here.
EXECUTOR_CLASSES = {"serial": SerialExecutor, "process": ProcessExecutor}

if set(EXECUTOR_CLASSES) != set(EXECUTORS):  # pragma: no cover
    raise AssertionError(
        f"executor registry drift: config declares {EXECUTORS}, "
        f"runtime implements {tuple(EXECUTOR_CLASSES)}"
    )
