"""The shared L2 query-cache tier: cross-shard result reuse.

PR 4 made sharding strictly partitioned — "sharing is per-shard by
design" — so two shards answering the same expensive query each paid for
it.  This module is the cross-shard tier above the per-shard
:class:`~repro.simdb.database.QueryShareCache` (the L1): keys whose
queries *completed successfully* anywhere in the fleet are published
here, and every shard's L1 probes the tier on a miss before dispatching
to its database.

Round-boundary commit semantics
-------------------------------

Shards must stay deterministic and executor-independent, so the tier is
**not** a live shared dict: during one executor ``run()`` round every
shard sees exactly the keys *committed before the round started*, and
the keys it completes during the round buffer in a per-shard pending set.
When every shard has finished the round, the owner commits all pending
sets (in shard order) into the committed set.  Consequences:

* the serial executor (shards run one after another) and the process
  executor (shards run concurrently) observe byte-identical cache state,
  so traces and counters match exactly — the differential suites pin
  this;
* a single-round batch run never observes the tier at all (nothing was
  committed before its only round), so existing single-round rings are
  unaffected;
* cross-shard reuse materializes *across rounds* — exactly the shape of
  the server daemon's drain-loop epochs, where it pays off.

Replication to worker processes is by **delta over the worker pipes**,
not a ``multiprocessing.Manager`` proxy: a Manager round-trips ~100 µs
per probe, which would dwarf the dispatch it saves on all-distinct
workloads.  Instead the parent owns the committed set; each round
command carries the ``(added, removed)`` delta from the previous commit
and each round response carries the shard's newly pending keys, so
workers probe a local mirror at dict-lookup cost.

Only completion *facts* are stored (key → present), never payloads —
query values are deterministic functions of their inputs in this
simulation (the paper's fixed-data assumption), so knowing a key
completed is enough for the L1 to serve it as a zero-delay hit.  Failed
queries are never published (the L1 never memoizes them either), so
failures always retry.

The committed set is FIFO-bounded by :data:`L2_MEMO_LIMIT`; evictions
are decided at commit time by the owner and shipped in the same delta,
keeping mirrors exact.
"""

from __future__ import annotations

__all__ = ["ShardL2View", "SharedQueryTier", "L2_MEMO_LIMIT"]

#: Bound on committed keys in one :class:`SharedQueryTier` (FIFO evicted
#: at commit time).  An open-system daemon runs indefinitely; without a
#: bound the tier would grow one key per distinct query forever.
L2_MEMO_LIMIT = 65536


class ShardL2View:
    """One shard's window onto the shared tier.

    ``committed`` is the key membership the shard may *read* this round:
    the owner's committed mapping itself under the serial executor, or a
    worker-local mirror ``set`` kept exact by pipe deltas under the
    process executor.  ``publish`` buffers into the shard's private
    pending dict (insertion-ordered — commit order must not depend on
    hash seeds), drained by the round owner at the round boundary.
    """

    __slots__ = ("_committed", "_pending")

    def __init__(self, committed):
        self._committed = committed
        self._pending: dict = {}

    def probe(self, key) -> bool:
        """Whether *key* was committed before this round started."""
        return key in self._committed

    def publish(self, key) -> bool:
        """Buffer a successfully completed *key* for the next commit.

        Returns True when the key is new to this shard's view (not
        committed, not already pending here) — the caller counts that as
        one L1→L2 promotion.  Two shards publishing the same key in the
        same round each count one; the commit dedupes.
        """
        if key in self._committed or key in self._pending:
            return False
        self._pending[key] = True
        return True

    def drain(self) -> list:
        """Take this round's pending keys, in publish order."""
        keys = list(self._pending)
        self._pending.clear()
        return keys

    def apply_delta(self, added, removed) -> None:
        """Sync a worker-local mirror with the owner's last commit."""
        committed = self._committed
        committed.update(added)
        committed.difference_update(removed)

    def __repr__(self) -> str:
        return (
            f"<ShardL2View committed={len(self._committed)} "
            f"pending={len(self._pending)}>"
        )


class SharedQueryTier:
    """The owner of the committed key set, living in the parent process.

    The serial executor hands each shard a view sharing the committed
    mapping directly; the process executor keeps the tier authoritative
    and replicates commits to worker mirrors as ``(added, removed)``
    deltas (see the module docstring).  ``commit`` runs once per
    executor round, after every shard has finished.
    """

    def __init__(self, limit: int = L2_MEMO_LIMIT):
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        self.limit = limit
        #: committed keys in commit order (insertion-ordered for FIFO)
        self._committed: dict = {}
        self._last_added: list = []
        self._last_removed: list = []

    def view(self) -> ShardL2View:
        """A serial-executor shard view sharing the committed mapping."""
        return ShardL2View(self._committed)

    def commit(self, per_shard_keys) -> None:
        """Fold every shard's drained pending keys into the committed set.

        *per_shard_keys* is one key list per shard, in shard order —
        the one total order both executors produce — so the committed
        set's content and FIFO eviction order are deterministic.
        """
        committed = self._committed
        added: list = []
        removed: list = []
        for keys in per_shard_keys:
            for key in keys:
                if key not in committed:
                    committed[key] = True
                    added.append(key)
        while len(committed) > self.limit:
            oldest = next(iter(committed))
            del committed[oldest]
            removed.append(oldest)
        self._last_added = added
        self._last_removed = removed

    def take_delta(self) -> tuple[list, list]:
        """The ``(added, removed)`` lists of the last commit, once.

        The process executor ships this down with the next round command;
        taking it clears it, so every delta reaches the mirrors exactly
        one time.
        """
        added, removed = self._last_added, self._last_removed
        self._last_added, self._last_removed = [], []
        return added, removed

    @property
    def committed_size(self) -> int:
        return len(self._committed)

    def __repr__(self) -> str:
        return f"<SharedQueryTier committed={len(self._committed)}/{self.limit}>"
