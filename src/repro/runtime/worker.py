"""Worker-side execution of one shard's workload.

A shard workload crosses the process boundary as a :class:`ShardTask`:
the schema and :class:`~repro.api.config.ExecutionConfig` travel as the
plain dicts of :mod:`repro.core.serialize`, and the submissions travel as
an ordered op list (individual submits and closed-loop specs).  The
worker rebuilds a single-shard :class:`~repro.api.service.DecisionService`
from them, replays the ops, drains the shard's private simulation, and
returns a :class:`ShardOutcome` — per-instance value maps and metrics,
the shard's :class:`~repro.core.metrics.MetricsSummary`, database totals,
and (when requested) the shard's typed event sequence.

Everything here is deliberately process-agnostic: :func:`execute_shard`
is a pure function of its task, so the serial test suite calls it
in-process to pin down exactly what the multiprocessing executor ships.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api.service import DecisionService
from repro.core.metrics import InstanceMetrics, MetricsSummary
from repro.core.serialize import config_from_dict, schema_from_dict
from repro.errors import ExecutionError

__all__ = ["ShardTask", "ShardOutcome", "InstanceRecord", "execute_shard"]


@dataclass
class ShardTask:
    """One shard's complete workload, in plain picklable form.

    ``ops`` replays in order; each op is either
    ``("submit", instance_id, source_values, at)`` or
    ``("closed", instance_ids, values_list, concurrency)``.
    """

    shard: int
    schema_data: dict
    config_data: dict
    ops: list[tuple]
    collect_events: bool = False


@dataclass
class InstanceRecord:
    """The materialized result of one instance: values plus final metrics."""

    instance_id: str
    done: bool
    values: dict[str, object]
    metrics: InstanceMetrics


@dataclass
class ShardOutcome:
    """Everything a shard reports back for cross-shard aggregation."""

    shard: int
    records: list[InstanceRecord]
    summary: MetricsSummary
    total_units: int
    queries_completed: int
    queries_cancelled: int
    queries_failed: int
    mean_gmpl: float
    end_time: float
    backend_name: str
    time_unit: str | None
    events: list[object] | None
    #: pooled-dispatch counters (always shipped; zero under per-event)
    pooled_batches: int = 0
    pooled_events: int = 0
    #: repro.obs payloads (None unless config.observe armed the shard):
    #: the registry snapshot and the flight-recorder event tuples, merged
    #: by the sharded service exactly like the metrics summary.
    obs: dict | None = None
    trace: list[tuple] | None = None

    @classmethod
    def idle(cls, shard: int, backend_name: str, collect_events: bool) -> "ShardOutcome":
        """The outcome of a shard that received no work."""
        return cls(
            shard=shard,
            records=[],
            summary=MetricsSummary.empty(),
            total_units=0,
            queries_completed=0,
            queries_cancelled=0,
            queries_failed=0,
            mean_gmpl=0.0,
            end_time=0.0,
            backend_name=backend_name,
            time_unit=None,
            events=[] if collect_events else None,
        )


def _replay_ops(service: DecisionService, ops: list[tuple]) -> None:
    for op in ops:
        kind = op[0]
        if kind == "submit":
            _, instance_id, source_values, at = op
            service.submit(source_values, at=at, instance_id=instance_id)
        elif kind == "closed":
            _, instance_ids, values_list, concurrency = op
            service.run_closed(
                len(instance_ids),
                concurrency=concurrency,
                values=lambda index: values_list[index],
                instance_ids=instance_ids,
                run=False,
            )
        else:  # pragma: no cover - guarded by the executor's op builders
            raise ExecutionError(f"unknown shard op {kind!r}")


def execute_shard(task: ShardTask) -> ShardOutcome:
    """Rebuild, replay, and drain one shard; return its outcome."""
    schema = schema_from_dict(task.schema_data)
    config = config_from_dict(task.config_data).replace(shards=1, executor="serial")
    service = DecisionService(schema, config)
    log = service.attach_log() if task.collect_events else None
    _replay_ops(service, task.ops)
    service.run()
    database = service.database
    return ShardOutcome(
        shard=task.shard,
        records=[
            InstanceRecord(
                instance_id=handle.instance_id,
                done=handle.done,
                values=dict(handle.instance.value_map()),
                metrics=handle.metrics,
            )
            for handle in service.handles
        ],
        summary=service.summary(),
        total_units=database.total_units,
        queries_completed=database.queries_completed,
        queries_cancelled=database.queries_cancelled,
        queries_failed=database.queries_failed,
        mean_gmpl=database.mean_gmpl(),
        end_time=service.now,
        backend_name=service.backend.name,
        time_unit=service.backend.time_unit,
        events=list(log.events) if log is not None else None,
        pooled_batches=service.engine.pooled_batches,
        pooled_events=service.engine.pooled_events,
        obs=service.observability() if service.obs.enabled else None,
        trace=service.obs.tracer.events() if service.obs.enabled else None,
    )
