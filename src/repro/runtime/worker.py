"""Worker-side execution of one shard's workload.

A shard workload crosses the process boundary as a :class:`ShardTask`:
the schema and :class:`~repro.api.config.ExecutionConfig` travel as the
plain dicts of :mod:`repro.core.serialize`, and the submissions travel as
an ordered op list (individual submits and closed-loop specs).  The
worker rebuilds a single-shard :class:`~repro.api.service.DecisionService`
from them, replays the ops, drains the shard's private simulation, and
returns a :class:`ShardOutcome` — per-instance value maps and metrics,
the shard's :class:`~repro.core.metrics.MetricsSummary`, database totals,
and (when requested) the shard's typed event sequence.

Two execution shapes share those frames:

* :func:`execute_shard` — the original one-shot form: one task in, one
  outcome out.  Pure and process-agnostic, so the serial test suite
  calls it in-process to pin down exactly what crosses the pipe.
* :func:`worker_main` — the **persistent worker loop** behind the
  process executor: spawned once per shard, it keeps a live service
  across rounds and serves framed commands over a
  ``multiprocessing`` pipe until told to shut down:

  - ``("run", ops, until, collect_events, l2_added, l2_removed)`` —
    apply the shared-cache delta, replay the new ops, drive the shard
    (to *until*, or dry), reply ``("ok", (outcome, l2_new_keys))``.
    The outcome's ``records`` are *incremental*: instances already
    reported done are skipped, live ones are re-reported each round
    until they finish; ``events`` carry only this round's new events.
  - ``("snapshot",)`` — reply a small liveness/population payload
    without driving anything.
  - ``("shutdown",)`` — acknowledge and exit.

  Any exception is shipped back as
  ``("error", type_name, message, traceback)`` instead of killing the
  worker, so the parent can raise a useful
  :class:`~repro.errors.ExecutionError`.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass

from repro.api.service import DecisionService
from repro.core.metrics import InstanceMetrics, MetricsSummary
from repro.core.serialize import config_from_dict, schema_from_dict
from repro.errors import ExecutionError
from repro.runtime.l2cache import ShardL2View

__all__ = [
    "ShardTask",
    "ShardOutcome",
    "InstanceRecord",
    "execute_shard",
    "worker_main",
]


@dataclass
class ShardTask:
    """One shard's complete workload, in plain picklable form.

    ``ops`` replays in order; each op is either
    ``("submit", instance_id, source_values, at)`` or
    ``("closed", instance_ids, values_list, concurrency)``.
    """

    shard: int
    schema_data: dict
    config_data: dict
    ops: list[tuple]
    collect_events: bool = False


@dataclass
class InstanceRecord:
    """The materialized result of one instance: values plus final metrics."""

    instance_id: str
    done: bool
    values: dict[str, object]
    metrics: InstanceMetrics


@dataclass
class ShardOutcome:
    """Everything a shard reports back for cross-shard aggregation."""

    shard: int
    records: list[InstanceRecord]
    summary: MetricsSummary
    total_units: int
    queries_completed: int
    queries_cancelled: int
    queries_failed: int
    mean_gmpl: float
    end_time: float
    backend_name: str
    time_unit: str | None
    events: list[object] | None
    #: pooled-dispatch counters (always shipped; zero under per-event)
    pooled_batches: int = 0
    pooled_events: int = 0
    #: repro.obs payloads (None unless config.observe armed the shard):
    #: the registry snapshot and the flight-recorder event tuples, merged
    #: by the sharded service exactly like the metrics summary.
    obs: dict | None = None
    trace: list[tuple] | None = None
    #: shard population totals — records are incremental under the
    #: persistent worker, so per-shard counts travel explicitly.
    instances: int = 0
    completed: int = 0

    @classmethod
    def idle(cls, shard: int, backend_name: str, collect_events: bool) -> "ShardOutcome":
        """The outcome of a shard that received no work."""
        return cls(
            shard=shard,
            records=[],
            summary=MetricsSummary.empty(),
            total_units=0,
            queries_completed=0,
            queries_cancelled=0,
            queries_failed=0,
            mean_gmpl=0.0,
            end_time=0.0,
            backend_name=backend_name,
            time_unit=None,
            events=[] if collect_events else None,
        )


def _replay_ops(service: DecisionService, ops: list[tuple]) -> None:
    for op in ops:
        kind = op[0]
        if kind == "submit":
            _, instance_id, source_values, at = op
            service.submit(source_values, at=at, instance_id=instance_id)
        elif kind == "closed":
            _, instance_ids, values_list, concurrency = op
            service.run_closed(
                len(instance_ids),
                concurrency=concurrency,
                values=lambda index: values_list[index],
                instance_ids=instance_ids,
                run=False,
            )
        else:  # pragma: no cover - guarded by the executor's op builders
            raise ExecutionError(f"unknown shard op {kind!r}")


def _shard_outcome(
    service: DecisionService,
    shard: int,
    records: list[InstanceRecord],
    events: list[object] | None,
) -> ShardOutcome:
    """Assemble an outcome from a live shard service (shared by both shapes)."""
    database = service.database
    return ShardOutcome(
        shard=shard,
        records=records,
        summary=service.summary(),
        total_units=database.total_units,
        queries_completed=database.queries_completed,
        queries_cancelled=database.queries_cancelled,
        queries_failed=database.queries_failed,
        mean_gmpl=database.mean_gmpl(),
        end_time=service.now,
        backend_name=service.backend.name,
        time_unit=service.backend.time_unit,
        events=events,
        pooled_batches=service.engine.pooled_batches,
        pooled_events=service.engine.pooled_events,
        obs=service.observability() if service.obs.enabled else None,
        trace=service.obs.tracer.events() if service.obs.enabled else None,
        instances=len(service.handles),
        completed=sum(1 for handle in service.handles if handle.done),
    )


def execute_shard(task: ShardTask) -> ShardOutcome:
    """Rebuild, replay, and drain one shard in one shot; return its outcome."""
    schema = schema_from_dict(task.schema_data)
    config = config_from_dict(task.config_data).replace(shards=1, executor="serial")
    service = DecisionService(schema, config)
    log = service.attach_log() if task.collect_events else None
    _replay_ops(service, task.ops)
    service.run()
    records = [
        InstanceRecord(
            instance_id=handle.instance_id,
            done=handle.done,
            values=dict(handle.instance.value_map()),
            metrics=handle.metrics,
        )
        for handle in service.handles
    ]
    events = list(log.events) if log is not None else None
    return _shard_outcome(service, task.shard, records, events)


class _PersistentShard:
    """The live state one persistent worker keeps between rounds."""

    def __init__(self, shard: int, schema_data: dict, config_data: dict, l2_armed: bool):
        schema = schema_from_dict(schema_data)
        config = config_from_dict(config_data).replace(shards=1, executor="serial")
        #: worker-local mirror of the parent's committed L2 key set,
        #: kept exact by the (added, removed) delta on each run command.
        self.view = ShardL2View(set()) if l2_armed else None
        self.service = DecisionService(schema, config, query_cache_l2=self.view)
        self.shard = shard
        self.log = None
        self._events_sent = 0
        self._reported_done: set[str] = set()

    def round(
        self,
        ops: list[tuple],
        until: float | None,
        collect_events: bool,
        l2_added: list,
        l2_removed: list,
    ) -> tuple[ShardOutcome, list]:
        if self.view is not None:
            self.view.apply_delta(l2_added, l2_removed)
        if collect_events and self.log is None:
            # Late observer attach: collection starts this round; earlier
            # rounds' events are gone, matching the documented contract.
            self.log = self.service.attach_log()
        _replay_ops(self.service, ops)
        self.service.run(until)
        return self._outcome(), self._drain_l2()

    def _drain_l2(self) -> list:
        return self.view.drain() if self.view is not None else []

    def _outcome(self) -> ShardOutcome:
        service = self.service
        records = []
        for handle in service.handles:
            instance_id = handle.instance_id
            if instance_id in self._reported_done:
                continue
            done = handle.done
            records.append(
                InstanceRecord(
                    instance_id=instance_id,
                    done=done,
                    values=dict(handle.instance.value_map()),
                    metrics=handle.metrics,
                )
            )
            if done:
                self._reported_done.add(instance_id)
        events = None
        if self.log is not None:
            all_events = self.log.events
            events = list(all_events[self._events_sent:])
            self._events_sent = len(all_events)
        return _shard_outcome(service, self.shard, records, events)

    def snapshot(self) -> dict:
        service = self.service
        return {
            "shard": self.shard,
            "instances": len(service.handles),
            "completed": sum(1 for handle in service.handles if handle.done),
            "now": service.now,
        }


def worker_main(
    conn, shard: int, schema_data: dict, config_data: dict, l2_armed: bool
) -> None:
    """Entry point of one persistent shard worker process.

    Serves framed commands on *conn* until ``("shutdown",)`` arrives or
    the pipe closes (parent death: exit quietly, never hang).  The shard
    service is built lazily on the first command so construction errors
    travel back as error frames instead of a bare dead pipe.
    """
    state: _PersistentShard | None = None
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        kind = message[0]
        if kind == "shutdown":
            try:
                conn.send(("ok", None))
            except (BrokenPipeError, OSError):
                pass
            return
        try:
            if state is None:
                state = _PersistentShard(shard, schema_data, config_data, l2_armed)
            if kind == "run":
                _, ops, until, collect_events, l2_added, l2_removed = message
                payload = state.round(ops, until, collect_events, l2_added, l2_removed)
            elif kind == "snapshot":
                payload = state.snapshot()
            else:
                raise ExecutionError(f"unknown worker command {kind!r}")
            conn.send(("ok", payload))
        except BaseException as error:  # noqa: BLE001 - shipped to the parent
            try:
                conn.send(
                    ("error", type(error).__name__, str(error), traceback.format_exc())
                )
            except (BrokenPipeError, OSError):
                return
