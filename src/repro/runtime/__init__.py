"""repro.runtime — the sharded execution runtime.

Scale-out layer over :mod:`repro.api`: a
:class:`ShardedDecisionService` presents the ``DecisionService`` facade
while partitioning instances across independent engine + DES + database
shards (stable-hash or least-loaded placement), driven in-process
(``executor="serial"``) or by a fleet of long-lived worker processes
(``executor="process"``, one persistent worker per shard streaming ops
over pipes).  With the query cache armed on a multi-shard fleet, a
shared L2 tier (:mod:`repro.runtime.l2cache`) lets any shard reuse
query results the fleet already paid for.

Quickstart::

    from repro.api import ExecutionConfig
    from repro.runtime import create_service

    config = ExecutionConfig.from_code("PSE80", shards=4, executor="process")
    service = create_service(pattern.schema, config)
    service.submit_stream(arrivals, values=pattern.source_values)
    print(service.summary().count, service.total_units)
    service.close()  # shut the persistent worker fleet down
"""

from repro.runtime.executors import ShardStats
from repro.runtime.l2cache import L2_MEMO_LIMIT, SharedQueryTier, ShardL2View
from repro.runtime.sharding import (
    MergedEventLog,
    ShardedDecisionService,
    ShardedInstanceHandle,
    create_service,
    merge_shard_events,
    shard_of,
)
from repro.runtime.worker import (
    InstanceRecord,
    ShardOutcome,
    ShardTask,
    execute_shard,
    worker_main,
)

__all__ = [
    "ShardedDecisionService",
    "ShardedInstanceHandle",
    "ShardStats",
    "MergedEventLog",
    "create_service",
    "merge_shard_events",
    "shard_of",
    "ShardTask",
    "ShardOutcome",
    "InstanceRecord",
    "execute_shard",
    "worker_main",
    "SharedQueryTier",
    "ShardL2View",
    "L2_MEMO_LIMIT",
]
