"""repro.runtime — the sharded execution runtime.

Scale-out layer over :mod:`repro.api`: a
:class:`ShardedDecisionService` presents the ``DecisionService`` facade
while hash-partitioning instances across independent engine + DES +
database shards, driven in-process (``executor="serial"``) or by a
``multiprocessing`` worker pool (``executor="process"``).

Quickstart::

    from repro.api import ExecutionConfig
    from repro.runtime import create_service

    config = ExecutionConfig.from_code("PSE80", shards=4, executor="process")
    service = create_service(pattern.schema, config)
    service.submit_stream(arrivals, values=pattern.source_values)
    print(service.summary().count, service.total_units)
"""

from repro.runtime.executors import ShardStats
from repro.runtime.sharding import (
    MergedEventLog,
    ShardedDecisionService,
    ShardedInstanceHandle,
    create_service,
    merge_shard_events,
    shard_of,
)
from repro.runtime.worker import InstanceRecord, ShardOutcome, ShardTask, execute_shard

__all__ = [
    "ShardedDecisionService",
    "ShardedInstanceHandle",
    "ShardStats",
    "MergedEventLog",
    "create_service",
    "merge_shard_events",
    "shard_of",
    "ShardTask",
    "ShardOutcome",
    "InstanceRecord",
    "execute_shard",
]
