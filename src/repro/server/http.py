"""HTTP/JSON transport for the decision-service daemon (stdlib only).

A thin :class:`ThreadingHTTPServer` front on a
:class:`~repro.server.daemon.ServerDaemon`.  Handler threads never touch
the engine — they enqueue submissions through the daemon's admission
controller and read from its record map / SQLite store, so the drain
loop stays the only engine owner.

Endpoints::

    POST /instances        {"values": {...}} or {"batch": [{...}, ...]}
                           202 {"accepted": [ids], "queue_depth": n}
                           429 + Retry-After when past the high-water mark
                           503 while shutting down
    GET  /instances/<id>   status/values/metrics payload; 404 if unknown;
                           resolves restarts via the SQLite store
    GET  /events           NDJSON stream of typed observer events
                           (?limit=N closes after N, ?replay=1 prepends
                           the retained history)
    GET  /metrics          summary() + daemon counters + stage latency
                           digests + config identity (JSON);
                           ?format=prometheus serves the text exposition
    GET  /trace            Chrome-trace JSON (flight recorder; empty but
                           valid when the daemon runs without --observe)
    GET  /healthz          drain-loop liveness: 200 while the loop
                           heartbeats, 503 once it is wedged or dead

``create_server`` binds (port 0 → ephemeral, how the tests stay
port-free); ``start_http_server`` also spins the serve loop on a
background thread and returns ``(server, thread)``.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from queue import Empty
from urllib.parse import parse_qs, urlsplit

from repro.server.daemon import ServerDaemon

__all__ = ["DecisionServer", "DecisionRequestHandler", "create_server", "start_http_server"]

_MAX_BODY = 8 * 1024 * 1024


class DecisionServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the daemon for its handler threads."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, daemon: ServerDaemon, *, quiet: bool = True):
        self.decision_daemon = daemon
        self.quiet = quiet
        super().__init__(address, DecisionRequestHandler)

    @property
    def port(self) -> int:
        return self.server_address[1]


class DecisionRequestHandler(BaseHTTPRequestHandler):
    server_version = "repro-server/1.0"
    protocol_version = "HTTP/1.1"

    @property
    def daemon(self) -> ServerDaemon:
        return self.server.decision_daemon

    # -- plumbing -------------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if not getattr(self.server, "quiet", True):
            super().log_message(format, *args)

    def _send_json(
        self, status: int, payload: dict, *, headers: dict | None = None
    ) -> None:
        body = (json.dumps(payload) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str, **extra) -> None:
        self._send_json(status, {"error": {"message": message, **extra}})

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length > _MAX_BODY:
            raise ValueError(f"request body too large ({length} bytes)")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        data = json.loads(raw.decode("utf-8"))
        if not isinstance(data, dict):
            raise ValueError("request body must be a JSON object")
        return data

    # -- routes ---------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        url = urlsplit(self.path)
        if url.path == "/healthz":
            ok, payload = self.daemon.health()
            self._send_json(200 if ok else 503, payload)
        elif url.path == "/metrics":
            fmt = parse_qs(url.query).get("format", ["json"])[0]
            if fmt == "prometheus":
                self._send_text(
                    200,
                    self.daemon.prometheus_payload(),
                    content_type="text/plain; version=0.0.4; charset=utf-8",
                )
            elif fmt == "json":
                self._send_json(200, self.daemon.metrics_payload())
            else:
                self._send_error_json(
                    400, f"unknown metrics format {fmt!r}", format=fmt
                )
        elif url.path == "/trace":
            self._send_json(200, self.daemon.trace_payload())
        elif url.path.startswith("/instances/"):
            instance_id = url.path[len("/instances/"):]
            payload = self.daemon.get(instance_id)
            if payload is None:
                self._send_error_json(
                    404, f"unknown instance id {instance_id!r}", id=instance_id
                )
            else:
                self._send_json(200, payload)
        elif url.path == "/events":
            self._stream_events(parse_qs(url.query))
        else:
            self._send_error_json(404, f"no such endpoint: {url.path}")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        url = urlsplit(self.path)
        if url.path != "/instances":
            self._send_error_json(404, f"no such endpoint: {url.path}")
            return
        try:
            body = self._read_body()
            batch = self._parse_submission(body)
        except (ValueError, json.JSONDecodeError) as error:
            self._send_error_json(400, f"bad request: {error}")
            return
        result = self.daemon.submit_many(batch)
        if result.ok:
            self._send_json(
                202,
                {"accepted": list(result.accepted), "queue_depth": result.queue_depth},
            )
        elif result.reason == "queue full":
            retry = result.retry_after or 1.0
            self._send_json(
                429,
                {
                    "error": {"message": "queue full", "rejected": result.rejected},
                    "retry_after": retry,
                    "queue_depth": result.queue_depth,
                },
                headers={"Retry-After": str(max(1, round(retry)))},
            )
        else:
            self._send_error_json(503, result.reason or "unavailable")

    @staticmethod
    def _parse_submission(body: dict) -> list[dict | None]:
        """Normalize a POST body into a list of source valuations.

        ``{}`` → one instance with the daemon's default values;
        ``{"values": {...}}`` → one instance; ``{"batch": [...]}`` → many,
        each entry either a bare valuation object or ``{"values": ...}``.
        """
        if "batch" in body:
            entries = body["batch"]
            if not isinstance(entries, list) or not entries:
                raise ValueError("'batch' must be a non-empty list")
            batch = []
            for entry in entries:
                if entry is None:
                    batch.append(None)
                elif not isinstance(entry, dict):
                    raise ValueError("batch entries must be objects")
                elif "values" in entry:
                    batch.append(entry["values"])
                else:
                    batch.append(entry or None)
            return batch
        values = body.get("values")
        if values is not None and not isinstance(values, dict):
            raise ValueError("'values' must be an object")
        return [values]

    def _stream_events(self, query: dict) -> None:
        try:
            limit = int(query["limit"][0]) if "limit" in query else None
        except ValueError:
            self._send_error_json(400, "limit must be an integer")
            return
        replay = query.get("replay", ["0"])[0] in ("1", "true", "yes")
        subscriber = self.daemon.subscribe_events(replay=replay)
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Cache-Control", "no-store")
        # No Content-Length: the stream ends when the connection closes.
        self.send_header("Connection", "close")
        self.end_headers()
        sent = 0
        try:
            while limit is None or sent < limit:
                try:
                    payload = subscriber.get(timeout=0.25)
                except Empty:
                    if self.daemon.stopping and self.daemon.is_idle():
                        break
                    continue
                if payload is None:  # shutdown sentinel
                    break
                self.wfile.write((json.dumps(payload) + "\n").encode("utf-8"))
                self.wfile.flush()
                sent += 1
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away; nothing to clean up but the subscription
        finally:
            self.daemon.unsubscribe_events(subscriber)
            self.close_connection = True


def create_server(
    daemon: ServerDaemon,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    quiet: bool = True,
) -> DecisionServer:
    """Bind a :class:`DecisionServer` (``port=0`` → ephemeral port)."""
    return DecisionServer((host, port), daemon, quiet=quiet)


def start_http_server(
    daemon: ServerDaemon,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    quiet: bool = True,
) -> tuple[DecisionServer, threading.Thread]:
    """Bind and serve on a background thread; returns ``(server, thread)``.

    The in-process transport tests, the CI smoke step, and the load
    benchmark all use this: bind port 0, talk to
    ``http://127.0.0.1:<server.port>``, then ``server.shutdown()`` +
    ``thread.join()`` + ``daemon.shutdown()``.
    """
    server = create_server(daemon, host, port, quiet=quiet)
    thread = threading.Thread(
        target=server.serve_forever,
        kwargs={"poll_interval": 0.05},
        name="repro-server-http",
        daemon=True,
    )
    thread.start()
    return server, thread
