"""The decision-service daemon: streaming arrivals in front of the engine.

Everything else in the repo is batch — a sweep is submitted, drained, and
the process exits.  :class:`ServerDaemon` is the open-system front half:
it owns a :class:`~repro.api.service.DecisionService` (plain, or sharded
on either executor — the process executor's persistent shard workers
stay alive across epochs, so each drain round streams down the same
pipes), accepts submissions from any thread, and runs a single **drain
loop** thread that feeds admitted arrivals into the engine in epochs —
submit the pending batch at DES times derived from wall-clock arrival
(``ticks_per_second`` maps wall seconds onto the simulated clock), run
the calendar dry, record and persist completions, repeat.  The DES clock
therefore advances against wall-time arrivals instead of a pre-baked
schedule.

In front of the engine sits an **admission controller**: a bounded
arrival queue with a configurable high-water mark.  Past it, submissions
are rejected (HTTP maps this to ``429``) with a retry hint derived from
the observed drain rate — an EWMA of instances completed per wall second
over recent epochs.  The queue can never exceed ``high_water``, which is
what bounds daemon memory and keeps the engine from falling unboundedly
behind the arrival rate.

Completed records (source valuation, decision values, metrics snapshot,
config hash) are written to a :class:`~repro.server.store.RunStore` after
every epoch, so ``get()`` on a restarted daemon still resolves instances
finished before the restart.  :meth:`shutdown` is graceful: admission
closes, the drain loop finishes every already-accepted instance, the
store is flushed and closed — zero accepted instances are lost.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import asdict, dataclass
from queue import Full, Queue
from typing import Any, Mapping, Sequence

from repro.api.config import ExecutionConfig
from repro.api.events import InstanceCompleteEvent, LaunchEvent, QueryDoneEvent
from repro.api.service import InstanceHandle, coerce_config
from repro.core.metrics import MetricsSummary
from repro.core.schema import DecisionFlowSchema
from repro.core.strategy import Strategy
from repro.obs import (
    NULL_OBS,
    MetricsRegistry,
    Observability,
    export_chrome_trace,
    histogram_quantile,
)
from repro.runtime.sharding import create_service
from repro.server.store import RunStore, config_hash, encode_values

__all__ = ["ServerDaemon", "SubmitResult", "STATUSES"]

#: Instance lifecycle states as reported by ``get()`` / ``GET /instances/<id>``.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
STALLED = "stalled"
FAILED = "failed"
STATUSES = (QUEUED, RUNNING, DONE, STALLED, FAILED)

#: Default wall→DES time scale: 1 wall second = 1000 simulated ticks,
#: the repo-wide "ms clock" convention the CLI's --rate flag uses.
DEFAULT_TICKS_PER_SECOND = 1000.0

#: Default drain-loop liveness threshold (wall seconds).  The loop
#: heartbeats every wake and between epochs; a heartbeat older than this
#: flips ``health()`` to "wedged" (HTTP 503) — either the thread is stuck
#: inside one epoch for that long, or it stopped iterating entirely.
DEFAULT_STALL_AFTER = 30.0


@dataclass(frozen=True)
class SubmitResult:
    """The admission controller's answer to one submission (or batch).

    ``accepted`` holds the assigned instance ids (empty on rejection);
    ``rejected`` counts instances turned away — a batch is admitted
    atomically, so one of the two is always zero.  ``retry_after`` is the
    backpressure hint in wall seconds (set only for ``queue full``), and
    ``queue_depth`` the arrival-queue depth after the decision.
    """

    accepted: tuple[str, ...]
    rejected: int
    reason: str | None
    retry_after: float | None
    queue_depth: int

    @property
    def ok(self) -> bool:
        return self.rejected == 0


@dataclass
class _Pending:
    """One admitted arrival waiting for the next drain epoch."""

    instance_id: str
    source: dict | None
    wall: float


@dataclass
class _Record:
    """Live (this-daemon-lifetime) state of one accepted instance."""

    instance_id: str
    status: str
    submitted_wall: float
    source: dict | None
    started_wall: float | None = None
    completed_wall: float | None = None
    values: dict | None = None
    metrics: Any = None  # InstanceMetrics once done
    error: str | None = None


def _event_payload(event: object) -> dict | None:
    """A typed observer event as a plain JSON-able dict (None if unknown)."""
    if isinstance(event, LaunchEvent):
        return {
            "type": "launch",
            "time": event.time,
            "instance_id": event.instance_id,
            "attribute": event.attribute,
            "speculative": event.speculative,
            "shared": event.shared,
        }
    if isinstance(event, QueryDoneEvent):
        return {
            "type": "query_done",
            "time": event.time,
            "instance_id": event.instance_id,
            "attribute": event.attribute,
            "units": event.units,
            "completed": event.completed,
        }
    if isinstance(event, InstanceCompleteEvent):
        return {
            "type": "instance_complete",
            "time": event.time,
            "instance_id": event.instance_id,
            "metrics": asdict(event.metrics),
        }
    return None


class ServerDaemon:
    """Admission control + drain loop + persistence around a service.

    ``config`` accepts the same spellings as
    :class:`~repro.api.service.DecisionService`; ``config.shards > 1``
    builds the sharded facade on either executor.  Under
    ``executor="process"`` each drain epoch becomes one round streamed
    to the persistent shard workers, and ``health()`` folds the fleet's
    per-worker liveness into ``/healthz`` (a dead worker flips the
    daemon unhealthy).

    ``db`` is a SQLite path (or a pre-built
    :class:`~repro.server.store.RunStore`); omit it to run without
    persistence.  ``default_values`` is the source valuation used when a
    submission carries none (the CLI wires the generated pattern's
    canonical payload here so ``POST /instances`` with an empty body
    works).  ``high_water`` bounds the arrival queue.  ``stall_after``
    is the drain-loop liveness threshold ``health()`` uses to report a
    wedged loop; ``config.observe`` arms the repro.obs tracer and
    registry across the daemon and its service (the per-stage latency
    histograms of :meth:`stage_stats` are always on).
    """

    def __init__(
        self,
        schema: DecisionFlowSchema,
        config: ExecutionConfig | Strategy | str | None = None,
        *,
        db: str | RunStore | None = None,
        high_water: int = 256,
        default_values: Mapping[str, object] | None = None,
        ticks_per_second: float = DEFAULT_TICKS_PER_SECOND,
        drain_interval: float = 0.005,
        stall_after: float = DEFAULT_STALL_AFTER,
        event_history: int = 1024,
        id_prefix: str = "srv-",
        backend: str | None = None,
        **backend_options: Any,
    ):
        config = coerce_config(config)
        if high_water < 1:
            raise ValueError(f"high_water must be >= 1, got {high_water}")
        if ticks_per_second <= 0:
            raise ValueError(
                f"ticks_per_second must be > 0, got {ticks_per_second}"
            )
        if stall_after <= 0:
            raise ValueError(f"stall_after must be > 0, got {stall_after}")
        self.schema = schema
        self.service = create_service(
            schema, config, backend=backend, **backend_options
        )
        self.config = self.service.config
        self.config_digest = config_hash(self.config)
        self.default_values = (
            dict(default_values) if default_values is not None else None
        )
        self.high_water = high_water
        self.ticks_per_second = ticks_per_second
        self._drain_interval = drain_interval
        self._id_prefix = id_prefix
        self._store = db if isinstance(db, RunStore) else (
            RunStore(db) if db is not None else None
        )
        first = self._store.next_sequence(id_prefix) if self._store is not None else 1
        self._seq = itertools.count(first)

        self._wall0 = time.time()
        self._mono0 = time.monotonic()
        self._state_lock = threading.Lock()
        self._service_lock = threading.Lock()
        self._queue: deque[_Pending] = deque()
        self._records: dict[str, _Record] = {}
        self._completion_walls: dict[str, float] = {}

        # -- counters (guarded by _state_lock) --
        self._accepted = 0
        self._rejected = 0
        self._completed = 0
        self._stalled = 0
        self._failed = 0
        self._persisted = 0
        self._epochs = 0
        self._peak_queue = 0
        self._drain_rate: float | None = None

        # -- observability --
        # The tracer arms only under config.observe (flight-recorder
        # spans for admit/epoch on top of the service's engine spans).
        # Stage latency histograms are always on: a handful of observes
        # per instance, far from any hot loop, and /metrics percentiles
        # should not require arming the full tracer.
        self._obs = Observability.create() if self.config.observe else NULL_OBS
        self._stages = MetricsRegistry()
        self._h_admit = self._stages.histogram("stage_seconds", stage="admit")
        self._h_queue_wait = self._stages.histogram(
            "stage_seconds", stage="queue_wait"
        )
        self._h_epoch = self._stages.histogram("stage_seconds", stage="epoch")
        self._h_decision = self._stages.histogram(
            "stage_seconds", stage="decision"
        )
        if self._store is not None:
            # Seed decision percentiles from persisted runs so a
            # restarted daemon's /metrics does not start cold.
            for latency in self._store.latencies():
                self._h_decision.observe(latency)
        self._stall_after = stall_after
        self._heartbeat_mono = time.monotonic()
        self._events_dropped = 0

        # -- event fan-out --
        self._events_lock = threading.Lock()
        self._subscribers: list[Queue] = []
        self._history: deque = deque(maxlen=event_history)
        self._taps_armed = False
        self.service.on_instance_complete(self._on_complete)

        # -- drain loop --
        self._stopping = threading.Event()
        self._stopped = threading.Event()
        self._wake = threading.Event()
        self._idle = threading.Event()
        self._idle.set()
        self._thread = threading.Thread(
            target=self._drain_loop, name="repro-server-drain", daemon=True
        )
        self._thread.start()

    # -- admission ------------------------------------------------------------

    def submit(self, values: Mapping[str, object] | None = None) -> SubmitResult:
        """Admit one instance (or reject it with a backpressure hint)."""
        return self.submit_many([values])

    def submit_many(
        self, values_list: Sequence[Mapping[str, object] | None]
    ) -> SubmitResult:
        """Admit a batch atomically: all instances enter the queue, or none.

        Rejection reasons: ``"queue full"`` (the batch would push the
        arrival queue past ``high_water``; ``retry_after`` estimates when
        the drain loop will have made room) and ``"shutting down"``
        (admission is closed; already-accepted work still completes).
        """
        admit_started = time.perf_counter()
        result = self._admit(values_list)
        elapsed = time.perf_counter() - admit_started
        with self._state_lock:
            # HTTP handler threads call this concurrently; the state
            # lock keeps the (single-writer) histogram consistent.
            self._h_admit.observe(elapsed)
        if self._obs.enabled:
            self._obs.tracer.instant(
                "daemon.admit",
                args={
                    "accepted": len(result.accepted),
                    "rejected": result.rejected,
                    "queue_depth": result.queue_depth,
                },
            )
        return result

    def _admit(
        self, values_list: Sequence[Mapping[str, object] | None]
    ) -> SubmitResult:
        n = len(values_list)
        wall = time.time()
        with self._state_lock:
            depth = len(self._queue)
            if n == 0:
                return SubmitResult((), 0, None, None, depth)
            if self._stopping.is_set():
                self._rejected += n
                return SubmitResult((), n, "shutting down", None, depth)
            if depth + n > self.high_water:
                self._rejected += n
                return SubmitResult(
                    (), n, "queue full", self._retry_after_locked(depth + n), depth
                )
            ids = []
            for values in values_list:
                instance_id = f"{self._id_prefix}{next(self._seq)}"
                if values is not None:
                    source = dict(values)
                elif self.default_values is not None:
                    source = dict(self.default_values)
                else:
                    source = None
                self._queue.append(_Pending(instance_id, source, wall))
                self._records[instance_id] = _Record(
                    instance_id, QUEUED, wall, source
                )
                ids.append(instance_id)
            self._accepted += n
            depth = len(self._queue)
            self._peak_queue = max(self._peak_queue, depth)
            self._idle.clear()
        self._wake.set()
        return SubmitResult(tuple(ids), 0, None, None, depth)

    def _retry_after_locked(self, needed_drain: int) -> float:
        """Wall seconds until ~needed_drain instances will have drained."""
        rate = self._drain_rate if self._drain_rate else 20.0
        return min(60.0, max(0.05, needed_drain / rate))

    # -- the drain loop -------------------------------------------------------

    def _drain_loop(self) -> None:
        while True:
            self._wake.wait(timeout=self._drain_interval)
            self._wake.clear()
            self._heartbeat_mono = time.monotonic()
            batch = self._take_batch()
            while batch:
                self._run_epoch(batch)
                self._heartbeat_mono = time.monotonic()
                batch = self._take_batch()
            with self._state_lock:
                if not self._queue:
                    self._idle.set()
                    if self._stopping.is_set():
                        break
        self._stopped.set()

    def _take_batch(self) -> list[_Pending]:
        with self._state_lock:
            if not self._queue:
                return []
            batch = list(self._queue)
            self._queue.clear()
        return batch

    def _run_epoch(self, batch: list[_Pending]) -> None:
        epoch_mono = time.monotonic()
        epoch_wall = time.time()
        span_started = time.perf_counter()
        handles: list[tuple[_Pending, object]] = []
        with self._service_lock:
            floor = self.service.now
            for pending in batch:
                with self._state_lock:
                    record = self._records[pending.instance_id]
                    record.status = RUNNING
                    record.started_wall = epoch_wall
                    self._h_queue_wait.observe(max(0.0, epoch_wall - pending.wall))
                scaled = (pending.wall - self._wall0) * self.ticks_per_second
                try:
                    handle = self.service.submit(
                        pending.source,
                        at=max(floor, scaled),
                        instance_id=pending.instance_id,
                    )
                except Exception as error:  # a bad valuation must not kill the loop
                    self._mark_failed(pending.instance_id, error)
                    continue
                handles.append((pending, handle))
            try:
                self.service.run()
            except Exception as error:  # pragma: no cover - engine invariant breach
                for pending, _handle in handles:
                    self._mark_failed(pending.instance_id, error)
                handles = []
        if self._obs.enabled:
            self._obs.tracer.record(
                "daemon.epoch",
                span_started,
                time.perf_counter(),
                args={"batch": len(batch)},
            )
        self._finish_epoch(handles, time.monotonic() - epoch_mono)

    def _mark_failed(self, instance_id: str, error: Exception) -> None:
        with self._state_lock:
            record = self._records[instance_id]
            record.status = FAILED
            record.error = f"{type(error).__name__}: {error}"
            self._failed += 1

    def _finish_epoch(
        self, handles: list[tuple[_Pending, object]], epoch_seconds: float
    ) -> None:
        fallback_wall = time.time()
        to_persist = []
        done_count = 0
        with self._state_lock:
            for pending, handle in handles:
                record = self._records[pending.instance_id]
                if handle.done:
                    record.status = DONE
                    record.completed_wall = self._completion_walls.pop(
                        pending.instance_id, fallback_wall
                    )
                    record.values = self._handle_values(handle)
                    record.metrics = handle.metrics
                    self._h_decision.observe(
                        max(0.0, record.completed_wall - record.submitted_wall)
                    )
                    done_count += 1
                else:
                    # run() drained the calendar with targets unstable:
                    # the flow can never finish.  Record it as stalled.
                    record.status = STALLED
                to_persist.append(self._store_record(record))
            self._completed += done_count
            self._stalled += len(handles) - done_count
            self._epochs += 1
            self._h_epoch.observe(epoch_seconds)
            if done_count and epoch_seconds > 0:
                rate = done_count / epoch_seconds
                self._drain_rate = (
                    rate
                    if self._drain_rate is None
                    else 0.3 * rate + 0.7 * self._drain_rate
                )
        if self._store is not None and to_persist:
            written = self._store.record_many(to_persist)
            with self._state_lock:
                self._persisted += written

    @staticmethod
    def _handle_values(handle: object) -> dict:
        if isinstance(handle, InstanceHandle):
            return dict(handle.instance.value_map())
        return dict(handle.value_map())

    def _store_record(self, record: _Record) -> dict:
        return {
            "instance_id": record.instance_id,
            "schema_name": self.schema.name,
            "status": record.status,
            "submitted_wall": record.submitted_wall,
            "started_wall": record.started_wall,
            "completed_wall": record.completed_wall,
            "source": encode_values(record.source) or {},
            "values": encode_values(record.values),
            "metrics": asdict(record.metrics) if record.metrics is not None else None,
            "config_hash": self.config_digest,
        }

    # -- reading --------------------------------------------------------------

    def get(self, instance_id: str) -> dict | None:
        """The status payload for one instance id, or None if unknown.

        Live records (this daemon lifetime) take precedence; otherwise
        the persistent store answers for work finished before a restart
        (``origin: "store"``).
        """
        with self._state_lock:
            record = self._records.get(instance_id)
            if record is not None:
                return self._payload_from_live(record)
        if self._store is not None:
            stored = self._store.get(instance_id)
            if stored is not None:
                return self._payload_from_store(stored)
        return None

    def _payload_from_live(self, record: _Record) -> dict:
        payload = {
            "id": record.instance_id,
            "status": record.status,
            "schema": self.schema.name,
            "submitted_at": record.submitted_wall,
            "started_at": record.started_wall,
            "completed_at": record.completed_wall,
            "source": encode_values(record.source) or {},
            "values": encode_values(record.values),
            "metrics": asdict(record.metrics) if record.metrics is not None else None,
            "config_hash": self.config_digest,
            "origin": "live",
        }
        if record.error is not None:
            payload["error"] = record.error
        if record.completed_wall is not None:
            payload["latency"] = record.completed_wall - record.submitted_wall
        return payload

    @staticmethod
    def _payload_from_store(stored: dict) -> dict:
        payload = {
            "id": stored["instance_id"],
            "status": stored["status"],
            "schema": stored["schema_name"],
            "submitted_at": stored["submitted_wall"],
            "started_at": stored.get("started_wall"),
            "completed_at": stored["completed_wall"],
            "source": stored["source"],
            "values": stored["values"],
            "metrics": stored["metrics"],
            "config_hash": stored["config_hash"],
            "origin": "store",
        }
        if stored["completed_wall"] is not None:
            payload["latency"] = stored["completed_wall"] - stored["submitted_wall"]
        return payload

    def summary(self) -> MetricsSummary:
        """The service's cross-instance aggregate (serialized vs epochs)."""
        with self._service_lock:
            return self.service.summary()

    def server_stats(self) -> dict:
        """Daemon-level counters: queue, admission, drain, persistence."""
        now = time.monotonic()
        with self._state_lock:
            return {
                "queue_depth": len(self._queue),
                "peak_queue_depth": self._peak_queue,
                "high_water": self.high_water,
                "accepted": self._accepted,
                "rejected": self._rejected,
                "completed": self._completed,
                "stalled": self._stalled,
                "failed": self._failed,
                "persisted": self._persisted,
                "epochs": self._epochs,
                "drain_rate": self._drain_rate,
                "events_dropped": self._events_dropped,
                "heartbeat_age": now - self._heartbeat_mono,
                "drain_alive": self._thread.is_alive(),
                "uptime": now - self._mono0,
                "stopping": self._stopping.is_set(),
            }

    def health(self) -> tuple[bool, dict]:
        """Liveness verdict plus the ``GET /healthz`` payload.

        Unlike a bare "the process answered", this detects a wedged
        drain loop: the loop heartbeats every wake and between epochs,
        so a heartbeat older than ``stall_after`` means admitted work is
        sitting in the queue with nothing consuming it.  ``ok=False``
        (HTTP 503) when the loop is wedged or died without a shutdown —
        or, on a process-executor service, when any persistent shard
        worker has died (the fleet cannot recover its shard state).
        """
        now = time.monotonic()
        heartbeat_age = now - self._heartbeat_mono
        alive = self._thread.is_alive()
        stopping = self._stopping.is_set()
        with self._state_lock:
            depth = len(self._queue)
        workers = self._worker_health()
        if not alive and not self._stopped.is_set():
            status, ok = "dead", False
        elif alive and heartbeat_age > self._stall_after:
            status, ok = "wedged", False
        elif workers is not None and not workers["alive"] and not stopping:
            status, ok = "workers-dead", False
        elif stopping:
            status, ok = "stopping", True
        else:
            status, ok = "ok", True
        payload = {
            "status": status,
            "ok": ok,
            "queue_depth": depth,
            "high_water": self.high_water,
            "heartbeat_age": heartbeat_age,
            "stall_after": self._stall_after,
            "drain_alive": alive,
            "uptime": now - self._mono0,
        }
        if workers is not None:
            payload["workers"] = workers
        return ok, payload

    def _worker_health(self) -> dict | None:
        """The sharded executor's fleet liveness (None on a plain service)."""
        probe = getattr(self.service, "worker_health", None)
        if probe is None:
            return None
        with self._service_lock:
            return probe()

    def dispatch_stats(self) -> dict:
        """Pooled-dispatch totals from the underlying service."""
        with self._service_lock:
            return self.service.dispatch_stats()

    def stage_stats(self) -> dict:
        """Per-stage latency digests: admit, queue_wait, epoch, decision.

        Each stage reports ``count``, ``mean``, ``p50``, and ``p99`` in
        wall seconds, interpolated from the always-on fixed-bucket
        histograms — these power the ``/metrics`` JSON body and feed the
        AdaptiveStrategy controller sketched in ROADMAP item 5.
        """
        with self._state_lock:
            snapshot = self._stages.snapshot()
        stages = {}
        for hist in snapshot["histograms"]:
            stage = hist["labels"].get("stage", hist["name"])
            count = hist["count"]
            stages[stage] = {
                "count": count,
                "mean": (hist["sum"] / count) if count else 0.0,
                "p50": histogram_quantile(hist["bounds"], hist["counts"], 0.5),
                "p99": histogram_quantile(hist["bounds"], hist["counts"], 0.99),
            }
        return stages

    def observability(self) -> dict:
        """The service-level registry snapshot (disabled stub when off)."""
        with self._service_lock:
            return self.service.observability()

    def metrics_payload(self) -> dict:
        """The ``GET /metrics`` body: summary + server + config identity."""
        return {
            "summary": self.summary().to_dict(),
            "server": self.server_stats(),
            "dispatch": self.dispatch_stats(),
            "stages": self.stage_stats(),
            "observability": self.observability(),
            "config": {
                "code": self.config.code,
                "backend": self.config.backend,
                "engine": self.config.engine,
                "shards": self.config.shards,
                "executor": self.config.executor,
                "dispatch": self.config.dispatch,
                "query_cache": self.config.query_cache,
                "cohorts": self.config.cohorts,
                "share_results": self.config.share_results,
                "halt_policy": self.config.halt_policy,
                "hash": self.config_digest,
                "schema": self.schema.name,
            },
        }

    def prometheus_payload(self) -> str:
        """The ``GET /metrics?format=prometheus`` text exposition body.

        Summary and server counters become ``repro_summary_*`` /
        ``repro_server_*`` gauges, pooled-dispatch totals become
        ``repro_dispatch_*`` counters, the always-on stage histograms
        export with cumulative ``_bucket{le=...}`` series, and — when the
        daemon runs with ``observe=True`` — the merged engine registry
        (per-shard labels intact) rides along.
        """
        registry = MetricsRegistry()
        for name, value in self.summary().to_dict().items():
            if isinstance(value, (int, float)):
                registry.gauge(f"summary_{name}").set(float(value))
        for name, value in self.server_stats().items():
            if isinstance(value, (int, float)):  # bools export as 0/1
                registry.gauge(f"server_{name}").set(float(value))
        for name, value in self.dispatch_stats().items():
            registry.counter(f"dispatch_{name}").inc(int(value))
        with self._state_lock:
            stage_snapshot = self._stages.snapshot()
        registry.merge_snapshot(stage_snapshot)
        service_snapshot = self.observability()
        if service_snapshot.get("enabled"):
            registry.merge_snapshot(service_snapshot)
        return registry.to_prometheus()

    def trace_payload(self) -> dict:
        """Chrome-trace JSON: the daemon lane plus every service lane.

        Loadable in ``about:tracing`` / Perfetto.  Disarmed daemons
        return a valid-but-empty document (``metadata.armed: false``).
        """
        groups = [(1000, "daemon", self._obs.tracer.events())]
        with self._service_lock:
            groups.extend(self.service.trace_groups())
        return export_chrome_trace(groups, armed=self._obs.enabled)

    # -- events ---------------------------------------------------------------

    def _on_complete(self, event: InstanceCompleteEvent) -> None:
        self._completion_walls[event.instance_id] = time.time()
        self._publish(_event_payload(event))

    def _arm_event_taps(self) -> None:
        """Attach launch/query-done taps on first demand.

        Completion events are always tapped (they drive per-instance
        latency); the chattier launch/query streams attach only once an
        ``/events`` subscriber exists, so unobserved daemons pay nothing
        for them.  Serial services deliver live, so a mid-life attach is
        safe — history simply starts at the first subscription.
        """
        if self._taps_armed:
            return
        self._taps_armed = True
        self.service.on_launch(lambda e: self._publish(_event_payload(e)))
        self.service.on_query_done(lambda e: self._publish(_event_payload(e)))

    def _publish(self, payload: dict | None) -> None:
        if payload is None:
            return
        with self._events_lock:
            self._history.append(payload)
            for subscriber in self._subscribers:
                try:
                    subscriber.put_nowait(payload)
                except Full:
                    # A slow/stuck consumer must never block the drain
                    # loop or grow daemon memory: drop, count, move on.
                    self._events_dropped += 1

    def subscribe_events(
        self, *, replay: bool = False, max_queue: int = 1024
    ) -> Queue:
        """A queue receiving every typed event payload from now on.

        ``replay=True`` pre-loads the retained history (bounded ring)
        before live delivery starts; the switch is atomic, so no event is
        lost or duplicated across the boundary.  A ``None`` item marks
        daemon shutdown.

        The queue is bounded at ``max_queue`` items (``0`` → unbounded);
        events published while a subscriber is full are dropped for that
        subscriber and counted in ``server_stats()["events_dropped"]``.
        """
        self._arm_event_taps()
        subscriber: Queue = Queue(maxsize=max_queue)
        with self._events_lock:
            if replay:
                for payload in self._history:
                    if subscriber.full():
                        self._events_dropped += 1
                        continue
                    subscriber.put_nowait(payload)
            self._subscribers.append(subscriber)
        return subscriber

    def unsubscribe_events(self, subscriber: Queue) -> None:
        with self._events_lock:
            if subscriber in self._subscribers:
                self._subscribers.remove(subscriber)

    # -- lifecycle ------------------------------------------------------------

    @property
    def stopping(self) -> bool:
        return self._stopping.is_set()

    def is_idle(self) -> bool:
        """No queued arrivals and no epoch in flight."""
        return self._idle.is_set()

    def wait_idle(self, timeout: float | None = None) -> bool:
        """Block until the arrival queue is drained (True) or timeout."""
        return self._idle.wait(timeout)

    def shutdown(self, timeout: float = 60.0) -> bool:
        """Graceful stop: close admission, drain, flush, join.

        Every already-accepted instance is executed and (when a store is
        configured) persisted before the drain loop exits; event
        subscribers receive a ``None`` sentinel.  Idempotent.  Returns
        False if the drain loop failed to finish within *timeout*.
        """
        self._stopping.set()
        self._wake.set()
        self._thread.join(timeout)
        drained = not self._thread.is_alive()
        if drained and self._store is not None:
            self._store.close()
        if drained:
            # Shut persistent shard workers down with the daemon (no-op
            # on plain and serial-executor services).
            close = getattr(self.service, "close", None)
            if close is not None:
                with self._service_lock:
                    close()
        with self._events_lock:
            for subscriber in self._subscribers:
                try:
                    subscriber.put_nowait(None)
                except Full:
                    # The stream loop also exits on stopping+idle, so a
                    # full subscriber still terminates without the
                    # sentinel.
                    self._events_dropped += 1
        return drained

    def __repr__(self) -> str:
        stats = self.server_stats()
        return (
            f"<ServerDaemon {self.schema.name!r} {self.config.code} "
            f"queue={stats['queue_depth']}/{self.high_water} "
            f"accepted={stats['accepted']} completed={stats['completed']}>"
        )
