"""repro.server — the streaming decision-service daemon.

The open-system front half of the reproduction: a
:class:`~repro.server.daemon.ServerDaemon` wraps a plain or sharded
:class:`~repro.api.service.DecisionService` with admission control
(bounded arrival queue, backpressure with drain-rate-derived retry
hints), a drain loop that advances the DES clock against wall-time
arrivals, and SQLite persistence of completed run records
(:class:`~repro.server.store.RunStore`) so restarts keep serving
finished work.  :mod:`repro.server.http` exposes it over HTTP/JSON with
nothing beyond the stdlib; ``python -m repro serve`` is the CLI wiring.
"""

from repro.server.daemon import ServerDaemon, SubmitResult, STATUSES
from repro.server.http import (
    DecisionRequestHandler,
    DecisionServer,
    create_server,
    start_http_server,
)
from repro.server.store import RunStore, config_hash, decode_values, encode_values

__all__ = [
    "ServerDaemon",
    "SubmitResult",
    "STATUSES",
    "RunStore",
    "config_hash",
    "encode_values",
    "decode_values",
    "DecisionServer",
    "DecisionRequestHandler",
    "create_server",
    "start_http_server",
]
