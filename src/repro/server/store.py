"""SQLite persistence for the decision-service daemon.

A :class:`RunStore` keeps one row per finished decision-flow instance —
the source valuation, the decision (stable attribute) values, the final
metrics snapshot, wall-clock timestamps, and the hash of the
:class:`~repro.api.config.ExecutionConfig` that produced it — so a
restarted daemon answers ``GET /instances/<id>`` for work completed
before the restart.

Everything is stdlib ``sqlite3``.  One connection is shared across the
daemon's threads behind a lock (the drain loop writes whole epochs in
one transaction; HTTP handler threads only read), which keeps the store
safe under ``ThreadingHTTPServer`` without per-thread connections.
On-disk stores open in WAL journal mode with a busy timeout, so an
*external* connection — another process inspecting the store, or a
concurrent reader in tests — sees consistent snapshots instead of
``database is locked`` errors while an epoch commit is in flight.

Attribute values may carry the ⊥ null sentinel and tuples, neither of
which is plain JSON; :func:`encode_values` / :func:`decode_values` reuse
the declarative value encoding of :mod:`repro.core.serialize`
(``{"$null": true}`` / ``{"$seq": [...]}``) so records round-trip the
exact values the engine produced.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
import threading
from pathlib import Path
from typing import Iterable, Mapping

from repro.core.serialize import (
    SerializationError,
    _value_from_dict,
    _value_to_dict,
    config_to_dict,
)

__all__ = ["RunStore", "config_hash", "encode_values", "decode_values"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    instance_id    TEXT PRIMARY KEY,
    schema_name    TEXT NOT NULL,
    status         TEXT NOT NULL,
    submitted_wall REAL NOT NULL,
    started_wall   REAL,
    completed_wall REAL,
    source_json    TEXT NOT NULL,
    values_json    TEXT,
    metrics_json   TEXT,
    config_hash    TEXT NOT NULL
);
"""

#: Columns added after the first released schema, applied by ALTER TABLE
#: when an existing store predates them.  Additions only — SQLite cannot
#: drop or retype columns in place, and additive migration keeps old
#: daemons able to read new stores (they select by name, not position).
_MIGRATIONS = (("started_wall", "REAL"),)


def config_hash(config) -> str:
    """A short stable digest of an ExecutionConfig, for run records.

    Serializable configs hash their canonical plain-dict encoding;
    configs carrying rich (non-declarative) backend options fall back to
    ``repr``, which is stable within a process line but not guaranteed
    across releases — good enough to flag "this record was produced
    under a different recipe".
    """
    try:
        payload = json.dumps(config_to_dict(config), sort_keys=True)
    except SerializationError:
        payload = repr(config)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def encode_values(values: Mapping[str, object] | None) -> dict | None:
    """Encode an attribute-value mapping into JSON-able form (⊥-safe)."""
    if values is None:
        return None
    return {name: _value_to_dict(value) for name, value in values.items()}


def decode_values(data: Mapping[str, object] | None) -> dict | None:
    """Invert :func:`encode_values`."""
    if data is None:
        return None
    return {name: _value_from_dict(value) for name, value in data.items()}


class RunStore:
    """Durable run records keyed by instance id.

    ``path`` is a filesystem path (created on first open) or
    ``":memory:"`` for tests.  All methods are thread-safe; writes are
    batched per call and committed immediately, so a graceful shutdown
    only needs :meth:`close`.
    """

    #: How long a connection waits on a competing writer before raising
    #: ``sqlite3.OperationalError: database is locked`` (milliseconds).
    BUSY_TIMEOUT_MS = 5_000

    def __init__(self, path: str | Path):
        self.path = str(path)
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(self.path, check_same_thread=False)
        self._conn.row_factory = sqlite3.Row
        with self._lock:
            # WAL lets an external reader (another process tailing the
            # store, or a second daemon pointed at the same file by
            # mistake) see consistent snapshots while the drain loop is
            # mid-commit; in-memory stores only support the default
            # journal, so take whatever mode sqlite grants.
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute(f"PRAGMA busy_timeout={self.BUSY_TIMEOUT_MS}")
            self._conn.execute(_SCHEMA)
            present = {
                row["name"]
                for row in self._conn.execute("PRAGMA table_info(runs)")
            }
            for column, column_type in _MIGRATIONS:
                if column not in present:
                    self._conn.execute(
                        f"ALTER TABLE runs ADD COLUMN {column} {column_type}"
                    )
            self._conn.commit()
        self._closed = False

    @property
    def journal_mode(self) -> str:
        """The journal mode sqlite actually granted (``wal`` on disk)."""
        with self._lock:
            self._ensure_open()
            (mode,) = self._conn.execute("PRAGMA journal_mode").fetchone()
        return str(mode).lower()

    # -- writing --------------------------------------------------------------

    def record_many(self, records: Iterable[Mapping[str, object]]) -> int:
        """Persist finished run records (one epoch's completions) atomically.

        Each record is a plain dict with keys ``instance_id``,
        ``schema_name``, ``status``, ``submitted_wall``, ``started_wall``
        (optional — legacy writers omit it), ``completed_wall``,
        ``source`` (encoded values), ``values`` (encoded values or None),
        ``metrics`` (plain dict or None), and ``config_hash``.  Returns
        the number of rows written.
        """
        rows = [
            (
                record["instance_id"],
                record["schema_name"],
                record["status"],
                record["submitted_wall"],
                record.get("started_wall"),
                record.get("completed_wall"),
                json.dumps(record.get("source") or {}, sort_keys=True),
                None
                if record.get("values") is None
                else json.dumps(record["values"], sort_keys=True),
                None
                if record.get("metrics") is None
                else json.dumps(record["metrics"], sort_keys=True),
                record["config_hash"],
            )
            for record in records
        ]
        if not rows:
            return 0
        with self._lock:
            self._ensure_open()
            # Explicit column list: migrated stores carry started_wall at
            # a different ordinal position than freshly created ones.
            self._conn.executemany(
                "INSERT OR REPLACE INTO runs ("
                "instance_id, schema_name, status, submitted_wall, "
                "started_wall, completed_wall, source_json, values_json, "
                "metrics_json, config_hash) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                rows,
            )
            self._conn.commit()
        return len(rows)

    def record(self, record: Mapping[str, object]) -> None:
        """Persist one finished run record."""
        self.record_many([record])

    # -- reading --------------------------------------------------------------

    def get(self, instance_id: str) -> dict | None:
        """The stored record for *instance_id*, or None.

        ``source``/``values`` come back in encoded (``$null``-capable)
        form — exactly what :meth:`record_many` was handed — and
        ``metrics`` as the stored plain dict.
        """
        with self._lock:
            self._ensure_open()
            row = self._conn.execute(
                "SELECT * FROM runs WHERE instance_id = ?", (instance_id,)
            ).fetchone()
        if row is None:
            return None
        return {
            "instance_id": row["instance_id"],
            "schema_name": row["schema_name"],
            "status": row["status"],
            "submitted_wall": row["submitted_wall"],
            "started_wall": row["started_wall"],
            "completed_wall": row["completed_wall"],
            "source": json.loads(row["source_json"]),
            "values": None if row["values_json"] is None else json.loads(row["values_json"]),
            "metrics": None if row["metrics_json"] is None else json.loads(row["metrics_json"]),
            "config_hash": row["config_hash"],
        }

    def count(self) -> int:
        """Stored run records."""
        with self._lock:
            self._ensure_open()
            (count,) = self._conn.execute("SELECT COUNT(*) FROM runs").fetchone()
        return int(count)

    def instance_ids(self) -> list[str]:
        """Every stored instance id (insertion-order agnostic, sorted)."""
        with self._lock:
            self._ensure_open()
            rows = self._conn.execute(
                "SELECT instance_id FROM runs ORDER BY instance_id"
            ).fetchall()
        return [row["instance_id"] for row in rows]

    def latencies(self, limit: int = 1000) -> list[float]:
        """Submit→decide wall latencies of the most recent completed runs.

        Used to seed the daemon's decision-latency histogram across a
        restart, so ``/metrics`` percentiles do not start cold.  Rows
        written by pre-migration daemons (NULL ``started_wall``) still
        qualify — latency only needs the submit and complete stamps.
        """
        with self._lock:
            self._ensure_open()
            rows = self._conn.execute(
                "SELECT completed_wall - submitted_wall AS latency FROM runs "
                "WHERE completed_wall IS NOT NULL "
                "ORDER BY completed_wall DESC LIMIT ?",
                (int(limit),),
            ).fetchall()
        return [float(row["latency"]) for row in rows]

    def next_sequence(self, prefix: str = "srv-") -> int:
        """One past the largest numeric suffix among ``<prefix><n>`` ids.

        A restarted daemon resumes its id sequence from here so fresh
        submissions can never collide with persisted records.
        """
        like = prefix.replace("%", "").replace("_", "") + "%"
        start = len(prefix) + 1  # substr() is 1-indexed
        with self._lock:
            self._ensure_open()
            (largest,) = self._conn.execute(
                "SELECT MAX(CAST(substr(instance_id, ?) AS INTEGER)) "
                "FROM runs WHERE instance_id LIKE ?",
                (start, like),
            ).fetchone()
        return int(largest or 0) + 1

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Commit and close; further use raises."""
        with self._lock:
            if self._closed:
                return
            self._conn.commit()
            self._conn.close()
            self._closed = True

    def _ensure_open(self) -> None:
        if self._closed:
            raise RuntimeError(f"RunStore {self.path!r} is closed")

    def __enter__(self) -> "RunStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"<RunStore {self.path!r} {state}>"
