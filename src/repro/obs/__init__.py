"""repro.obs: the unified observability layer (metrics, spans, exposition).

One :class:`Observability` bundle pairs a
:class:`~repro.obs.registry.MetricsRegistry` with a
:class:`~repro.obs.trace.SpanTracer`; armed via
``ExecutionConfig(observe=True)`` it threads from
:class:`~repro.api.service.DecisionService` through both engines, the
sharded executors (workers ship registry snapshots and trace events back
with their results), and the server daemon.  Disarmed, every execution
context shares :data:`NULL_OBS` — no-op instruments, no-op tracer — and
hot paths guard on ``obs.enabled`` so the cost is one attribute test.
"""

from __future__ import annotations

from repro.obs.registry import (
    DEFAULT_LATENCY_BOUNDS,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    histogram_quantile,
)
from repro.obs.trace import (
    DEFAULT_TRACE_CAPACITY,
    NullTracer,
    SpanTracer,
    export_chrome_trace,
)

__all__ = [
    "Observability",
    "NULL_OBS",
    "MetricsRegistry",
    "NullRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "SpanTracer",
    "NullTracer",
    "export_chrome_trace",
    "histogram_quantile",
    "DEFAULT_LATENCY_BOUNDS",
    "DEFAULT_TRACE_CAPACITY",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
]


class Observability:
    """A registry + tracer pair with one armed/disarmed switch.

    Construct armed bundles with :meth:`create`; use the shared
    :data:`NULL_OBS` when disarmed rather than building null pairs.
    """

    __slots__ = ("enabled", "registry", "tracer")

    def __init__(self, enabled: bool, registry, tracer):
        self.enabled = enabled
        self.registry = registry
        self.tracer = tracer

    @classmethod
    def create(cls, trace_capacity: int = DEFAULT_TRACE_CAPACITY) -> "Observability":
        """A fresh armed bundle (one per execution context, never shared)."""
        return cls(True, MetricsRegistry(), SpanTracer(trace_capacity))

    def __repr__(self) -> str:
        state = "armed" if self.enabled else "disarmed"
        return f"<Observability {state} {self.registry!r} {self.tracer!r}>"


#: The process-wide disarmed bundle every unobserved context shares.
NULL_OBS = Observability(False, NullRegistry(), NullTracer())
