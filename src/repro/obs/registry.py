"""A lightweight metrics registry: counters, gauges, fixed-bucket histograms.

Instrumented code asks the registry for an instrument once (typically in a
constructor) and then calls ``inc`` / ``set`` / ``observe`` on the hot
path.  Everything is lock-free plain Python — the engine and DES run on
one thread, and the sharded runtime merges per-shard *snapshots* rather
than sharing live registries, exactly like
:meth:`~repro.core.metrics.MetricsSummary.merge`.

Disarmed observability costs nothing: :class:`NullRegistry` hands out
process-wide no-op singletons (:data:`NULL_COUNTER` & co.) whose methods
do nothing, and hot paths additionally guard on ``registry.enabled`` so
even the no-op call is skipped where it matters.

Snapshots are plain JSON-able dicts (``{"enabled", "counters", "gauges",
"histograms"}``, each a list of labelled entries) so they cross process
boundaries with the shard outcomes; :meth:`MetricsRegistry.merge_snapshot`
folds one back in, optionally adding labels (the sharded service tags each
shard's snapshot with ``shard=<n>`` so per-shard gauges stay meaningful).
:meth:`MetricsRegistry.to_prometheus` renders the text exposition format
served by ``GET /metrics?format=prometheus``.
"""

from __future__ import annotations

from bisect import bisect_left

__all__ = [
    "DEFAULT_LATENCY_BOUNDS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "histogram_quantile",
]

#: Default histogram bucket upper bounds (seconds), tuned for wall-clock
#: stage latencies from sub-millisecond engine rounds to multi-second
#: drain epochs.  A final +Inf bucket is implicit.
DEFAULT_LATENCY_BOUNDS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: tuple = ()):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def __repr__(self) -> str:
        return f"<Counter {self.name} {dict(self.labels)} {self.value}>"


class Gauge:
    """A point-in-time value, overwritten on each ``set``."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: tuple = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"<Gauge {self.name} {dict(self.labels)} {self.value}>"


class Histogram:
    """A fixed-bucket histogram with an implicit +Inf overflow bucket.

    ``bounds`` are ascending upper bounds; ``counts[i]`` holds the
    observations with ``value <= bounds[i]`` (non-cumulative), and
    ``counts[-1]`` the overflow.  Percentiles interpolate linearly within
    the winning bucket, which is the usual fixed-bucket estimate.
    """

    __slots__ = ("name", "labels", "bounds", "counts", "sum", "count")

    def __init__(self, name: str, bounds=DEFAULT_LATENCY_BOUNDS, labels: tuple = ()):
        bounds = tuple(float(b) for b in bounds)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError(f"histogram bounds must be ascending and unique: {bounds!r}")
        self.name = name
        self.labels = labels
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def percentile(self, q: float) -> float:
        """The q-quantile estimate (q in [0, 1]); 0.0 when empty."""
        return histogram_quantile(self.bounds, self.counts, q)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def __repr__(self) -> str:
        return f"<Histogram {self.name} n={self.count} sum={self.sum:.6g}>"


def histogram_quantile(bounds, counts, q: float) -> float:
    """Quantile estimate over plain snapshot data (bounds + bucket counts).

    Works on live histograms and on snapshot entries alike, so exposition
    code never needs a live :class:`Histogram` to report p50/p99.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    total = sum(counts)
    if total == 0:
        return 0.0
    target = q * total
    cumulative = 0
    for i, count in enumerate(counts):
        cumulative += count
        if cumulative >= target and count:
            if i >= len(bounds):
                return float(bounds[-1])  # overflow bucket: clamp
            lower = bounds[i - 1] if i else 0.0
            upper = bounds[i]
            fraction = (target - (cumulative - count)) / count
            return lower + (upper - lower) * fraction
    return float(bounds[-1])


def _labels_key(labels: dict | None) -> tuple:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Get-or-create home of every instrument in one execution context."""

    enabled = True

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self):
        self._counters: dict[tuple, Counter] = {}
        self._gauges: dict[tuple, Gauge] = {}
        self._histograms: dict[tuple, Histogram] = {}

    def counter(self, name: str, **labels: object) -> Counter:
        key = (name, _labels_key(labels))
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter(name, key[1])
        return instrument

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = (name, _labels_key(labels))
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge(name, key[1])
        return instrument

    def histogram(
        self, name: str, bounds=DEFAULT_LATENCY_BOUNDS, **labels: object
    ) -> Histogram:
        key = (name, _labels_key(labels))
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(name, bounds, key[1])
        elif instrument.bounds != tuple(float(b) for b in bounds):
            raise ValueError(
                f"histogram {name!r} already registered with bounds "
                f"{instrument.bounds}, asked for {tuple(bounds)}"
            )
        return instrument

    # -- snapshots ------------------------------------------------------------

    def snapshot(self) -> dict:
        """The registry as a plain JSON-able dict (picklable, mergeable)."""
        return {
            "enabled": True,
            "counters": [
                {"name": c.name, "labels": dict(c.labels), "value": c.value}
                for c in self._counters.values()
            ],
            "gauges": [
                {"name": g.name, "labels": dict(g.labels), "value": g.value}
                for g in self._gauges.values()
            ],
            "histograms": [
                {
                    "name": h.name,
                    "labels": dict(h.labels),
                    "bounds": list(h.bounds),
                    "counts": list(h.counts),
                    "sum": h.sum,
                    "count": h.count,
                }
                for h in self._histograms.values()
            ],
        }

    def merge_snapshot(self, snapshot: dict, extra_labels: dict | None = None) -> None:
        """Fold one snapshot in: counters/histograms add, gauges overwrite.

        ``extra_labels`` are appended to every entry's labels — the
        sharded service tags each shard's snapshot with ``shard=<n>`` so
        per-shard gauges (clock, Gmpl) are never summed into nonsense.
        """
        extra = extra_labels or {}
        for entry in snapshot.get("counters", ()):
            self.counter(entry["name"], **{**entry["labels"], **extra}).inc(entry["value"])
        for entry in snapshot.get("gauges", ()):
            self.gauge(entry["name"], **{**entry["labels"], **extra}).set(entry["value"])
        for entry in snapshot.get("histograms", ()):
            histogram = self.histogram(
                entry["name"], entry["bounds"], **{**entry["labels"], **extra}
            )
            for i, count in enumerate(entry["counts"]):
                histogram.counts[i] += count
            histogram.sum += entry["sum"]
            histogram.count += entry["count"]

    # -- exposition -----------------------------------------------------------

    def to_prometheus(self, prefix: str = "repro_") -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []

        def sample(name: str, labels: tuple, value, extra: tuple = ()) -> str:
            pairs = ", ".join(f'{k}="{v}"' for k, v in (*labels, *extra))
            rendered = f"{{{pairs}}}" if pairs else ""
            return f"{name}{rendered} {_format_value(value)}"

        seen_types: set[str] = set()

        def type_line(name: str, kind: str) -> None:
            if name not in seen_types:
                seen_types.add(name)
                lines.append(f"# TYPE {name} {kind}")

        for counter in self._counters.values():
            name = prefix + _sanitize(counter.name)
            type_line(name, "counter")
            lines.append(sample(name, counter.labels, counter.value))
        for gauge in self._gauges.values():
            name = prefix + _sanitize(gauge.name)
            type_line(name, "gauge")
            lines.append(sample(name, gauge.labels, gauge.value))
        for histogram in self._histograms.values():
            name = prefix + _sanitize(histogram.name)
            type_line(name, "histogram")
            cumulative = 0
            for bound, count in zip(histogram.bounds, histogram.counts):
                cumulative += count
                lines.append(
                    sample(
                        name + "_bucket",
                        histogram.labels,
                        cumulative,
                        extra=(("le", _format_value(bound)),),
                    )
                )
            cumulative += histogram.counts[-1]
            lines.append(
                sample(name + "_bucket", histogram.labels, cumulative, extra=(("le", "+Inf"),))
            )
            lines.append(sample(name + "_sum", histogram.labels, histogram.sum))
            lines.append(sample(name + "_count", histogram.labels, histogram.count))
        return "\n".join(lines) + "\n"

    def __repr__(self) -> str:
        return (
            f"<MetricsRegistry {len(self._counters)} counters "
            f"{len(self._gauges)} gauges {len(self._histograms)} histograms>"
        )


def _sanitize(name: str) -> str:
    return "".join(c if c.isalnum() or c == "_" else "_" for c in name)


def _format_value(value) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        return None


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        return None


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        return None


#: Process-wide no-op instruments: calling them is safe and free of state.
NULL_COUNTER = _NullCounter("null")
NULL_GAUGE = _NullGauge("null")
NULL_HISTOGRAM = _NullHistogram("null")


class NullRegistry:
    """The disarmed registry: every lookup returns the shared no-ops."""

    enabled = False

    __slots__ = ()

    def counter(self, name: str, **labels: object) -> Counter:
        return NULL_COUNTER

    def gauge(self, name: str, **labels: object) -> Gauge:
        return NULL_GAUGE

    def histogram(self, name: str, bounds=DEFAULT_LATENCY_BOUNDS, **labels: object) -> Histogram:
        return NULL_HISTOGRAM

    def snapshot(self) -> dict:
        return {"enabled": False, "counters": [], "gauges": [], "histograms": []}

    def merge_snapshot(self, snapshot: dict, extra_labels: dict | None = None) -> None:
        return None

    def to_prometheus(self, prefix: str = "repro_") -> str:
        return ""

    def __repr__(self) -> str:
        return "<NullRegistry>"
