"""The span tracer: a bounded flight recorder with Chrome-trace export.

Hot phases record *spans* — ``(name, start, end)`` wall-clock intervals
from ``time.perf_counter`` with optional JSON-able args — into a bounded
ring buffer (a ``deque(maxlen=...)``), so a long-running daemon retains
the most recent window of activity at O(1) cost per span and a fixed
memory ceiling: a true flight recorder, not an unbounded log.

Recording never touches the simulation clock or any RNG — instrumented
code reads ``perf_counter`` and appends a tuple, which is what keeps the
differential suites trace-identical with tracing armed.

Export is the Chrome trace event format (the ``traceEvents`` JSON loaded
by ``about:tracing`` / Perfetto): complete events (``ph: "X"``) for
spans, instant events (``ph: "i"``) for point occurrences, with one
process lane per trace group (the sharded service exports one lane per
shard, the daemon adds its own lane for admit/epoch spans).
"""

from __future__ import annotations

from collections import deque
from time import perf_counter

__all__ = ["SpanTracer", "NullTracer", "export_chrome_trace", "DEFAULT_TRACE_CAPACITY"]

#: Ring-buffer capacity: the most recent spans retained for export.
DEFAULT_TRACE_CAPACITY = 65_536

#: Internal event tuples: (phase, name, ts_us, dur_us, args).
_SPAN = "X"
_INSTANT = "i"


class SpanTracer:
    """Bounded ring buffer of spans and instants, perf_counter-based."""

    enabled = True

    __slots__ = ("_events", "_origin")

    def __init__(self, capacity: int = DEFAULT_TRACE_CAPACITY):
        if capacity < 1:
            raise ValueError(f"trace capacity must be >= 1, got {capacity}")
        self._events: deque = deque(maxlen=capacity)
        self._origin = perf_counter()

    def now(self) -> float:
        """The timestamp hot paths capture before timed work."""
        return perf_counter()

    def record(self, name: str, start: float, end: float, args: dict | None = None) -> None:
        """One completed span: *start*/*end* are ``perf_counter`` readings."""
        self._events.append(
            (_SPAN, name, (start - self._origin) * 1e6, (end - start) * 1e6, args)
        )

    def instant(self, name: str, args: dict | None = None) -> None:
        """One point event (a cohort split, a cache coalesce)."""
        self._events.append(
            (_INSTANT, name, (perf_counter() - self._origin) * 1e6, 0.0, args)
        )

    def events(self) -> list[tuple]:
        """The retained window, oldest first (plain tuples; picklable)."""
        return list(self._events)

    def clear(self) -> None:
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)

    def __repr__(self) -> str:
        return f"<SpanTracer {len(self._events)}/{self._events.maxlen} events>"


class NullTracer:
    """The disarmed tracer: recording is a no-op, export is empty."""

    enabled = False

    __slots__ = ()

    def now(self) -> float:
        return 0.0

    def record(self, name: str, start: float, end: float, args: dict | None = None) -> None:
        return None

    def instant(self, name: str, args: dict | None = None) -> None:
        return None

    def events(self) -> list[tuple]:
        return []

    def clear(self) -> None:
        return None

    def __len__(self) -> int:
        return 0

    def __repr__(self) -> str:
        return "<NullTracer>"


def export_chrome_trace(groups, *, armed: bool = True) -> dict:
    """Render trace groups as a Chrome-trace JSON object.

    *groups* is an iterable of ``(pid, label, events)`` — one process
    lane per group, where *events* are the tuples of
    :meth:`SpanTracer.events`.  The result loads directly in
    ``about:tracing`` / Perfetto.
    """
    trace_events: list[dict] = []
    for pid, label, events in groups:
        trace_events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": label},
            }
        )
        for phase, name, ts, dur, args in events:
            event = {
                "name": name,
                "cat": "repro",
                "ph": phase,
                "ts": ts,
                "pid": pid,
                "tid": 0,
            }
            if phase == _SPAN:
                event["dur"] = dur
            else:
                event["s"] = "t"
            if args:
                event["args"] = dict(args)
            trace_events.append(event)
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "metadata": {"armed": bool(armed)},
    }
