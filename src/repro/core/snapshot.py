"""Declarative semantics: the unique complete snapshot.

A *complete snapshot* (section 2) maps every non-source attribute to a
state in {VALUE, DISABLED} and a value (the task's value, or ⊥ when
DISABLED), such that an attribute is VALUE exactly when its enabling
condition evaluates to true over the snapshot.  Acyclicity guarantees the
snapshot is unique for given source values; an execution is *correct* iff
the states and values it produces for the target attributes agree with it.

This module is the reference evaluator used to verify the optimized engine
(the paper proves its optimizations correct against this semantics; we
test ours against it, including under Hypothesis-generated schemas).
"""

from __future__ import annotations

from typing import Mapping

from repro.core.conditions import UNRESOLVED
from repro.core.schema import DecisionFlowSchema
from repro.core.state import AttributeState
from repro.errors import ExecutionError
from repro.nulls import NULL

__all__ = ["CompleteSnapshot", "evaluate_schema", "check_against_snapshot"]


class CompleteSnapshot:
    """The unique complete snapshot of a schema for given source values."""

    __slots__ = ("schema", "states", "values")

    def __init__(
        self,
        schema: DecisionFlowSchema,
        states: dict[str, AttributeState],
        values: dict[str, object],
    ):
        self.schema = schema
        self.states = states
        self.values = values

    def enabled_names(self) -> tuple[str, ...]:
        return tuple(n for n, s in self.states.items() if s is AttributeState.VALUE)

    def disabled_names(self) -> tuple[str, ...]:
        return tuple(n for n, s in self.states.items() if s is AttributeState.DISABLED)

    def enabled_fraction(self, names: tuple[str, ...] | None = None) -> float:
        """Fraction of *names* (default: non-source attributes) that are enabled."""
        names = names if names is not None else self.schema.non_source_names
        if not names:
            return 0.0
        enabled = sum(1 for n in names if self.states[n] is AttributeState.VALUE)
        return enabled / len(names)

    def target_values(self) -> dict[str, object]:
        return {n: self.values[n] for n in self.schema.target_names}

    def needed_cost(self) -> int:
        """Total query cost of enabled attributes (lower bound intuition only)."""
        return sum(
            self.schema[n].cost
            for n, s in self.states.items()
            if s is AttributeState.VALUE
        )

    def __repr__(self) -> str:
        return (
            f"<CompleteSnapshot {self.schema.name!r} "
            f"enabled={len(self.enabled_names())} disabled={len(self.disabled_names())}>"
        )


def evaluate_schema(
    schema: DecisionFlowSchema, source_values: Mapping[str, object]
) -> CompleteSnapshot:
    """Compute the unique complete snapshot by one pass in topological order."""
    missing = set(schema.source_names) - set(source_values)
    if missing:
        raise ExecutionError(f"missing source values: {sorted(missing)}")
    extra = set(source_values) - set(schema.source_names)
    if extra:
        raise ExecutionError(f"values supplied for non-source attributes: {sorted(extra)}")

    states: dict[str, AttributeState] = {}
    values: dict[str, object] = {}

    def resolve(name: str) -> object:
        return values.get(name, UNRESOLVED)

    for name in schema.graph.topo_order:
        spec = schema[name]
        if spec.is_source:
            states[name] = AttributeState.VALUE
            values[name] = source_values[name]
            continue
        # Topological order guarantees every referenced attribute is already
        # assigned, so two-valued evaluation cannot raise.
        if spec.condition.eval_bool(resolve):
            states[name] = AttributeState.VALUE
            values[name] = spec.task.compute(values)
        else:
            states[name] = AttributeState.DISABLED
            values[name] = NULL

    return CompleteSnapshot(schema, states, values)


def check_against_snapshot(
    snapshot: CompleteSnapshot,
    observed_states: Mapping[str, AttributeState],
    observed_values: Mapping[str, object],
    require_targets: bool = True,
) -> list[str]:
    """Check an observed (partial) execution outcome against the snapshot.

    Returns a list of human-readable violations (empty = correct).  Only
    attributes present in *observed_states* are compared — the semantics
    deems states/values of unevaluated attributes irrelevant — except that
    with ``require_targets`` every target must have been observed stable.
    """
    violations: list[str] = []
    for name, state in observed_states.items():
        if not state.stable:
            continue
        expected_state = snapshot.states[name]
        if state is not expected_state:
            violations.append(
                f"{name}: observed {state.value}, snapshot says {expected_state.value}"
            )
            continue
        if state is AttributeState.VALUE:
            observed = observed_values.get(name, UNRESOLVED)
            expected = snapshot.values[name]
            if observed != expected:
                violations.append(
                    f"{name}: observed value {observed!r}, snapshot says {expected!r}"
                )
    if require_targets:
        for name in snapshot.schema.target_names:
            state = observed_states.get(name)
            if state is None or not state.stable:
                violations.append(f"target {name} did not stabilize")
    return violations
