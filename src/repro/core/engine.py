"""The decision-flow execution engine (architecture of Figure 2).

The engine orchestrates, per the paper's execution algorithm (section 3):

1. **Evaluation phase** — fold newly arrived values into the snapshot and
   propagate consequences (delegated to :class:`InstanceRuntime.drain`);
   exit the instance when every target attribute is stable.
2. **Prequalifying phase** — build the candidate pool (options P/N, S/C).
3. **Scheduling phase** — pick candidates by the heuristic (E/C) under
   the %Permitted parallelism bound and dispatch their queries to the
   database server.

The engine is multi-instance: any number of flow instances share one
database server (and its simulated clock), which is how the bounded-
resource/throughput experiments of section 5 are run.

On instance completion the engine *halts immediately* (as the paper's
semantics allows once all targets are stable): in-flight queries are
cancelled at their next unit boundary and the units already processed
count toward Work.  Pass ``halt_policy="drain"`` to let them run to
completion instead (the difference is examined by an ablation benchmark).

Two engine-level extensions beyond the paper's experiments:

* **failure tolerance** — a query the database reports as *failed* still
  stabilizes its attribute, with an :class:`~repro.nulls.ExceptionValue`;
  downstream tasks and conditions continue with incomplete information
  ("e.g., if a database is down").
* **result sharing** (``share_results=True``) — concurrent instances with
  overlapping data share query results through a
  :class:`~repro.core.sharing.ResultShare` (the paper's §6 future-work
  direction): identical queries are answered from the table or joined to
  the in-flight duplicate instead of re-hitting the database.
"""

from __future__ import annotations

import itertools
from time import perf_counter
from typing import Callable, Mapping

from repro.core.instance import InstanceRuntime
from repro.core.metrics import InstanceMetrics
from repro.core.scheduler import select_for_launch
from repro.core.schema import DecisionFlowSchema
from repro.core.sharing import ResultShare, UNSET, share_key
from repro.core.state import Enablement
from repro.core.strategy import Strategy
from repro.errors import ExecutionError
from repro.nulls import ExceptionValue
from repro.obs import NULL_OBS, Observability
from repro.simdb.database import DatabaseServer, QueryShareCache

__all__ = ["Engine", "EngineObserver", "claim_instance_id"]


def claim_instance_id(
    instance_id: str | None,
    schema_name: str,
    seq: "itertools.count",
    claimed: set[str],
    scope: str = "engine",
) -> str:
    """Allocate or validate an instance id against the *claimed* set.

    Generated ids are ``{schema_name}#{n}`` and skip any name a caller
    already claimed; an explicit id that is already claimed raises.  The
    caller adds the returned id to *claimed* once the submission is
    accepted (a rejected submission must not burn the name).  Shared by
    the engine and the sharded runtime so preassigned ids can never
    drift from engine-generated ones.
    """
    if instance_id is None:
        instance_id = f"{schema_name}#{next(seq)}"
        while instance_id in claimed:
            instance_id = f"{schema_name}#{next(seq)}"
    elif instance_id in claimed:
        raise ExecutionError(
            f"duplicate instance id {instance_id!r}: ids must be unique per {scope}"
        )
    return instance_id


class EngineObserver:
    """No-op observation hooks for engine events.

    Subclass and override the hooks you care about; the engine calls them
    synchronously at the corresponding points of the execution algorithm.
    The high-level :class:`repro.api.DecisionService` builds its typed
    event system on top of this seam.
    """

    def on_instance_start(self, instance: InstanceRuntime) -> None:
        """An instance began its evaluation phase."""

    def on_launch(
        self,
        instance: InstanceRuntime,
        name: str,
        *,
        speculative: bool,
        shared: str | None,
    ) -> None:
        """A task launch was decided for *name*.

        ``shared`` is ``None`` for a real database dispatch, ``"hit"`` when
        the result came from the share table, ``"join"`` when the launch
        joined another instance's in-flight query.
        """

    def on_query_done(
        self, instance: InstanceRuntime, name: str, *, units: int, completed: bool
    ) -> None:
        """The database finished (or cancelled) a query this instance issued."""

    def on_instance_complete(self, instance: InstanceRuntime) -> None:
        """All target attributes of the instance are stable."""


class _SharedWait:
    """Placeholder in ``instance.inflight`` for a joined (shared) query."""

    __slots__ = ("key",)

    #: a joined query costs the database nothing, so it must not consume
    #: a %Permitted parallelism slot in the scheduler's in-flight count.
    counts_for_parallelism = False

    def __init__(self, key: tuple):
        self.key = key

    def cancel(self) -> None:  # waiters have nothing to cancel
        return None


class Engine:
    """Executes decision-flow instances against a database server."""

    def __init__(
        self,
        schema: DecisionFlowSchema,
        strategy: Strategy,
        database: DatabaseServer,
        halt_policy: str = "cancel",
        share_results: bool = False,
        observer: EngineObserver | None = None,
        query_cache: QueryShareCache | bool | None = None,
        cohorts: bool = False,
        obs: Observability | None = None,
    ):
        if halt_policy not in ("cancel", "drain"):
            raise ValueError(f"halt_policy must be 'cancel' or 'drain', got {halt_policy!r}")
        self.schema = schema
        self.strategy = strategy
        self.database = database
        self.sim = database.sim
        self.halt_policy = halt_policy
        self.observer = observer
        self.share: ResultShare | None = ResultShare() if share_results else None
        if query_cache is True:
            query_cache = QueryShareCache(database)
        self.query_cache: QueryShareCache | None = query_cache or None
        self.instances: list[InstanceRuntime] = []
        self._instance_ids: set[str] = set()
        self._id_seq = itertools.count(1)
        self._on_complete: dict[str, Callable[[InstanceMetrics], None]] = {}
        self._handle_key: dict[object, tuple] = {}
        #: instant-pool dispatch stats (0 until enable_pooled_dispatch)
        self.pooled_batches = 0
        self.pooled_events = 0
        #: Cohort execution is an instance-dedup layer only the batched
        #: engine implements (see BatchedEngine); the reference engine
        #: accepts the flag for config parity and runs every instance
        #: individually, leaving the counters at zero.
        self.cohorts = bool(cohorts)
        self.cohort_hits = 0
        self.cohort_splits = 0
        #: Observability (repro.obs): disarmed contexts share NULL_OBS and
        #: pay one boolean test per hook; armed ones get pre-bound
        #: instruments so hot paths never do registry lookups.
        self.obs = obs if obs is not None else NULL_OBS
        self._obs_on = self.obs.enabled
        if self._obs_on:
            registry = self.obs.registry
            self._obs_rounds = registry.counter("engine_scheduling_rounds")
            self._obs_launches = registry.counter("engine_queries_launched")
            self._obs_share_hits = registry.counter("engine_share_hits")
            self._obs_share_joins = registry.counter("engine_share_joins")
            self._obs_query_wall = registry.histogram("query_wall_seconds")
            self._obs_completions = registry.counter("engine_instances_completed")
            #: perf_counter at dispatch, keyed (instance_id, attribute) —
            #: closed in _query_done into a query-lifecycle span.
            self._obs_query_start: dict[tuple[str, str], float] = {}

    # -- public API -----------------------------------------------------------

    def submit_instance(
        self,
        source_values: Mapping[str, object] | None = None,
        at: float | None = None,
        instance_id: str | None = None,
        on_complete: Callable[[InstanceMetrics], None] | None = None,
    ) -> InstanceRuntime:
        """Create an instance and schedule its start (default: immediately)."""
        start_time = self.sim.now if at is None else at
        instance_id = claim_instance_id(
            instance_id, self.schema.name, self._id_seq, self._instance_ids
        )
        if start_time < self.sim.now:
            raise ExecutionError(
                f"instance {instance_id!r}: cannot start at past time {start_time} "
                f"(simulation clock is at {self.sim.now})"
            )
        self._instance_ids.add(instance_id)
        instance = self._make_instance(source_values or {}, instance_id, start_time)
        self.instances.append(instance)
        if on_complete is not None:
            self._on_complete[instance_id] = on_complete
        self.sim.schedule_at(start_time, lambda: self._start(instance))
        return instance

    def run(self, until: float | None = None) -> None:
        """Advance the shared simulation clock."""
        self.sim.run(until)

    def run_single(self, source_values: Mapping[str, object] | None = None) -> InstanceMetrics:
        """Convenience: execute one instance to completion and return metrics."""
        instance = self.submit_instance(source_values)
        self.sim.run()
        if not instance.done:
            unstable = [
                t for t in self.schema.target_names if not instance.cells[t].stable
            ]
            raise ExecutionError(
                f"instance {instance.instance_id} stalled; unstable targets: {unstable}"
            )
        return instance.metrics

    # -- internal event handlers -----------------------------------------------

    def _make_instance(
        self,
        source_values: Mapping[str, object],
        instance_id: str,
        start_time: float,
    ) -> InstanceRuntime:
        """Instantiate the runtime representation of one flow instance.

        The seam the :class:`~repro.core.batch_engine.BatchedEngine`
        overrides to substitute its flat-array instances; everything else
        in the submit path (id allocation, validation, scheduling the
        start event) is engine-independent.
        """
        return InstanceRuntime(
            self.schema, self.strategy, instance_id, source_values, start_time
        )

    def _start(self, instance: InstanceRuntime) -> None:
        if self._obs_on:
            t0 = perf_counter()
            instance.start()
            self.obs.tracer.record(
                "engine.start_state",
                t0,
                perf_counter(),
                args={"instance": instance.instance_id},
            )
        else:
            instance.start()
        if self.observer is not None:
            self.observer.on_instance_start(instance)
        self._after_event(instance)

    def _after_event(self, instance: InstanceRuntime) -> None:
        if self._obs_on:
            t0 = perf_counter()
            self._advance(instance)
            self.obs.tracer.record(
                "engine.round",
                t0,
                perf_counter(),
                args={"instance": instance.instance_id},
            )
            self._obs_rounds.inc()
            return
        self._advance(instance)

    def _advance(self, instance: InstanceRuntime) -> None:
        """One scheduling round: drain, finish-check, cancel, select, launch."""
        instance.drain()
        if instance.targets_stable():
            self._finish(instance)
            return
        if self.strategy.cancel_unneeded and self._tracks_unneeded(instance):
            for name, handle in list(instance.inflight.items()):
                if self._is_unneeded(instance, name) and not self._has_waiters(handle):
                    handle.cancel()
        for name in self._select(instance):
            self._launch(instance, name)

    # Instance-representation seams (overridden by the batched engine,
    # like _make_instance/_stage_launch): the drain/finish/cancel/launch
    # protocol above stays engine-independent.

    def _tracks_unneeded(self, instance: InstanceRuntime) -> bool:
        return instance.needed is not None

    def _is_unneeded(self, instance: InstanceRuntime, name: str) -> bool:
        return instance.needed.is_unneeded(name)

    def _select(self, instance: InstanceRuntime):
        return select_for_launch(instance)

    def _has_waiters(self, handle: object) -> bool:
        if self.share is not None:
            key = self._handle_key.get(handle)
            if key is not None and self.share.waiter_count(key) > 0:
                return True
        if self.query_cache is not None and self.query_cache.waiter_count(handle) > 0:
            # Cancelling a coalesced primary would strand its followers
            # behind a full-cost reissue; keep it running instead.
            return True
        return False

    def _submit_query(
        self,
        task,
        values: Mapping[str, object] | None,
        on_complete,
        share_key_hint: tuple | None = None,
    ) -> object:
        """Dispatch one query, through the share cache when configured.

        ``share_key_hint`` lets callers that already computed the share
        key (the launch path with ``share_results`` on, the share-layer
        reissue) avoid freezing the input values a second time.
        """
        if self.query_cache is None:
            return self.database.submit(task.cost, on_complete)
        base = share_key_hint if share_key_hint is not None else share_key(task.name, values)
        return self.query_cache.submit(base + (task.cost,), task.cost, on_complete)

    def _stage_launch(self, instance: InstanceRuntime, name: str):
        """Gather the launch inputs and mark *name* launched.

        The instance-representation-specific half of a launch — the
        batched engine overrides it to read its flat arrays — while the
        sharing/dispatch protocol below stays engine-independent.
        Returns ``(task, values, speculative)``.
        """
        task = self.schema[name].task
        # Inputs are stable by the READY invariant, and the paper's fixed-data
        # assumption makes the result independent of *when* the query runs —
        # this is what makes speculative execution (and result sharing) safe.
        values = instance.stable_values(task.inputs)
        speculative = instance.cells[name].enablement is Enablement.UNKNOWN
        instance.launched.add(name)
        return task, values, speculative

    def _launch(self, instance: InstanceRuntime, name: str) -> None:
        task, values, speculative = self._stage_launch(instance, name)

        key: tuple | None = None
        if self.share is not None:
            key = share_key(task.name, values)
            cached = self.share.get(key)
            if cached is not UNSET:
                instance.metrics.shared_hits += 1
                if self._obs_on:
                    self._obs_share_hits.inc()
                    self.obs.tracer.instant(
                        "query.share_hit",
                        args={"instance": instance.instance_id, "attribute": name},
                    )
                if self.observer is not None:
                    self.observer.on_launch(
                        instance, name, speculative=speculative, shared="hit"
                    )
                # Deliver asynchronously so state changes stay event-driven.
                # Band 2: zero-delay deliveries fire after any database
                # completion at the same instant, under either kernel.
                self.sim.schedule(
                    0.0, lambda: self._shared_done(instance, name, cached), priority=(2, 0)
                )
                return
            if self.share.is_pending(key):
                instance.metrics.shared_joins += 1
                if self._obs_on:
                    self._obs_share_joins.inc()
                    self.obs.tracer.instant(
                        "query.share_join",
                        args={"instance": instance.instance_id, "attribute": name},
                    )
                instance.inflight[name] = _SharedWait(key)
                if self.observer is not None:
                    self.observer.on_launch(
                        instance, name, speculative=speculative, shared="join"
                    )
                self.share.join(
                    key, lambda value: self._shared_done(instance, name, value)
                )
                return
            self.share.mark_pending(key)

        value = task.compute(values)
        instance.metrics.queries_launched += 1
        if self._obs_on:
            self._obs_launches.inc()
            self._obs_query_start[(instance.instance_id, name)] = perf_counter()
        if speculative:
            instance.speculative_launch.add(name)
            instance.metrics.speculative_launched += 1
        if self.observer is not None:
            self.observer.on_launch(instance, name, speculative=speculative, shared=None)
        handle = self._submit_query(
            task,
            values,
            lambda processed, completed: self._query_done(
                instance, name, value, key, processed, completed
            ),
            share_key_hint=key,
        )
        instance.inflight[name] = handle
        if key is not None:
            self._handle_key[handle] = key

    def _query_done(
        self,
        instance: InstanceRuntime,
        name: str,
        value: object,
        key: tuple | None,
        processed: int,
        completed: bool,
    ) -> None:
        if self._obs_on:
            started = self._obs_query_start.pop((instance.instance_id, name), None)
            if started is not None:
                now = perf_counter()
                self.obs.tracer.record(
                    "query",
                    started,
                    now,
                    args={
                        "instance": instance.instance_id,
                        "attribute": name,
                        "units": processed,
                        "completed": completed,
                    },
                )
                self._obs_query_wall.observe(now - started)
        handle = instance.inflight.pop(name, None)
        if handle is not None:
            self._handle_key.pop(handle, None)
        instance.metrics.work_units += processed
        if self.observer is not None:
            self.observer.on_query_done(
                instance, name, units=processed, completed=completed
            )

        if completed:
            instance.metrics.queries_completed += 1
            if handle is not None and getattr(handle, "failed", False):
                instance.metrics.queries_failed += 1
                value = ExceptionValue(f"query for {name!r} failed")
        else:
            instance.metrics.queries_cancelled += 1
            if (
                name in instance.speculative_launch
                and instance.cells[name].enablement is Enablement.DISABLED
            ):
                instance.metrics.speculative_wasted_queries += 1
                instance.metrics.speculative_wasted_units += processed

        if completed and not instance.done:
            accepted = instance.apply_query_result(name, value)
            if not accepted:
                instance.metrics.speculative_wasted_queries += 1
                instance.metrics.speculative_wasted_units += processed
        if not instance.done:
            self._after_event(instance)
        # Publish after the issuer's own advance: the issuer keeps ownership
        # of downstream queries, and waiters join those instead of racing to
        # issue them first.  Publishing happens even for finished instances —
        # waiters from other instances may still be blocked on this key.
        if key is not None:
            self._resolve_share(instance, name, value, key, completed, handle)

    def _resolve_share(
        self,
        instance: InstanceRuntime,
        name: str,
        value: object,
        key: tuple,
        completed: bool,
        handle: object,
    ) -> None:
        assert self.share is not None
        if completed:
            failed = handle is not None and getattr(handle, "failed", False)
            # Failures resolve current waiters but are not cached, so the
            # next instance retries the query.
            self.share.publish(key, value, cache=not failed)
            return
        # The issuer was cancelled; reissue on behalf of any waiters that
        # joined before the cancellation took effect.
        stranded = self.share.abandon(key)
        if not stranded:
            return
        self.share.mark_pending(key)
        for deliver in stranded:
            self.share.join(key, deliver)
        task = self.schema[name].task
        holder: dict[str, object] = {}

        def on_reissue(processed: int, done: bool) -> None:
            reissued_handle = holder.get("handle")
            failed = reissued_handle is not None and getattr(reissued_handle, "failed", False)
            if done and not failed:
                self.share.publish(key, value, cache=True)
            else:
                outcome = ExceptionValue(f"query for {name!r} failed") if failed else value
                self.share.publish(key, outcome, cache=False)

        holder["handle"] = self._submit_query(
            task, None, on_reissue, share_key_hint=key
        )

    def _shared_done(self, instance: InstanceRuntime, name: str, value: object) -> None:
        """A shared result (cache hit or resolved join) reaches an instance."""
        instance.inflight.pop(name, None)
        if instance.done:
            return
        # No database units were spent by this instance, so a later
        # disabled-condition resolution must not book wasted work for it.
        instance.speculative_launch.discard(name)
        instance.apply_query_result(name, value)
        self._after_event(instance)

    # -- pooled dispatch -------------------------------------------------------

    def enable_pooled_dispatch(self) -> None:
        """Register this engine as the simulation's instant-pool consumer.

        After this, :meth:`Simulation.run` drains the calendar through
        :meth:`Simulation.step_instant`, handing every same-``(time,
        band)`` event pool to :meth:`drain_pooled` in one call.  The
        observable trace is unchanged by construction — events still fire
        in exactly per-event order — but the per-event step loop (head
        re-peek, clock write, priority bookkeeping) is paid once per pool
        instead of once per event.
        """
        if self._obs_on:
            # The armed wrapper times each pool drain (the step_instant /
            # fire_pooled bucket span) without touching the disarmed path.
            self.sim.set_batch_consumer(self._drain_pooled_observed)
        else:
            self.sim.set_batch_consumer(self.drain_pooled)

    def _drain_pooled_observed(self, events) -> int:
        pool = len(events)
        t0 = perf_counter()
        consumed = self.drain_pooled(events)
        self.obs.tracer.record(
            "des.pool",
            t0,
            perf_counter(),
            args={"time": self.sim.now, "pool": pool, "consumed": consumed},
        )
        return consumed

    def drain_pooled(self, events) -> int:
        """Consume one instant pool, preserving per-event dispatch order.

        Delegates the fire loop to :meth:`Simulation.fire_pooled`: events
        run in exactly per-event order, and when a callback schedules an
        event that sorts *before* the rest of the pool (a closed-loop
        replacement start, say, which per-event stepping would run next),
        consumption stops and the kernel re-queues the remainder.
        Subclasses layer batch-level fast paths on top.
        """
        consumed = self.sim.fire_pooled(events)
        self.pooled_batches += 1
        self.pooled_events += consumed
        return consumed

    def _finish(self, instance: InstanceRuntime) -> None:
        instance.done = True
        instance.metrics.finish_time = self.sim.now
        instance.finalize_metrics()
        if self._obs_on:
            self._obs_completions.inc()
            self.obs.tracer.instant(
                "instance.complete", args={"instance": instance.instance_id}
            )
        if self.halt_policy == "cancel":
            for handle in instance.inflight.values():
                if not self._has_waiters(handle):
                    handle.cancel()
        if self.observer is not None:
            self.observer.on_instance_complete(instance)
        callback = self._on_complete.pop(instance.instance_id, None)
        if callback is not None:
            callback(instance.metrics)

    def __repr__(self) -> str:
        done = sum(1 for i in self.instances if i.done)
        shared = " shared" if self.share is not None else ""
        return (
            f"<Engine {self.schema.name!r} strategy={self.strategy.code}{shared} "
            f"instances={done}/{len(self.instances)} done>"
        )
