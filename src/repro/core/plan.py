"""Compiled flow plans: schema + strategy lowered to index-based arrays.

Data-centric workflow optimizers compile a flow graph once and reuse the
plan across executions; the reference engine instead re-walks name-keyed
dicts (`AttributeCell` maps, string-tuple edge dictionaries, condition
ASTs) for every instance and every event.  A :class:`CompiledPlan` is the
one-time lowering that the :class:`~repro.core.batch_engine.BatchedEngine`
executes against:

* attributes become dense indices in schema declaration order; all edge
  lists (data inputs/consumers, enabling consumers, condition refs) are
  int-encoded tuples;
* every enabling condition is compiled to a closure over the instance's
  flat stable-value list, returning a Kleene truth as a small int
  (``0`` FALSE / ``1`` UNKNOWN / ``2`` TRUE, matching :class:`Tri`
  values) — no AST walking, no enum allocation per evaluation;
* the scheduling heuristic is precomputed into one scalar rank per
  attribute (primary key × topo tie-break), so launch selection sorts
  plain ints;
* the backward-propagation dead-edge analysis is pre-cascaded: the plan
  stores the post-construction alive/live-out/unneeded template every
  instance starts from;
* the *start state* — everything :meth:`InstanceRuntime.start` derives
  purely from the source values (readiness, eagerly resolved conditions,
  inline synthesis results, needed-tracker kills) — is cached per
  distinct source valuation and replayed into new instances as flat
  array copies.

The plan never changes observable semantics: each compiled piece mirrors
one reference code path exactly, and the engine differential harness
asserts the equivalence end to end.
"""

from __future__ import annotations

from typing import Callable, List

from repro.core.conditions import And, Condition, Literal, Not, Or, UNRESOLVED
from repro.core.predicates import (
    AttrRef,
    Comparison,
    IsException,
    IsNull,
    UserPredicate,
)
from repro.core.propagation import NeededTracker, edge_table
from repro.core.schema import DecisionFlowSchema
from repro.core.state import Enablement, Readiness
from repro.core.strategy import Strategy
from repro.nulls import NULL, ExceptionValue

__all__ = ["CompiledPlan", "compile_condition", "START_CACHE_LIMIT"]

#: Bound on cached start states per plan.  Service workloads with unique
#: per-request source values get no reuse, so without a cap the cache
#: would hold one full state snapshot (and references to caller-supplied
#: source objects) per request for the life of the engine.
START_CACHE_LIMIT = 256

#: Readiness / enablement dimension codes used in the flat state arrays.
#: They equal the corresponding enum ``.value``s so conversions are direct.
R_PENDING, R_READY, R_COMPUTED = (
    Readiness.PENDING.value,
    Readiness.READY.value,
    Readiness.COMPUTED.value,
)
E_UNKNOWN, E_ENABLED, E_DISABLED = (
    Enablement.UNKNOWN.value,
    Enablement.ENABLED.value,
    Enablement.DISABLED.value,
)

#: Compiled Kleene truth values (== ``Tri.FALSE/UNKNOWN/TRUE .value``).
T_FALSE, T_UNKNOWN, T_TRUE = 0, 1, 2

#: A compiled condition: stable-value list -> T_FALSE | T_UNKNOWN | T_TRUE.
CondFn = Callable[[List[object]], int]


def _typed_freeze(value: object) -> object:
    """A structural cache key that never conflates distinguishable values.

    Like :func:`repro.core.sharing.freeze`, but each hashable leaf keys
    as ``(type, value)`` so ``==``-equal values of different types (the
    ``1`` / ``True`` / ``1.0`` family) get distinct entries, and each
    unhashable leaf keys by object identity, forfeiting reuse instead of
    risking a collision through equal ``repr``\\ s.
    """
    if isinstance(value, dict):
        try:
            return ("dict", tuple(sorted((k, _typed_freeze(v)) for k, v in value.items())))
        except TypeError:  # unorderable mixed-type keys: forfeit reuse
            return ("id", id(value))
    if isinstance(value, (list, tuple)):
        return ("seq", tuple(_typed_freeze(v) for v in value))
    if isinstance(value, (set, frozenset)):
        return ("set", frozenset(_typed_freeze(v) for v in value))
    try:
        hash(value)
    except TypeError:
        return ("id", id(value))
    return (value.__class__, value)


def _contains_user_code(condition: Condition) -> bool:
    """Whether evaluating *condition* may run arbitrary user callables.

    Pure predicate ASTs (literals, comparisons, null/exception tests,
    and their connectives) are side-effect free, so their start-phase
    evaluation can be replayed from a cached snapshot.  UserPredicate —
    and any third-party Condition subclass, conservatively — may observe
    each evaluation, so instances must evaluate them individually.
    """
    if isinstance(condition, (Literal, Comparison, IsNull, IsException)):
        return False
    if isinstance(condition, (And, Or)):
        return any(_contains_user_code(child) for child in condition.children)
    if isinstance(condition, Not):
        return _contains_user_code(condition.child)
    return True


# -- condition compilation -----------------------------------------------------


def compile_condition(condition: Condition, index: dict[str, int]) -> CondFn:
    """Compile a condition AST to a closure over the stable-value list.

    The closure replicates :meth:`Condition.eval_tri` exactly — including
    evaluation order, SQL-style ⊥ semantics, and exception-value
    handling — over ``sv`` where ``sv[i]`` is :data:`UNRESOLVED` until
    attribute *i* is stable and its observable value afterwards.
    Unknown condition subclasses fall back to the interpreted
    ``eval_tri`` through an index-based resolver.
    """
    if isinstance(condition, Literal):
        result = T_TRUE if condition.value else T_FALSE
        return lambda sv: result
    if isinstance(condition, Comparison):
        return _compile_comparison(condition, index)
    if isinstance(condition, IsNull):
        i = index[condition.name]

        def is_null(sv):
            value = sv[i]
            if value is UNRESOLVED:
                return T_UNKNOWN
            return T_TRUE if value is NULL else T_FALSE

        return is_null
    if isinstance(condition, IsException):
        i = index[condition.name]

        def is_exception(sv):
            value = sv[i]
            if value is UNRESOLVED:
                return T_UNKNOWN
            return T_TRUE if isinstance(value, ExceptionValue) else T_FALSE

        return is_exception
    if isinstance(condition, And):
        kids = tuple(compile_condition(child, index) for child in condition.children)

        def conj(sv):
            unknown = False
            for kid in kids:
                result = kid(sv)
                if result == T_FALSE:
                    return T_FALSE
                if result == T_UNKNOWN:
                    unknown = True
            return T_UNKNOWN if unknown else T_TRUE

        return conj
    if isinstance(condition, Or):
        kids = tuple(compile_condition(child, index) for child in condition.children)

        def disj(sv):
            unknown = False
            for kid in kids:
                result = kid(sv)
                if result == T_TRUE:
                    return T_TRUE
                if result == T_UNKNOWN:
                    unknown = True
            return T_UNKNOWN if unknown else T_FALSE

        return disj
    if isinstance(condition, Not):
        kid = compile_condition(condition.child, index)
        return lambda sv: 2 - kid(sv)
    if isinstance(condition, UserPredicate):
        refs = tuple((name, index[name]) for name in condition._refs)
        fn = condition.fn

        def user(sv):
            values: dict[str, object] = {}
            for name, i in refs:
                value = sv[i]
                if value is UNRESOLVED:
                    return T_UNKNOWN
                values[name] = value
            return T_TRUE if bool(fn(values)) else T_FALSE

        return user
    # Third-party Condition subclass: interpret via eval_tri.
    return lambda sv: condition.eval_tri(lambda name: sv[index[name]]).value


def _compile_comparison(node: Comparison, index: dict[str, int]) -> CondFn:
    left_i = index[node.left]
    op_fn = node.op.fn
    if isinstance(node.right, AttrRef):
        right_i = index[node.right.name]

        def compare_attrs(sv):
            left = sv[left_i]
            if left is UNRESOLVED:
                return T_UNKNOWN
            right = sv[right_i]
            if right is UNRESOLVED:
                return T_UNKNOWN
            if left is NULL or right is NULL:
                return T_FALSE
            if isinstance(left, ExceptionValue) or isinstance(right, ExceptionValue):
                return T_FALSE
            return T_TRUE if op_fn(left, right) else T_FALSE

        return compare_attrs

    right_const = node.right
    right_degenerate = right_const is NULL or isinstance(right_const, ExceptionValue)

    def compare_const(sv):
        left = sv[left_i]
        if left is UNRESOLVED:
            return T_UNKNOWN
        if left is NULL or right_degenerate:
            return T_FALSE
        if isinstance(left, ExceptionValue):
            return T_FALSE
        return T_TRUE if op_fn(left, right_const) else T_FALSE

    return compare_const


# -- the plan ------------------------------------------------------------------


class CompiledPlan:
    """One (schema, strategy) pair lowered to arrays, built once per engine."""

    __slots__ = (
        "schema",
        "strategy",
        "n",
        "names",
        "index",
        "is_source",
        "is_query",
        "source_idx",
        "non_source_idx",
        "target_idx",
        "synth_idx",
        "tasks",
        "cost",
        "task_inputs",
        "data_consumers",
        "enabling_consumers",
        "cond_refs",
        "cond_eval",
        "rank",
        "edges",
        "readiness0",
        "enablement0",
        "pending0",
        "alive0",
        "live_out0",
        "unneeded0",
        "external0",
        "start_cache_ok",
        "_start_cache",
        "_select_cache",
    )

    def __init__(self, schema: DecisionFlowSchema, strategy: Strategy):
        self.schema = schema
        self.strategy = strategy
        graph = schema.graph
        names = graph.names
        self.names = names
        self.n = len(names)
        index = {name: i for i, name in enumerate(names)}
        self.index = index

        self.is_source = bytearray(self.n)
        self.is_query = bytearray(self.n)
        self.tasks = []
        self.cost = []
        self.task_inputs = []
        self.cond_refs = []
        self.cond_eval = []
        synth: list[int] = []
        for i, name in enumerate(names):
            spec = schema[name]
            task = spec.task
            self.tasks.append(task)
            self.cost.append(spec.cost)
            self.is_source[i] = 1 if spec.is_source else 0
            if task is not None:
                self.task_inputs.append(
                    tuple((input_name, index[input_name]) for input_name in task.inputs)
                )
                if task.is_query:
                    self.is_query[i] = 1
                elif not spec.is_source:
                    synth.append(i)
            else:
                self.task_inputs.append(())
            self.cond_refs.append(tuple(index[ref] for ref in sorted(spec.condition.refs())))
            self.cond_eval.append(compile_condition(spec.condition, index))

        self.source_idx = tuple(i for i in range(self.n) if self.is_source[i])
        self.non_source_idx = tuple(i for i in range(self.n) if not self.is_source[i])
        self.target_idx = tuple(index[name] for name in schema.target_names)
        self.synth_idx = tuple(synth)

        self.data_consumers = tuple(
            tuple(index[consumer] for consumer in graph.data_consumers[name])
            for name in names
        )
        self.enabling_consumers = tuple(
            tuple(index[consumer] for consumer in graph.enabling_consumers[name])
            for name in names
        )

        # One scalar per attribute implementing rank_key: the heuristic's
        # primary key with the (unique) topological index as tie-break.
        if strategy.heuristic == "earliest":
            primary = [graph.depth[name] for name in names]
        else:
            primary = [schema[name].cost for name in names]
        topo = graph.topo_index
        self.rank = [primary[i] * (self.n + 1) + topo[name] for i, name in enumerate(names)]

        # -- pre-start state template ------------------------------------
        table = edge_table(schema)
        self.readiness0 = bytearray(self.n)
        self.enablement0 = bytearray(self.n)
        for i in self.source_idx:
            self.readiness0[i] = R_COMPUTED
            self.enablement0[i] = E_ENABLED
        self.pending0 = [0] * self.n
        for i in self.non_source_idx:
            self.pending0[i] = sum(
                1
                for _, parent_idx in table.data_in[i]
                if not self.is_source[parent_idx]
            )

        # Backward-propagation template with the initial cascade applied
        # (attributes with no live path to a target are dead on arrival).
        self.edges = table
        # Run the reference NeededTracker once and snapshot its arrays,
        # so the *initial* cascade is never reimplemented here.  (The
        # runtime cascade is intentionally duplicated in
        # BatchedInstance._kill_in_edges/_decrement_live for speed —
        # keep it in lockstep with NeededTracker; the engine
        # differential suite compares the two on every scenario.)
        tracker = NeededTracker(schema)
        self.alive0 = bytearray(tracker._alive)
        self.live_out0 = list(tracker._live_out)
        self.unneeded0 = bytearray(self.n)
        for name in tracker.unneeded:
            self.unneeded0[index[name]] = 1
        self.external0 = bytearray(self.n)
        for target in tracker._external:
            self.external0[target] = 1

        #: Start states are replayable only when the start phase runs no
        #: user code: synthesis tasks and user-coded conditions must
        #: execute per instance (they may be impure or return mutable
        #: objects each instance must own).
        self.start_cache_ok = not synth and not any(
            _contains_user_code(schema[name].condition) for name in names
        )
        #: typed-frozen source values -> post-start state snapshot (see
        #: BatchedInstance.start); LRU-bounded to START_CACHE_LIMIT.
        self._start_cache: dict[object, tuple] = {}
        #: typed-frozen source values -> first-round launch selection
        #: (selected indices, pruned-dead candidate indices).  The
        #: scheduling phase of a *fresh* instance is a pure function of
        #: its post-start state — which the start key determines — so
        #: instance fleets sharing a source valuation compute it once per
        #: plan instead of once per instance (the batched drain's
        #: per-group sweep; see BatchedEngine._select_for_launch).
        self._select_cache: dict[object, tuple[tuple[int, ...], tuple[int, ...]]] = {}

    def start_key(self, source_values: dict[str, object]) -> object:
        """Cache key for the start-state snapshot of one source valuation.

        Unlike the result-sharing key (``==``-based by design), the start
        cache must never replay one valuation's state into a
        *distinguishable* one, so leaves are keyed by (type, value) —
        ``1``, ``True`` and ``1.0`` are three entries — and unhashable
        leaves key by object identity (no reuse rather than wrong reuse).
        """
        return _typed_freeze(source_values)

    def lookup_start(self, key: object) -> tuple | None:
        """The cached snapshot for *key*, refreshing its LRU recency."""
        cache = self._start_cache
        snapshot = cache.get(key)
        if snapshot is not None and next(reversed(cache)) != key:
            # Re-insert so hot valuations are the last evicted.
            del cache[key]
            cache[key] = snapshot
        return snapshot

    def remember_start(self, key: object, snapshot: tuple) -> None:
        """Cache a post-start state snapshot, evicting LRU at the cap.

        With :meth:`lookup_start` refreshing recency on every hit, hot
        valuations survive arbitrarily long all-unique churn; without the
        cap, a unique-per-request stream would hold one full snapshot
        (plus caller-supplied source objects) per request forever.
        """
        cache = self._start_cache
        if len(cache) >= START_CACHE_LIMIT:
            cache.pop(next(iter(cache)))
        cache[key] = snapshot

    def lookup_select(self, key: object) -> tuple[tuple[int, ...], tuple[int, ...]] | None:
        """The memoized fresh-instance launch selection for *key*."""
        return self._select_cache.get(key)

    def remember_select(
        self, key: object, selection: tuple[tuple[int, ...], tuple[int, ...]]
    ) -> None:
        """Memoize a fresh instance's first launch selection (FIFO-bounded)."""
        cache = self._select_cache
        if len(cache) >= START_CACHE_LIMIT:
            cache.pop(next(iter(cache)))
        cache[key] = selection

    def __repr__(self) -> str:
        return (
            f"<CompiledPlan {self.schema.name!r} {self.strategy.code} "
            f"|A|={self.n} edges={self.edges.edge_count}>"
        )
