"""Modular (user-facing) decision flows and their flattening.

The model presented to users is modular, "to support scalability and levels
of abstraction" (section 2): tasks are grouped into modules, and a module
carries its own enabling condition.  For execution the schema is
*flattened*: the enabling condition of a module is AND-ed into the enabling
condition of each task and submodule within it, which gives the engine more
freedom in task ordering.  Figure 1(b) of the paper is the flattened form
of Figure 1(a).
"""

from __future__ import annotations

from typing import Iterable, Union

from repro.core.attribute import Attribute
from repro.core.conditions import Condition, TRUE, conjoin
from repro.core.schema import DecisionFlowSchema
from repro.errors import SchemaError

__all__ = ["Module", "flatten"]

Member = Union[Attribute, "Module"]


class Module:
    """A named group of attributes and submodules with a shared condition."""

    __slots__ = ("name", "condition", "members", "doc")

    def __init__(
        self,
        name: str,
        members: Iterable[Member] = (),
        condition: Condition = TRUE,
        doc: str = "",
    ):
        self.name = name
        self.condition = condition
        self.members: list[Member] = list(members)
        self.doc = doc

    def add(self, member: Member) -> Member:
        """Append a member (attribute or submodule); returns it for chaining."""
        self.members.append(member)
        return member

    def walk(self, prefix: Condition = TRUE):
        """Yield (attribute, effective_condition) over the module tree.

        ``effective_condition`` is the attribute's own condition AND-ed with
        the conditions of every enclosing module — the flattening rule.
        """
        scope = conjoin(prefix, self.condition)
        for member in self.members:
            if isinstance(member, Module):
                yield from member.walk(scope)
            elif isinstance(member, Attribute):
                yield member, conjoin(scope, member.condition)
            else:
                raise SchemaError(
                    f"module {self.name!r} contains a non-member object: {member!r}"
                )

    def attribute_names(self) -> list[str]:
        return [attribute.name for attribute, _ in self.walk()]

    def __repr__(self) -> str:
        return f"<Module {self.name!r} members={len(self.members)}>"


def flatten(root: Module, name: str | None = None) -> DecisionFlowSchema:
    """Flatten a modular decision flow into an executable schema.

    Source attributes must appear in scopes whose effective condition is
    the literal TRUE (a conditional source makes no sense — its value is
    given, not computed).
    """
    flattened: list[Attribute] = []
    for attribute, condition in root.walk():
        if attribute.is_source and condition is not attribute.condition and condition != TRUE:
            raise SchemaError(
                f"source attribute {attribute.name!r} sits inside a conditional module"
            )
        flattened.append(
            Attribute(
                name=attribute.name,
                task=attribute.task,
                condition=condition,
                is_target=attribute.is_target,
                doc=attribute.doc,
            )
        )
    return DecisionFlowSchema(flattened, name=name or root.name)
