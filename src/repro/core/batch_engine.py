"""The batched multi-instance engine: compiled plans over flat array state.

:class:`BatchedEngine` executes the same algorithm as the reference
:class:`~repro.core.engine.Engine` — identical launches, identical
metrics, identical observer events — but stores per-instance attribute
state in flat per-flow arrays indexed by a
:class:`~repro.core.plan.CompiledPlan` instead of dict-keyed
:class:`~repro.core.instance.InstanceRuntime` graphs:

* readiness/enablement live in ``bytearray``s, pending-input counts in a
  plain int list, and the evaluation phase walks int-encoded consumer
  lists — no per-attribute cell objects, no string hashing in the hot
  propagation loop;
* enabling conditions run as plan-compiled closures over the stable-value
  list, and the backward-propagation dead-edge analysis operates on the
  plan's pre-cascaded edge arrays;
* the prequalifier pool is maintained *incrementally* (an attribute
  enters candidacy when it becomes READY or its condition enables) and
  the scheduling phase sorts precomputed scalar ranks, instead of
  re-scanning and re-keying the whole schema between DES events;
* instances created from identical source values replay a cached start
  state (one array copy) rather than re-deriving the initial
  propagation fixpoint per instance — enabled only for schemas whose
  start phase runs no user code (no synthesis tasks, no user-coded
  conditions), since those must execute per instance.

The engine-level event handling (query completion, sharing, halting) is
*inherited* from the reference engine, so the two can only diverge in
the instance layer — which the differential harness in
``tests/test_engine_differential.py`` pins down property-by-property.
"""

from __future__ import annotations

from collections import deque
from time import perf_counter
from typing import Iterator, Mapping, Sequence

from repro.core.engine import Engine
from repro.core.metrics import InstanceMetrics
from repro.core.conditions import UNRESOLVED
from repro.core.sharing import share_key
from repro.core.plan import (
    CompiledPlan,
    E_DISABLED,
    E_ENABLED,
    E_UNKNOWN,
    R_COMPUTED,
    R_PENDING,
    R_READY,
    T_TRUE,
    T_UNKNOWN,
)
from repro.core.scheduler import permitted_slots
from repro.core.state import AttributeState, Enablement, Readiness, derive_state
from repro.errors import ExecutionError, IllegalTransitionError
from repro.nulls import NULL, ExceptionValue

__all__ = ["BatchedEngine", "BatchedInstance"]

_UNSET = object()


class _LaunchRecord:
    """One launch decision of a cohort representative, replayable per member.

    Carries everything a member needs to issue the *same* query without
    re-running selection or input freezing: the task, the frozen input
    mapping (shared read-only), the speculative flag, and — computed
    lazily, once for the whole cohort — the task value and the query-
    cache share key.
    """

    __slots__ = ("name", "index", "task", "values", "speculative", "_value", "_key")

    def __init__(self, name, index, task, values, speculative):
        self.name = name
        self.index = index
        self.task = task
        self.values = values
        self.speculative = speculative
        self._value = _UNSET
        self._key = _UNSET

    def value(self):
        """The task's computed value (deterministic in its stable inputs)."""
        if self._value is _UNSET:
            self._value = self.task.compute(self.values)
        return self._value

    def value_for(self, failed: bool):
        """The value a completion delivers: the computed value, or the
        failure sentinel the reference engine substitutes."""
        if failed:
            return ExceptionValue(f"query for {self.name!r} failed")
        return self.value()

    def key(self, query_cache) -> tuple | None:
        """The share-key hint for ``_submit_query`` (None without a cache)."""
        if query_cache is None:
            return None
        if self._key is _UNSET:
            self._key = share_key(self.task.name, self.values)
        return self._key


class _StageRecord:
    """One resolution step of a cohort representative.

    ``name`` is the attribute whose query resolved (None for the start
    stage).  The outcome triple (``completed``/``failed``/``accepted``)
    is what members match their own outcome against — any difference
    splits the member off.  ``cancel_wasted`` mirrors the reference
    engine's cancelled-speculative check, ``drain_wasted_*`` the
    state-derived wasted-work deltas booked during the representative's
    advance (identical for every member, unlike the query-unit-based
    parts which members book with their own units).  ``cancels`` are the
    unneeded-cancel decisions members re-apply to their own handles,
    ``launches`` the follow-on launches they replay.
    """

    __slots__ = (
        "name",
        "completed",
        "failed",
        "accepted",
        "cancel_wasted",
        "drain_wasted_queries",
        "drain_wasted_units",
        "done_after",
        "cancels",
        "launches",
    )

    def __init__(self, name):
        self.name = name
        self.completed = True
        self.failed = False
        self.accepted = True
        self.cancel_wasted = False
        self.drain_wasted_queries = 0
        self.drain_wasted_units = 0
        self.done_after = False
        self.cancels: tuple[str, ...] = ()
        self.launches: list[_LaunchRecord] = []


class _Cohort:
    """A representative instance plus the members mirroring its trace.

    Formed at one ``(typed start valuation, start instant)`` point;
    ``open`` while the representative is still at its start stage (the
    only window in which a joining member has missed nothing).  The
    ``log`` is append-only: members consume it by their own stage
    cursor, so a member lagging the representative (bounded/profiled
    backends) mirrors from history, and one running *ahead* of the log
    — or differing in any outcome — is split off.

    ``mode`` is decided at the first join:

    * ``"live"`` — members submit their own queries and mirror the log
      through their own completion callbacks (the only sound mode
      without a query cache, and the fallback whenever a
      representative's launch is answered by the cache rather than
      dispatched as a primary);
    * ``"lockstep"`` — with a query cache, members whose every launch
      would coalesce behind the representative's own primaries are
      tracked *virtually*: one weighted attachment per primary
      (:meth:`QueryShareCache.attach_virtual`), one shared metrics
      ``template`` (members are bit-identical until they finish), and
      per-member work only for observer events, finishing, and the two
      demotion paths back to ``"live"``/ordinary execution.
    """

    __slots__ = (
        "rep",
        "start_time",
        "log",
        "open",
        "live_members",
        "launch_by_name",
        "mode",
        "members",
        "template",
        "virtual",
        "cancelled",
        "final",
        "epoch",
    )

    def __init__(self, rep, start_time: float):
        self.rep = rep
        self.start_time = start_time
        self.log: list[_StageRecord] = []
        self.open = True
        self.live_members = 0
        self.launch_by_name: dict[str, _LaunchRecord] = {}
        #: None until the first member joins, then "live" or "lockstep"
        self.mode: str | None = None
        #: lockstep members in join order (retained after finishing for
        #: post-halt straggler bookkeeping)
        self.members: list = []
        #: the shared per-member metrics record of a lockstep cohort
        self.template: InstanceMetrics | None = None
        #: attribute name -> launch record, for virtual attachments whose
        #: members still wait on the result / have cancelled the wait
        self.virtual: dict[str, _LaunchRecord] = {}
        self.cancelled: dict[str, _LaunchRecord] = {}
        #: lazily built shared end-state for finishing lockstep members:
        #: every member of a cohort ends bit-identical, so the final
        #: arrays and derived attribute counters are computed once and
        #: shared (nothing mutates a done instance's arrays)
        self.final: tuple | None = None
        #: cache follower_epoch at the last verification that no real
        #: follower sits behind a representative primary — joins skip
        #: the per-key re-check while the epoch is unchanged
        self.epoch = -1

    def absorb(self, rec: _StageRecord) -> None:
        self.log.append(rec)
        for launch in rec.launches:
            self.launch_by_name[launch.name] = launch


class _BatchCell:
    """Read-only cell adapter over one attribute of a batched instance.

    Presents the :class:`~repro.core.state.AttributeCell` surface
    (``state``/``stable``/``value``/...) that handles, observers, and the
    inherited engine paths read, backed by the flat arrays.
    """

    __slots__ = ("_instance", "_index", "name")

    def __init__(self, instance: "BatchedInstance", index: int):
        self._instance = instance
        self._index = index
        self.name = instance.plan.names[index]

    @property
    def readiness(self) -> Readiness:
        return Readiness(self._instance._readiness[self._index])

    @property
    def enablement(self) -> Enablement:
        return Enablement(self._instance._enablement[self._index])

    @property
    def state(self) -> AttributeState:
        return derive_state(self.readiness, self.enablement)

    @property
    def stable(self) -> bool:
        return self._instance._sv[self._index] is not UNRESOLVED

    @property
    def value(self) -> object:
        value = self._instance._sv[self._index]
        if value is UNRESOLVED:
            raise ValueError(f"attribute {self.name!r} is not stable (state {self.state})")
        return value

    @property
    def speculative_value(self) -> object:
        if self._instance._readiness[self._index] != R_COMPUTED:
            raise ValueError(f"attribute {self.name!r} has no computed value")
        return self._instance._raw[self._index]

    def __repr__(self) -> str:
        return f"<_BatchCell {self.name} {self.state.value}>"


class _CellMap:
    """Name-keyed mapping view materializing :class:`_BatchCell` adapters."""

    __slots__ = ("_instance",)

    def __init__(self, instance: "BatchedInstance"):
        self._instance = instance

    def __getitem__(self, name: str) -> _BatchCell:
        return _BatchCell(self._instance, self._instance.plan.index[name])

    def __contains__(self, name: str) -> bool:
        return name in self._instance.plan.index

    def __iter__(self) -> Iterator[str]:
        return iter(self._instance.plan.names)

    def __len__(self) -> int:
        return self._instance.plan.n

    def items(self):
        for name in self._instance.plan.names:
            yield name, self[name]


class BatchedInstance:
    """One flow instance as flat arrays over a :class:`CompiledPlan`.

    Mirrors the :class:`InstanceRuntime` contract attribute for
    attribute; every mutator replicates the corresponding reference code
    path (same traversal order, same metric increments, same error
    types), so the engines' observable traces cannot diverge.
    """

    __slots__ = (
        "plan",
        "schema",
        "strategy",
        "instance_id",
        "done",
        "metrics",
        "inflight",
        "speculative_launch",
        "_readiness",
        "_enablement",
        "_raw",
        "_sv",
        "_pending",
        "_launched",
        "_alive",
        "_live_out",
        "_unneeded",
        "_external",
        "_cand",
        "_queue",
        "_started",
        "_start_key",
        "_sources",
        "_any_launched",
        "_cohort",
        "_cohort_stage",
    )

    def __init__(
        self,
        plan: CompiledPlan,
        instance_id: str,
        source_values: Mapping[str, object],
        start_time: float,
    ):
        self.plan = plan
        self.schema = plan.schema
        self.strategy = plan.strategy
        self.instance_id = instance_id
        self.done = False
        self.metrics = InstanceMetrics(instance_id=instance_id, start_time=start_time)

        missing = set(plan.schema.source_names) - set(source_values)
        if missing:
            raise ExecutionError(f"missing source values: {sorted(missing)}")

        sources = {name: source_values[name] for name in plan.schema.source_names}
        self._sources = sources
        self._start_key = plan.start_key(sources) if plan.start_cache_ok else None
        # State arrays are built lazily: a cached start replay and the
        # shared lockstep finish both install complete array sets, so
        # eagerly building them here would be pure waste on the hot
        # cohort paths.  Only a cold (uncached) start needs the plan's
        # initial state — `start()` builds it on demand.
        self._readiness: bytearray | None = None
        self._enablement: bytearray | None = None
        self._raw: list[object] | None = None
        self._sv: list[object] | None = None
        self._pending: list[int] | None = None
        self._launched = bytearray(plan.n)
        self._alive: bytearray | None = None
        self._live_out: list[int] | None = None
        self._unneeded: bytearray | None = None
        self._external: bytearray | None = None

        #: in-flight query handles keyed by attribute name (engine-facing)
        self.inflight: dict[str, object] = {}
        #: attribute names launched while their condition was UNKNOWN
        self.speculative_launch: set[str] = set()
        #: incrementally maintained candidate-pool members (indices)
        self._cand: set[int] = set()
        self._queue: deque[int] = deque()
        self._started = False
        #: False until the first launch: while False (and nothing is in
        #: flight), the instance state is a pure function of its start
        #: key, so the first scheduling round can replay a plan-level memo.
        self._any_launched = False
        #: Cohort membership: the _Cohort this instance represents or
        #: mirrors, None for ordinary instances (and for members after a
        #: split detaches them).  ``_cohort_stage`` is a member's cursor
        #: into the cohort log — the next stage record it must mirror.
        self._cohort: _Cohort | None = None
        self._cohort_stage = 0

    # -- lifecycle ---------------------------------------------------------

    def _build_arrays(self) -> None:
        """Install the plan's initial state (cold-start path only)."""
        plan = self.plan
        n = plan.n
        self._readiness = bytearray(plan.readiness0)
        self._enablement = bytearray(plan.enablement0)
        self._raw = [None] * n
        self._sv = [UNRESOLVED] * n
        index = plan.index
        for name, value in self._sources.items():
            i = index[name]
            self._raw[i] = value
            self._sv[i] = value
        self._pending = list(plan.pending0)
        if plan.strategy.propagation:
            self._alive = bytearray(plan.alive0)
            self._live_out = list(plan.live_out0)
            self._unneeded = bytearray(plan.unneeded0)
            self._external = bytearray(plan.external0)

    def start(self) -> None:
        """Initial evaluation phase, replayed from the plan cache when hot."""
        if self._started:
            raise ExecutionError(f"instance {self.instance_id} already started")
        self._started = True
        plan = self.plan
        cached = (
            plan.lookup_start(self._start_key) if self._start_key is not None else None
        )
        if cached is not None:
            (
                readiness,
                enablement,
                raw,
                sv,
                pending,
                alive,
                live_out,
                unneeded,
                external,
                cand,
                synth_count,
            ) = cached
            self._readiness = bytearray(readiness)
            self._enablement = bytearray(enablement)
            self._raw = list(raw)
            self._sv = list(sv)
            # The snapshot's source slots hold the first submitter's
            # objects; re-install this instance's own (typed-==-equal)
            # values so caller objects are never aliased across
            # instances.  Cacheable schemas run no tasks during start,
            # so source slots are the only value-bearing entries.
            index = plan.index
            for name, value in self._sources.items():
                i = index[name]
                self._raw[i] = value
                self._sv[i] = value
            self._pending = list(pending)
            if alive is not None:
                self._alive = bytearray(alive)
                self._live_out = list(live_out)
                self._unneeded = bytearray(unneeded)
                self._external = bytearray(external)
            self._cand = set(cand)
            self.metrics.synthesis_executed = synth_count
            return
        self._build_arrays()
        for i in plan.non_source_idx:
            if self._pending[i] == 0:
                self._mark_ready(i)
        for i in plan.non_source_idx:
            self._try_resolve_condition(i)
        self.drain()
        if self._start_key is None:
            return
        plan.remember_start(self._start_key, (
            bytes(self._readiness),
            bytes(self._enablement),
            tuple(self._raw),
            tuple(self._sv),
            tuple(self._pending),
            bytes(self._alive) if self._alive is not None else None,
            tuple(self._live_out) if self._live_out is not None else None,
            bytes(self._unneeded) if self._unneeded is not None else None,
            bytes(self._external) if self._external is not None else None,
            frozenset(self._cand),
            self.metrics.synthesis_executed,
        ))

    def targets_stable(self) -> bool:
        sv = self._sv
        for i in self.plan.target_idx:
            if sv[i] is UNRESOLVED:
                return False
        return True

    # -- evaluation phase ----------------------------------------------------

    def drain(self) -> None:
        """Propagate stability/condition/synthesis consequences to a fixpoint."""
        queue = self._queue
        while True:
            while queue:
                self._on_stabilized(queue.popleft())
            if not self._run_inline_synthesis():
                break

    def _mark_ready(self, i: int) -> None:
        if self._readiness[i] != R_PENDING:
            raise IllegalTransitionError(
                f"{self.plan.names[i]}: mark_ready in readiness {Readiness(self._readiness[i])}"
            )
        self._readiness[i] = R_READY
        if self.plan.is_query[i] and not self._launched[i]:
            self._cand.add(i)

    def _on_stabilized(self, i: int) -> None:
        plan = self.plan
        if self._alive is not None:
            if self._external[i]:
                self._external[i] = 0
                self._decrement_live(i)
            self._kill_in_edges(i, data=True, cond=True)
        pending = self._pending
        readiness = self._readiness
        for consumer in plan.data_consumers[i]:
            pending[consumer] -= 1
            if pending[consumer] == 0 and readiness[consumer] == R_PENDING:
                self._mark_ready(consumer)
        for consumer in plan.enabling_consumers[i]:
            self._try_resolve_condition(consumer)

    def _try_resolve_condition(self, i: int) -> None:
        if self._enablement[i] != E_UNKNOWN:
            return
        plan = self.plan
        if self.strategy.propagation:
            result = plan.cond_eval[i](self._sv)
            if result == T_UNKNOWN:
                return
            truth = result == T_TRUE
        else:
            sv = self._sv
            for ref in plan.cond_refs[i]:
                if sv[ref] is UNRESOLVED:
                    return
            result = plan.cond_eval[i](sv)
            if result == T_UNKNOWN:
                # Mirrors Condition.eval_bool on an undetermined condition.
                raise ValueError(
                    f"condition of {plan.names[i]!r} is undetermined with stable inputs"
                )
            truth = result == T_TRUE
        self._resolve_condition(i, truth)

    def _resolve_condition(self, i: int, truth: bool) -> None:
        plan = self.plan
        was_computed = self._readiness[i] == R_COMPUTED
        if truth:
            self._enablement[i] = E_ENABLED
            stable = was_computed
            if stable:
                self._sv[i] = self._raw[i]
            elif (
                self._readiness[i] == R_READY
                and plan.is_query[i]
                and not self._launched[i]
            ):
                self._cand.add(i)
        else:
            self._enablement[i] = E_DISABLED
            stable = True
            self._sv[i] = NULL
            if was_computed and plan.names[i] in self.speculative_launch:
                # The speculative query already completed; its result is now
                # discarded — the full cost was wasted work.
                self.metrics.speculative_wasted_queries += 1
                self.metrics.speculative_wasted_units += plan.cost[i]
        if self._alive is not None:
            self._kill_in_edges(i, data=False, cond=True)
        if stable:
            self._queue.append(i)

    def _set_computed(self, i: int, value: object) -> None:
        if self._readiness[i] != R_READY:
            raise IllegalTransitionError(
                f"{self.plan.names[i]}: set_computed in readiness {Readiness(self._readiness[i])}"
            )
        self._readiness[i] = R_COMPUTED
        self._raw[i] = value
        enablement = self._enablement[i]
        if enablement == E_ENABLED:
            self._sv[i] = value
            self._queue.append(i)
        elif enablement == E_UNKNOWN and self._alive is not None:
            self._kill_in_edges(i, data=True, cond=False)

    def _run_inline_synthesis(self) -> bool:
        """Execute every currently eligible synthesis task; True if any ran."""
        ran = False
        plan = self.plan
        for i in plan.synth_idx:
            if not self._is_executable(i):
                continue
            values = self._input_values(i)
            self.metrics.synthesis_executed += 1
            self._set_computed(i, plan.tasks[i].compute(values))
            ran = True
        return ran

    def _is_executable(self, i: int) -> bool:
        if self._readiness[i] != R_READY:
            return False
        enablement = self._enablement[i]
        if enablement == E_DISABLED:
            return False
        if enablement == E_UNKNOWN and not self.strategy.speculative:
            return False
        if self._unneeded is not None and self._unneeded[i]:
            return False
        return True

    def _input_values(self, i: int) -> dict[str, object]:
        """Stable input values of attribute *i*'s task (READY invariant)."""
        sv = self._sv
        values: dict[str, object] = {}
        for name, j in self.plan.task_inputs[i]:
            value = sv[j]
            if value is UNRESOLVED:
                raise ExecutionError(f"{self.instance_id}: input {name!r} not stable")
            values[name] = value
        return values

    # -- backward propagation (dead-edge analysis over plan arrays) ---------
    #
    # Index-based twin of NeededTracker._kill_in_edges/_decrement/
    # _mark_unneeded (propagation.py) — change them together.  The
    # differential suite compares unneeded detection between the engines
    # on every scenario.

    def _kill_in_edges(self, child: int, data: bool, cond: bool) -> None:
        table = self.plan.edges
        alive = self._alive
        if data:
            for edge_id, parent in table.data_in[child]:
                if alive[edge_id]:
                    alive[edge_id] = 0
                    self._decrement_live(parent)
        if cond:
            for edge_id, parent in table.cond_in[child]:
                if alive[edge_id]:
                    alive[edge_id] = 0
                    self._decrement_live(parent)

    def _decrement_live(self, i: int) -> None:
        self._live_out[i] -= 1
        if self._live_out[i] == 0 and not self._unneeded[i]:
            self._unneeded[i] = 1
            self._kill_in_edges(i, data=True, cond=True)

    # -- query results --------------------------------------------------------

    def apply_query_result(self, name: str, value: object) -> bool:
        """Install a completed query's value.  Returns False if discarded
        (the attribute was disabled while the query was in flight)."""
        i = self.plan.index[name]
        if self._enablement[i] == E_DISABLED:
            if self._readiness[i] == R_READY:
                # retained as diagnostic only
                self._readiness[i] = R_COMPUTED
                self._raw[i] = value
            return False
        self._set_computed(i, value)
        return True

    # -- finalization -----------------------------------------------------------

    def finalize_metrics(self) -> None:
        """Fill end-of-instance attribute counters into the metrics record."""
        plan = self.plan
        value_count = disabled_count = unstable = 0
        readiness = self._readiness
        enablement = self._enablement
        for i in plan.non_source_idx:
            e = enablement[i]
            if e == E_DISABLED:
                disabled_count += 1
            elif e == E_ENABLED and readiness[i] == R_COMPUTED:
                value_count += 1
            else:
                unstable += 1
        self.metrics.attrs_value = value_count
        self.metrics.attrs_disabled = disabled_count
        self.metrics.attrs_unstable = unstable
        if self._unneeded is not None:
            sv = self._sv
            launched = self._launched
            detected = 0
            avoided = 0
            for i in range(plan.n):
                if self._unneeded[i] and sv[i] is UNRESOLVED:
                    detected += 1
                    if not launched[i]:
                        avoided += plan.cost[i]
            self.metrics.unneeded_detected = detected
            self.metrics.unneeded_cost_avoided = avoided

    # -- inspection -------------------------------------------------------------

    @property
    def cells(self) -> _CellMap:
        """Name-keyed cell view (adapter parity with InstanceRuntime)."""
        return _CellMap(self)

    def stable_values(self, names: Sequence[str]) -> dict[str, object]:
        values: dict[str, object] = {}
        for name in names:
            value = self._sv[self.plan.index[name]]
            if value is UNRESOLVED:
                raise ExecutionError(f"{self.instance_id}: input {name!r} not stable")
            values[name] = value
        return values

    def state_map(self) -> dict[str, AttributeState]:
        return {
            name: derive_state(
                Readiness(self._readiness[i]), Enablement(self._enablement[i])
            )
            for i, name in enumerate(self.plan.names)
        }

    def value_map(self) -> dict[str, object]:
        sv = self._sv
        return {
            name: sv[i]
            for i, name in enumerate(self.plan.names)
            if sv[i] is not UNRESOLVED
        }

    def __repr__(self) -> str:
        flag = " done" if self.done else ""
        return f"<BatchedInstance {self.instance_id}{flag}>"


class BatchedEngine(Engine):
    """Executes decision-flow instances via a compiled plan and flat state.

    A drop-in replacement for the reference :class:`Engine` (same
    constructor, same submit/run surface, same observer hooks, same
    error behavior) selected through
    ``ExecutionConfig(engine="batched")``.  The submit path, query
    completion, sharing, halting, and pooled-dispatch (``drain_pooled``)
    logic are inherited; only instance construction, the evaluation
    phase, and launch selection are replaced by their array-based
    equivalents.  Under instant pooling the cross-instance sweep lands
    one layer down: every fresh instance drawn from the same start
    valuation replays the plan-memoized first launch selection
    (:meth:`_select_for_launch`) instead of re-pruning and re-sorting
    its own candidate pool.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        if self._obs_on:
            t0 = perf_counter()
            self.plan = CompiledPlan(self.schema, self.strategy)
            self.obs.tracer.record(
                "plan.compile",
                t0,
                perf_counter(),
                args={"schema": self.schema.name, "nodes": len(self.plan.names)},
            )
            registry = self.obs.registry
            self._obs_cohort_forms = registry.counter("cohort_forms")
            self._obs_cohort_joins = registry.counter("cohort_joins")
            self._obs_cohort_splits = registry.counter("cohort_splits")
        else:
            self.plan = CompiledPlan(self.schema, self.strategy)
        #: Cohort execution needs a deterministic start state (the typed
        #: start-state cache guarantees no synthesis and no user-coded
        #: conditions ran) and is mutually exclusive with the engine-level
        #: share table, whose hit/join rewiring happens inside _launch —
        #: below the seam members mirror.  The query cache composes with
        #: cohorts only at %Permitted == 100: member launches become
        #: followers of the representative's primaries, and follower
        #: handles do not count toward the parallelism budget
        #: (Engine._FollowerHandle.counts_for_parallelism is False), so a
        #: throttled strategy would legitimately schedule members
        #: differently from their representative — permitted_slots grants
        #: the whole pool unconditionally only at 100%.
        self._cohorts_on = (
            self.cohorts
            and self.plan.start_cache_ok
            and self.share is None
            and (self.strategy.permitted >= 100 or self.query_cache is None)
        )
        #: start_key → the currently open cohort for that valuation (a
        #: closed cohort is simply overwritten by the next representative)
        self._open_cohorts: dict[object, _Cohort] = {}
        #: stage record being captured while the representative advances
        self._recording: _StageRecord | None = None

    def _make_instance(
        self,
        source_values: Mapping[str, object],
        instance_id: str,
        start_time: float,
    ) -> BatchedInstance:
        return BatchedInstance(self.plan, instance_id, source_values, start_time)

    def _tracks_unneeded(self, instance: BatchedInstance) -> bool:
        return instance._unneeded is not None

    def _is_unneeded(self, instance: BatchedInstance, name: str) -> bool:
        return bool(instance._unneeded[self.plan.index[name]])

    def _select(self, instance: BatchedInstance) -> Sequence[str]:
        names = self.plan.names
        return [names[i] for i in self._select_for_launch(instance)]

    def _select_for_launch(self, instance: BatchedInstance) -> Sequence[int]:
        """The scheduling phase over the incrementally maintained pool.

        A *fresh* instance (started, nothing launched, nothing in
        flight) is in a state fully determined by its start key, so its
        first scheduling round is memoized per plan: fleets of instances
        sharing a source valuation prune and sort the candidate pool
        once, then replay ``(selected, pruned)`` as plain tuples.
        """
        cand = instance._cand
        if not cand:
            return ()
        fresh_key = None
        if not instance._any_launched and not instance.inflight:
            fresh_key = instance._start_key
            if fresh_key is not None:
                cached = self.plan.lookup_select(fresh_key)
                if cached is not None:
                    selected, pruned = cached
                    for i in pruned:
                        cand.discard(i)
                    return selected
        readiness = instance._readiness
        enablement = instance._enablement
        launched = instance._launched
        unneeded = instance._unneeded
        speculative_ok = self.strategy.speculative
        pool: list[int] = []
        dead: list[int] = []
        for i in cand:
            if (
                launched[i]
                or readiness[i] != R_READY
                or enablement[i] == E_DISABLED
                or (unneeded is not None and unneeded[i])
            ):
                dead.append(i)
                continue
            if enablement[i] == E_UNKNOWN and not speculative_ok:
                continue  # stays a candidate: may enable later
            pool.append(i)
        for i in dead:
            cand.discard(i)
        if pool:
            inflight = sum(
                1
                for handle in instance.inflight.values()
                if getattr(handle, "counts_for_parallelism", True)
            )
            slots = permitted_slots(len(pool), inflight, self.strategy.permitted)
            if slots > 0:
                pool.sort(key=self.plan.rank.__getitem__)
                selected: Sequence[int] = pool[:slots]
            else:
                selected = ()
        else:
            selected = ()
        if fresh_key is not None:
            self.plan.remember_select(fresh_key, (tuple(selected), tuple(dead)))
        return selected

    def _stage_launch(self, instance: BatchedInstance, name: str):
        """Array-backed half of a launch; the inherited sharing/dispatch
        protocol in :meth:`Engine._launch` runs unchanged on top."""
        plan = self.plan
        i = plan.index[name]
        values = instance._input_values(i)
        speculative = instance._enablement[i] == E_UNKNOWN
        instance._launched[i] = 1
        instance._any_launched = True
        instance._cand.discard(i)
        rec = self._recording
        if rec is not None:
            rec.launches.append(
                _LaunchRecord(name, i, plan.tasks[i], values, speculative)
            )
        return plan.tasks[i], values, speculative

    # -- cohort execution ---------------------------------------------------
    #
    # Whole-instance dedup over the typed start-state cache: the first
    # instance of a (start valuation, start instant) point becomes the
    # cohort *representative* and records every resolution stage it runs
    # (outcome, cancel decisions, launches, state-derived metric deltas);
    # instances arriving at the same point while the representative is
    # still at its start stage *join* and mirror the log instead of
    # running propagation/selection themselves.  Members still submit
    # their own queries — with a cache they coalesce into the
    # representative's primaries as followers, without one they pay the
    # database exactly as independent instances would — so database
    # totals, cache counters, event sequences, and cancel-pinning are
    # unchanged by construction.  Any outcome divergence (a bounded
    # backend completing out of order, an independent failure draw, a
    # cancel racing a completion) splits the member off: its start-state
    # arrays replay the matched prefix of the log and it continues as an
    # ordinary instance.

    def _start(self, instance: BatchedInstance) -> None:
        if not self._cohorts_on:
            return super()._start(instance)
        key = instance._start_key
        cohort = self._open_cohorts.get(key)
        if cohort is not None and cohort.open and cohort.start_time == self.sim.now:
            if cohort.mode is None:
                cohort.mode = self._decide_cohort_mode(cohort)
                if self._obs_on:
                    self.obs.tracer.instant(
                        "cohort.mode",
                        args={"rep": cohort.rep.instance_id, "mode": cohort.mode},
                    )
            if cohort.mode == "lockstep":
                self._join_lockstep(cohort, instance)
            else:
                self._join_cohort(cohort, instance)
            return
        cohort = _Cohort(instance, self.sim.now)
        instance._cohort = cohort
        rec = _StageRecord(None)
        self._recording = rec
        try:
            super()._start(instance)
        finally:
            self._recording = None
        rec.done_after = instance.done
        cohort.absorb(rec)
        self._open_cohorts[key] = cohort
        if self._obs_on:
            self._obs_cohort_forms.inc()
            self.obs.tracer.instant(
                "cohort.form", args={"rep": instance.instance_id}
            )

    def _query_done(self, instance, name, value, key, processed, completed) -> None:
        cohort = getattr(instance, "_cohort", None)
        if cohort is None or cohort.rep is not instance:
            return super()._query_done(instance, name, value, key, processed, completed)
        if cohort.mode == "lockstep":
            return self._lockstep_rep_done(
                cohort, instance, name, value, key, processed, completed
            )
        if instance.done:
            return super()._query_done(instance, name, value, key, processed, completed)
        cohort.open = False
        if cohort.live_members == 0:
            # No members joined (or every one finished or split); drop
            # back to the plain path.
            instance._cohort = None
            return super()._query_done(instance, name, value, key, processed, completed)
        self._record_stage(cohort, instance, name, value, key, processed, completed)

    def _record_stage(
        self, cohort: _Cohort, instance, name, value, key, processed, completed
    ) -> _StageRecord:
        """Run the representative's advance and append its stage record."""
        plan = self.plan
        i = plan.index[name]
        handle = instance.inflight.get(name)
        rec = _StageRecord(name)
        rec.completed = completed
        rec.failed = (
            completed and handle is not None and getattr(handle, "failed", False)
        )
        # Both checks read state the advance can only move *toward*
        # DISABLED, so they are captured before it runs — exactly where
        # the reference path evaluates them.
        rec.accepted = completed and instance._enablement[i] != E_DISABLED
        rec.cancel_wasted = (
            not completed
            and name in instance.speculative_launch
            and instance._enablement[i] == E_DISABLED
        )
        pre_inflight = [n for n in instance.inflight if n != name]
        before_queries = instance.metrics.speculative_wasted_queries
        before_units = instance.metrics.speculative_wasted_units
        self._recording = rec
        try:
            super()._query_done(instance, name, value, key, processed, completed)
        finally:
            self._recording = None
        # Split the representative's wasted-work delta into the
        # query-unit-based part (members re-book it with their own units)
        # and the drain-derived remainder (plan-cost-based, identical for
        # every member).
        query_queries = query_units = 0
        if (completed and not rec.accepted) or rec.cancel_wasted:
            query_queries, query_units = 1, processed
        rec.drain_wasted_queries = (
            instance.metrics.speculative_wasted_queries - before_queries - query_queries
        )
        rec.drain_wasted_units = (
            instance.metrics.speculative_wasted_units - before_units - query_units
        )
        rec.done_after = instance.done
        if not instance.done and self.strategy.cancel_unneeded and instance._unneeded is not None:
            unneeded = instance._unneeded
            index = plan.index
            rec.cancels = tuple(n for n in pre_inflight if unneeded[index[n]])
        cohort.absorb(rec)
        return rec

    # -- lockstep cohorts (cohort-weighted cache attachment) -----------------
    #
    # With a query cache, every member launch would coalesce behind the
    # representative's own primary for the same key, deliver zero units,
    # and inherit the primary's outcome — so members of a same-instant
    # cohort are *bit-identical* until they finish.  Lockstep mode
    # exploits that: members never submit queries (one weighted virtual
    # attachment per primary keeps cache counters and cancel-pinning
    # exact), never replay their arrays until they must, and share one
    # metrics template that each member copies on finishing.  Per-member
    # work remains only where identity genuinely diverges: observer
    # events (skipped when nobody listens), finishing, and the two exits
    # — demotion to live mirroring when a representative launch is
    # answered by the cache instead of dispatched (members must then
    # submit real queries to preserve per-member delivery events), and
    # the all-member split when members cancelled a wait the
    # representative's query went on to complete.

    def _listening(self):
        """The observer, or None when event emission would be unobservable."""
        obs = self.observer
        if obs is None or not getattr(obs, "has_listeners", True):
            return None
        return obs

    def _decide_cohort_mode(self, cohort: _Cohort) -> str:
        cache = self.query_cache
        if cache is None:
            return "live"
        rep = cohort.rep
        for launch in cohort.log[0].launches:
            handle = rep.inflight.get(launch.name)
            if handle is None or not cache.is_primary(handle):
                return "live"
            if cache.follower_count(handle):
                # Another instance already coalesced a real follower, so
                # virtual attachments could no longer fan ahead of it in
                # join order.
                return "live"
        cohort.epoch = cache.follower_epoch
        return "lockstep"

    def _join_lockstep(self, cohort: _Cohort, member: BatchedInstance) -> None:
        if cohort.virtual:
            cache = self.query_cache
            if cache.follower_epoch != cohort.epoch:
                rep = cohort.rep
                if any(
                    cache.follower_count(rep.inflight[vname])
                    for vname in cohort.virtual
                ):
                    # A real follower coalesced behind a representative
                    # primary since the last join; attaching this member
                    # virtually would fan it ahead of that earlier
                    # waiter.  Materialize the members attached so far
                    # (they *do* precede it) and continue the cohort in
                    # live mode.
                    self._demote_lockstep_at_join(cohort)
                    self._join_cohort(cohort, member)
                    return
                cohort.epoch = cache.follower_epoch
        member._cohort = cohort
        cohort.members.append(member)
        cohort.live_members += 1
        self.cohort_hits += 1
        if self._obs_on:
            self._obs_cohort_joins.inc()
            self.obs.tracer.instant(
                "cohort.join",
                args={"member": member.instance_id, "mode": "lockstep"},
            )
        if self.observer is not None:
            self.observer.on_instance_start(member)
        rec = cohort.log[0]
        if cohort.template is None:
            # Cohort-eligible schemas run no synthesis (start_cache_ok),
            # so the shared record starts from zero counters plus the
            # start stage's launch bookkeeping.
            template = InstanceMetrics(
                instance_id=f"cohort:{cohort.rep.instance_id}",
                start_time=cohort.start_time,
            )
            template.queries_launched = len(rec.launches)
            template.speculative_launched = sum(
                1 for launch in rec.launches if launch.speculative
            )
            cohort.template = template
            for launch in rec.launches:
                cohort.virtual[launch.name] = launch
        if rec.done_after:
            self._finish_lockstep_member(cohort, member)
            return
        cache = self.query_cache
        rep = cohort.rep
        for launch in rec.launches:
            cache.attach_virtual(rep.inflight[launch.name], 1)
        obs = self._listening()
        if obs is not None:
            for launch in rec.launches:
                obs.on_launch(
                    member, launch.name, speculative=launch.speculative, shared=None
                )

    def _lockstep_rep_done(
        self, cohort: _Cohort, rep, name, value, key, processed, completed
    ) -> None:
        launch = cohort.virtual.pop(name, None)
        live_virtual = launch is not None
        if not live_virtual:
            launch = cohort.cancelled.pop(name)
        handle = rep.inflight.get(name)
        failed = completed and handle is not None and getattr(handle, "failed", False)
        if rep.done:
            # Post-halt straggler: the representative books its own
            # event, then each (finished) member resolves its wait.
            super()._query_done(rep, name, value, key, processed, completed)
            self._lockstep_straggle(cohort, launch, name, completed, live_virtual, failed)
            return
        cohort.open = False
        rec = self._record_stage(cohort, rep, name, value, key, processed, completed)
        if not live_virtual and rec.completed:
            # Members cancelled this wait but the representative's query
            # completed and was applied: their traces genuinely diverge
            # here (exactly where live mirroring would split each one).
            self._lockstep_split_all(cohort, rep, launch, name)
            return
        self._lockstep_fan(cohort, rep, rec, launch, live_virtual)

    def _lockstep_fan(
        self, cohort: _Cohort, rep, rec: _StageRecord, launch: _LaunchRecord, live_virtual: bool
    ) -> None:
        template = cohort.template
        if live_virtual:
            # Members inherit the primary's outcome with zero units.
            template.queries_completed += 1
            if rec.failed:
                template.queries_failed += 1
            if not rec.accepted:
                template.speculative_wasted_queries += 1
        else:
            template.queries_cancelled += 1
            if rec.cancel_wasted:
                template.speculative_wasted_queries += 1
        template.speculative_wasted_queries += rec.drain_wasted_queries
        template.speculative_wasted_units += rec.drain_wasted_units
        cache = self.query_cache
        count = cohort.live_members
        for cancel_name in rec.cancels:
            moved = cohort.virtual.pop(cancel_name, None)
            if moved is None:
                continue  # members already cancelled this wait earlier
            cohort.cancelled[cancel_name] = moved
            cache.release_virtual(rep.inflight[cancel_name], count)
        name = rec.name
        member_completed = live_virtual
        if rec.done_after:
            obs = self._listening()
            for member in cohort.members:
                if obs is not None:
                    obs.on_query_done(member, name, units=0, completed=member_completed)
                self._finish_lockstep_member(cohort, member)
            if self.halt_policy == "cancel":
                for vname in list(cohort.virtual):
                    cohort.cancelled[vname] = cohort.virtual.pop(vname)
                    cache.release_virtual(rep.inflight[vname], count)
            return
        launches = rec.launches
        if launches:
            for new_launch in launches:
                new_handle = rep.inflight.get(new_launch.name)
                if new_handle is None or not cache.is_primary(new_handle):
                    # The cache answered this launch (memo hit, or a
                    # coalesce into some other issuer's primary): members
                    # need their own per-delivery events from here on.
                    self._demote_cohort(cohort, rep, rec, name, member_completed)
                    return
            template.queries_launched += len(launches)
            for new_launch in launches:
                if new_launch.speculative:
                    template.speculative_launched += 1
                cache.attach_virtual(rep.inflight[new_launch.name], count)
                cohort.virtual[new_launch.name] = new_launch
        obs = self._listening()
        if obs is not None:
            for member in cohort.members:
                obs.on_query_done(member, name, units=0, completed=member_completed)
                for new_launch in launches:
                    obs.on_launch(
                        member,
                        new_launch.name,
                        speculative=new_launch.speculative,
                        shared=None,
                    )

    def _lockstep_straggle(
        self,
        cohort: _Cohort,
        launch: _LaunchRecord,
        name: str,
        completed: bool,
        live_virtual: bool,
        failed: bool,
    ) -> None:
        member_completed = live_virtual and completed
        obs = self._listening()
        for member in cohort.members:
            if obs is not None:
                obs.on_query_done(member, name, units=0, completed=member_completed)
            metrics = member.metrics
            if member_completed:
                metrics.queries_completed += 1
                if failed:
                    metrics.queries_failed += 1
            else:
                metrics.queries_cancelled += 1
                if (
                    launch.speculative
                    and member._enablement[launch.index] == E_DISABLED
                ):
                    metrics.speculative_wasted_queries += 1

    def _materialize_lockstep(self, cohort: _Cohort, rep) -> None:
        """Turn every virtual attachment into real per-member followers."""
        cache = self.query_cache
        members = cohort.members

        def callback(member, vlaunch):
            return lambda processed, completed, c=cohort, m=member, l=vlaunch: (
                self._member_query_done(c, m, l, processed, completed)
            )

        for registry, cancelled in ((cohort.virtual, False), (cohort.cancelled, True)):
            for vname, vlaunch in registry.items():
                followers = cache.materialize_virtual(
                    rep.inflight[vname],
                    [
                        (vlaunch.task.cost, callback(member, vlaunch), cancelled)
                        for member in members
                    ],
                )
                for member, follower in zip(members, followers):
                    member.inflight[vname] = follower
        cohort.virtual.clear()
        cohort.cancelled.clear()

    def _demote_lockstep_at_join(self, cohort: _Cohort) -> None:
        """Exit lockstep between stages (triggered by a late coalescer).

        Unlike the stage demotion there is no record to fan: members
        have consumed every record in the log, so they hydrate against
        the full log and resume as live mirrors with their materialized
        followers in flight.
        """
        self._materialize_lockstep(cohort, cohort.rep)
        for member in cohort.members:
            self._hydrate_lockstep_member(cohort, member, cohort.log)
            member._cohort_stage = len(cohort.log)
        cohort.mode = "live"
        cohort.template = None
        cohort.members = []

    def _hydrate_lockstep_member(
        self, cohort: _Cohort, member: BatchedInstance, recs
    ) -> None:
        """Replay the state a live-mirrored member would hold here."""
        member.start()
        self._copy_counters(cohort.template, member.metrics)
        any_launched = False
        for rec in recs:
            for launch in rec.launches:
                member._launched[launch.index] = 1
                member._cand.discard(launch.index)
                if launch.speculative:
                    member.speculative_launch.add(launch.name)
                any_launched = True
        if any_launched:
            member._any_launched = True

    def _demote_cohort(
        self, cohort: _Cohort, rep, rec: _StageRecord, name: str, member_completed: bool
    ) -> None:
        """Exit lockstep into live mirroring (members submit real queries)."""
        self._materialize_lockstep(cohort, rep)
        obs = self._listening()
        for member in cohort.members:
            if obs is not None:
                obs.on_query_done(member, name, units=0, completed=member_completed)
            self._hydrate_lockstep_member(cohort, member, cohort.log[:-1])
            member._cohort_stage = len(cohort.log)
            self._mirror_stage(cohort, member, rec)
        cohort.mode = "live"
        cohort.template = None
        cohort.members = []

    def _lockstep_split_all(
        self, cohort: _Cohort, rep, launch: _LaunchRecord, name: str
    ) -> None:
        self._materialize_lockstep(cohort, rep)
        obs = self._listening()
        for member in list(cohort.members):
            if obs is not None:
                obs.on_query_done(member, name, units=0, completed=False)
            self._hydrate_lockstep_member(cohort, member, cohort.log[:-1])
            member._cohort_stage = len(cohort.log) - 1
            member.metrics.queries_cancelled += 1
            self._split_member(cohort, member, launch, 0, False, False)
        cohort.template = None
        cohort.members = []
        rep._cohort = None

    @staticmethod
    def _copy_counters(src: InstanceMetrics, dst: InstanceMetrics) -> None:
        dst.work_units = src.work_units
        dst.queries_launched = src.queries_launched
        dst.queries_completed = src.queries_completed
        dst.queries_cancelled = src.queries_cancelled
        dst.queries_failed = src.queries_failed
        dst.shared_hits = src.shared_hits
        dst.shared_joins = src.shared_joins
        dst.speculative_launched = src.speculative_launched
        dst.speculative_wasted_queries = src.speculative_wasted_queries
        dst.speculative_wasted_units = src.speculative_wasted_units
        dst.synthesis_executed = src.synthesis_executed

    def _finish_lockstep_member(self, cohort: _Cohort, member: BatchedInstance) -> None:
        """Materialize a lockstep member from the shared cohort state.

        All members of a cohort end bit-identical (same start valuation,
        same mirrored outcomes), so the copied arrays and the attribute
        counters :meth:`finalize_metrics` derives from them are computed
        for the first finishing member and shared by the rest — done
        instances never mutate their arrays again.
        """
        rep = cohort.rep
        member.done = True
        metrics = member.metrics
        self._copy_counters(cohort.template, metrics)
        metrics.finish_time = self.sim.now
        member._started = True
        final = cohort.final
        if final is None:
            member._readiness = bytearray(rep._readiness)
            member._enablement = bytearray(rep._enablement)
            member._raw = list(rep._raw)
            member._sv = list(rep._sv)
            member._pending = list(rep._pending)
            member._launched = bytearray(rep._launched)
            if rep._alive is not None:
                member._alive = bytearray(rep._alive)
                member._live_out = list(rep._live_out)
                member._unneeded = bytearray(rep._unneeded)
                member._external = bytearray(rep._external)
            index = self.plan.index
            for source_name, source_value in member._sources.items():
                i = index[source_name]
                member._raw[i] = source_value
                member._sv[i] = source_value
            member.finalize_metrics()
            cohort.final = (
                member._readiness,
                member._enablement,
                member._raw,
                member._sv,
                member._pending,
                member._launched,
                member._alive,
                member._live_out,
                member._unneeded,
                member._external,
                (
                    metrics.attrs_value,
                    metrics.attrs_disabled,
                    metrics.attrs_unstable,
                    metrics.unneeded_detected,
                    metrics.unneeded_cost_avoided,
                ),
            )
        else:
            (
                member._readiness,
                member._enablement,
                member._raw,
                member._sv,
                member._pending,
                member._launched,
                alive,
                live_out,
                unneeded,
                external,
                derived,
            ) = final
            if alive is not None:
                member._alive = alive
                member._live_out = live_out
                member._unneeded = unneeded
                member._external = external
            (
                metrics.attrs_value,
                metrics.attrs_disabled,
                metrics.attrs_unstable,
                metrics.unneeded_detected,
                metrics.unneeded_cost_avoided,
            ) = derived
        cohort.live_members -= 1
        if self.observer is not None:
            self.observer.on_instance_complete(member)
        callback = self._on_complete.pop(member.instance_id, None)
        if callback is not None:
            callback(member.metrics)

    # -- live mirroring ------------------------------------------------------

    def _join_cohort(self, cohort: _Cohort, member: BatchedInstance) -> None:
        member._cohort = cohort
        member._cohort_stage = 1
        cohort.live_members += 1
        self.cohort_hits += 1
        if self._obs_on:
            self._obs_cohort_joins.inc()
            self.obs.tracer.instant(
                "cohort.join",
                args={"member": member.instance_id, "mode": "live"},
            )
        # The cached start replay is cheap and leaves the member's arrays
        # in exactly the state a split must replay from.
        member.start()
        if self.observer is not None:
            self.observer.on_instance_start(member)
        self._mirror_stage(cohort, member, cohort.log[0])

    def _mirror_stage(self, cohort: _Cohort, member: BatchedInstance, rec: _StageRecord) -> None:
        if rec.done_after:
            self._finish_member(cohort, member)
            return
        for cancel_name in rec.cancels:
            handle = member.inflight.get(cancel_name)
            if handle is not None and not self._has_waiters(handle):
                handle.cancel()
        for launch in rec.launches:
            self._fan_launch(cohort, member, launch)

    def _fan_launch(self, cohort: _Cohort, member: BatchedInstance, launch: _LaunchRecord) -> None:
        member.metrics.queries_launched += 1
        if launch.speculative:
            member.speculative_launch.add(launch.name)
            member.metrics.speculative_launched += 1
        if self.observer is not None:
            self.observer.on_launch(
                member, launch.name, speculative=launch.speculative, shared=None
            )
        member._launched[launch.index] = 1
        member._any_launched = True
        member._cand.discard(launch.index)
        handle = self._submit_query(
            launch.task,
            launch.values,
            lambda processed, completed, c=cohort, m=member, l=launch: (
                self._member_query_done(c, m, l, processed, completed)
            ),
            share_key_hint=launch.key(self.query_cache),
        )
        member.inflight[launch.name] = handle

    def _member_query_done(
        self,
        cohort: _Cohort,
        member: BatchedInstance,
        launch: _LaunchRecord,
        processed: int,
        completed: bool,
    ) -> None:
        name = launch.name
        handle = member.inflight.pop(name, None)
        member.metrics.work_units += processed
        if self.observer is not None:
            self.observer.on_query_done(
                member, name, units=processed, completed=completed
            )
        failed = (
            completed and handle is not None and getattr(handle, "failed", False)
        )
        if completed:
            member.metrics.queries_completed += 1
            if failed:
                member.metrics.queries_failed += 1
        else:
            member.metrics.queries_cancelled += 1
        if member._cohort is None:
            # Split off earlier: an ordinary instance from here on (its
            # arrays are real), finish this event on the reference tail.
            self._tail_query_done(member, name, launch.value_for(failed), processed, completed)
            return
        if member.done:
            # Post-halt straggler: bookkeeping only, plus the cancelled-
            # speculative check against the materialized final arrays.
            if (
                not completed
                and name in member.speculative_launch
                and member._enablement[launch.index] == E_DISABLED
            ):
                member.metrics.speculative_wasted_queries += 1
                member.metrics.speculative_wasted_units += processed
            return
        stage = member._cohort_stage
        log = cohort.log
        rec = log[stage] if stage < len(log) else None
        if (
            rec is None
            or rec.name != name
            or rec.completed != completed
            or rec.failed != failed
        ):
            self._split_member(cohort, member, launch, processed, completed, failed)
            return
        member._cohort_stage = stage + 1
        if completed:
            if not rec.accepted:
                member.metrics.speculative_wasted_queries += 1
                member.metrics.speculative_wasted_units += processed
        elif rec.cancel_wasted:
            member.metrics.speculative_wasted_queries += 1
            member.metrics.speculative_wasted_units += processed
        if rec.drain_wasted_queries:
            member.metrics.speculative_wasted_queries += rec.drain_wasted_queries
        if rec.drain_wasted_units:
            member.metrics.speculative_wasted_units += rec.drain_wasted_units
        self._mirror_stage(cohort, member, rec)

    def _split_member(
        self,
        cohort: _Cohort,
        member: BatchedInstance,
        launch: _LaunchRecord,
        processed: int,
        completed: bool,
        failed: bool,
    ) -> None:
        """Copy-on-diverge: replay the matched log prefix, then detach.

        The member's arrays still hold its start state (mirroring never
        touched them); applying each matched stage's outcome re-derives
        the exact state an ordinary instance would hold here.  Launch
        flags were already set at fan time, and every mirrored metric
        was booked for real — the replay runs on a scratch metrics
        object so nothing double-counts.
        """
        self.cohort_splits += 1
        if self._obs_on:
            self._obs_cohort_splits.inc()
            self.obs.tracer.instant(
                "cohort.split",
                args={"member": member.instance_id, "attribute": launch.name},
            )
        member._cohort = None
        cohort.live_members -= 1
        real_metrics = member.metrics
        member.metrics = InstanceMetrics(
            instance_id=member.instance_id, start_time=real_metrics.start_time
        )
        try:
            for rec in cohort.log[1 : member._cohort_stage]:
                if rec.completed:
                    past = cohort.launch_by_name[rec.name]
                    member.apply_query_result(rec.name, past.value_for(rec.failed))
                    member.drain()
        finally:
            member.metrics = real_metrics
        self._tail_query_done(
            member, launch.name, launch.value_for(failed), processed, completed
        )

    def _tail_query_done(
        self, member: BatchedInstance, name: str, value, processed: int, completed: bool
    ) -> None:
        """The reference `_query_done` tail (post-bookkeeping half)."""
        if not completed:
            i = self.plan.index[name]
            if (
                name in member.speculative_launch
                and member._enablement[i] == E_DISABLED
            ):
                member.metrics.speculative_wasted_queries += 1
                member.metrics.speculative_wasted_units += processed
        if completed and not member.done:
            accepted = member.apply_query_result(name, value)
            if not accepted:
                member.metrics.speculative_wasted_queries += 1
                member.metrics.speculative_wasted_units += processed
        if not member.done:
            self._after_event(member)

    def _finish_member(self, cohort: _Cohort, member: BatchedInstance) -> None:
        """Mirror of :meth:`Engine._finish` fed from the representative.

        The representative is done by the time any member consumes a
        ``done_after`` record, so its arrays are final; copying them
        (with the member's own source objects overlaid) materializes the
        member's state for value/state maps, handles, and post-halt
        straggler checks.
        """
        rep = cohort.rep
        member.done = True
        member.metrics.finish_time = self.sim.now
        member._readiness = bytearray(rep._readiness)
        member._enablement = bytearray(rep._enablement)
        member._raw = list(rep._raw)
        member._sv = list(rep._sv)
        member._pending = list(rep._pending)
        if rep._alive is not None:
            member._alive = bytearray(rep._alive)
            member._live_out = list(rep._live_out)
            member._unneeded = bytearray(rep._unneeded)
            member._external = bytearray(rep._external)
        index = self.plan.index
        for source_name, source_value in member._sources.items():
            i = index[source_name]
            member._raw[i] = source_value
            member._sv[i] = source_value
        member.finalize_metrics()
        if self.halt_policy == "cancel":
            for handle in member.inflight.values():
                if not self._has_waiters(handle):
                    handle.cancel()
        cohort.live_members -= 1
        if self.observer is not None:
            self.observer.on_instance_complete(member)
        callback = self._on_complete.pop(member.instance_id, None)
        if callback is not None:
            callback(member.metrics)

    def __repr__(self) -> str:
        done = sum(1 for i in self.instances if i.done)
        shared = " shared" if self.share is not None else ""
        return (
            f"<BatchedEngine {self.schema.name!r} strategy={self.strategy.code}{shared} "
            f"instances={done}/{len(self.instances)} done>"
        )
