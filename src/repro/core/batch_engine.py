"""The batched multi-instance engine: compiled plans over flat array state.

:class:`BatchedEngine` executes the same algorithm as the reference
:class:`~repro.core.engine.Engine` — identical launches, identical
metrics, identical observer events — but stores per-instance attribute
state in flat per-flow arrays indexed by a
:class:`~repro.core.plan.CompiledPlan` instead of dict-keyed
:class:`~repro.core.instance.InstanceRuntime` graphs:

* readiness/enablement live in ``bytearray``s, pending-input counts in a
  plain int list, and the evaluation phase walks int-encoded consumer
  lists — no per-attribute cell objects, no string hashing in the hot
  propagation loop;
* enabling conditions run as plan-compiled closures over the stable-value
  list, and the backward-propagation dead-edge analysis operates on the
  plan's pre-cascaded edge arrays;
* the prequalifier pool is maintained *incrementally* (an attribute
  enters candidacy when it becomes READY or its condition enables) and
  the scheduling phase sorts precomputed scalar ranks, instead of
  re-scanning and re-keying the whole schema between DES events;
* instances created from identical source values replay a cached start
  state (one array copy) rather than re-deriving the initial
  propagation fixpoint per instance — enabled only for schemas whose
  start phase runs no user code (no synthesis tasks, no user-coded
  conditions), since those must execute per instance.

The engine-level event handling (query completion, sharing, halting) is
*inherited* from the reference engine, so the two can only diverge in
the instance layer — which the differential harness in
``tests/test_engine_differential.py`` pins down property-by-property.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator, Mapping, Sequence

from repro.core.engine import Engine
from repro.core.metrics import InstanceMetrics
from repro.core.conditions import UNRESOLVED
from repro.core.plan import (
    CompiledPlan,
    E_DISABLED,
    E_ENABLED,
    E_UNKNOWN,
    R_COMPUTED,
    R_PENDING,
    R_READY,
    T_TRUE,
    T_UNKNOWN,
)
from repro.core.scheduler import permitted_slots
from repro.core.state import AttributeState, Enablement, Readiness, derive_state
from repro.errors import ExecutionError, IllegalTransitionError
from repro.nulls import NULL

__all__ = ["BatchedEngine", "BatchedInstance"]


class _BatchCell:
    """Read-only cell adapter over one attribute of a batched instance.

    Presents the :class:`~repro.core.state.AttributeCell` surface
    (``state``/``stable``/``value``/...) that handles, observers, and the
    inherited engine paths read, backed by the flat arrays.
    """

    __slots__ = ("_instance", "_index", "name")

    def __init__(self, instance: "BatchedInstance", index: int):
        self._instance = instance
        self._index = index
        self.name = instance.plan.names[index]

    @property
    def readiness(self) -> Readiness:
        return Readiness(self._instance._readiness[self._index])

    @property
    def enablement(self) -> Enablement:
        return Enablement(self._instance._enablement[self._index])

    @property
    def state(self) -> AttributeState:
        return derive_state(self.readiness, self.enablement)

    @property
    def stable(self) -> bool:
        return self._instance._sv[self._index] is not UNRESOLVED

    @property
    def value(self) -> object:
        value = self._instance._sv[self._index]
        if value is UNRESOLVED:
            raise ValueError(f"attribute {self.name!r} is not stable (state {self.state})")
        return value

    @property
    def speculative_value(self) -> object:
        if self._instance._readiness[self._index] != R_COMPUTED:
            raise ValueError(f"attribute {self.name!r} has no computed value")
        return self._instance._raw[self._index]

    def __repr__(self) -> str:
        return f"<_BatchCell {self.name} {self.state.value}>"


class _CellMap:
    """Name-keyed mapping view materializing :class:`_BatchCell` adapters."""

    __slots__ = ("_instance",)

    def __init__(self, instance: "BatchedInstance"):
        self._instance = instance

    def __getitem__(self, name: str) -> _BatchCell:
        return _BatchCell(self._instance, self._instance.plan.index[name])

    def __contains__(self, name: str) -> bool:
        return name in self._instance.plan.index

    def __iter__(self) -> Iterator[str]:
        return iter(self._instance.plan.names)

    def __len__(self) -> int:
        return self._instance.plan.n

    def items(self):
        for name in self._instance.plan.names:
            yield name, self[name]


class BatchedInstance:
    """One flow instance as flat arrays over a :class:`CompiledPlan`.

    Mirrors the :class:`InstanceRuntime` contract attribute for
    attribute; every mutator replicates the corresponding reference code
    path (same traversal order, same metric increments, same error
    types), so the engines' observable traces cannot diverge.
    """

    __slots__ = (
        "plan",
        "schema",
        "strategy",
        "instance_id",
        "done",
        "metrics",
        "inflight",
        "speculative_launch",
        "_readiness",
        "_enablement",
        "_raw",
        "_sv",
        "_pending",
        "_launched",
        "_alive",
        "_live_out",
        "_unneeded",
        "_external",
        "_cand",
        "_queue",
        "_started",
        "_start_key",
        "_sources",
        "_any_launched",
    )

    def __init__(
        self,
        plan: CompiledPlan,
        instance_id: str,
        source_values: Mapping[str, object],
        start_time: float,
    ):
        self.plan = plan
        self.schema = plan.schema
        self.strategy = plan.strategy
        self.instance_id = instance_id
        self.done = False
        self.metrics = InstanceMetrics(instance_id=instance_id, start_time=start_time)

        missing = set(plan.schema.source_names) - set(source_values)
        if missing:
            raise ExecutionError(f"missing source values: {sorted(missing)}")

        n = plan.n
        self._readiness = bytearray(plan.readiness0)
        self._enablement = bytearray(plan.enablement0)
        self._raw: list[object] = [None] * n
        self._sv: list[object] = [UNRESOLVED] * n
        sources = {name: source_values[name] for name in plan.schema.source_names}
        self._sources = sources
        for name, value in sources.items():
            i = plan.index[name]
            self._raw[i] = value
            self._sv[i] = value
        self._start_key = plan.start_key(sources) if plan.start_cache_ok else None
        self._pending = list(plan.pending0)
        self._launched = bytearray(n)
        if plan.strategy.propagation:
            self._alive: bytearray | None = bytearray(plan.alive0)
            self._live_out: list[int] | None = list(plan.live_out0)
            self._unneeded: bytearray | None = bytearray(plan.unneeded0)
            self._external: bytearray | None = bytearray(plan.external0)
        else:
            self._alive = None
            self._live_out = None
            self._unneeded = None
            self._external = None

        #: in-flight query handles keyed by attribute name (engine-facing)
        self.inflight: dict[str, object] = {}
        #: attribute names launched while their condition was UNKNOWN
        self.speculative_launch: set[str] = set()
        #: incrementally maintained candidate-pool members (indices)
        self._cand: set[int] = set()
        self._queue: deque[int] = deque()
        self._started = False
        #: False until the first launch: while False (and nothing is in
        #: flight), the instance state is a pure function of its start
        #: key, so the first scheduling round can replay a plan-level memo.
        self._any_launched = False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Initial evaluation phase, replayed from the plan cache when hot."""
        if self._started:
            raise ExecutionError(f"instance {self.instance_id} already started")
        self._started = True
        plan = self.plan
        cached = (
            plan.lookup_start(self._start_key) if self._start_key is not None else None
        )
        if cached is not None:
            (
                readiness,
                enablement,
                raw,
                sv,
                pending,
                alive,
                live_out,
                unneeded,
                external,
                cand,
                synth_count,
            ) = cached
            self._readiness = bytearray(readiness)
            self._enablement = bytearray(enablement)
            self._raw = list(raw)
            self._sv = list(sv)
            # The snapshot's source slots hold the first submitter's
            # objects; re-install this instance's own (typed-==-equal)
            # values so caller objects are never aliased across
            # instances.  Cacheable schemas run no tasks during start,
            # so source slots are the only value-bearing entries.
            index = plan.index
            for name, value in self._sources.items():
                i = index[name]
                self._raw[i] = value
                self._sv[i] = value
            self._pending = list(pending)
            if alive is not None:
                self._alive = bytearray(alive)
                self._live_out = list(live_out)
                self._unneeded = bytearray(unneeded)
                self._external = bytearray(external)
            self._cand = set(cand)
            self.metrics.synthesis_executed = synth_count
            return
        for i in plan.non_source_idx:
            if self._pending[i] == 0:
                self._mark_ready(i)
        for i in plan.non_source_idx:
            self._try_resolve_condition(i)
        self.drain()
        if self._start_key is None:
            return
        plan.remember_start(self._start_key, (
            bytes(self._readiness),
            bytes(self._enablement),
            tuple(self._raw),
            tuple(self._sv),
            tuple(self._pending),
            bytes(self._alive) if self._alive is not None else None,
            tuple(self._live_out) if self._live_out is not None else None,
            bytes(self._unneeded) if self._unneeded is not None else None,
            bytes(self._external) if self._external is not None else None,
            frozenset(self._cand),
            self.metrics.synthesis_executed,
        ))

    def targets_stable(self) -> bool:
        sv = self._sv
        for i in self.plan.target_idx:
            if sv[i] is UNRESOLVED:
                return False
        return True

    # -- evaluation phase ----------------------------------------------------

    def drain(self) -> None:
        """Propagate stability/condition/synthesis consequences to a fixpoint."""
        queue = self._queue
        while True:
            while queue:
                self._on_stabilized(queue.popleft())
            if not self._run_inline_synthesis():
                break

    def _mark_ready(self, i: int) -> None:
        if self._readiness[i] != R_PENDING:
            raise IllegalTransitionError(
                f"{self.plan.names[i]}: mark_ready in readiness {Readiness(self._readiness[i])}"
            )
        self._readiness[i] = R_READY
        if self.plan.is_query[i] and not self._launched[i]:
            self._cand.add(i)

    def _on_stabilized(self, i: int) -> None:
        plan = self.plan
        if self._alive is not None:
            if self._external[i]:
                self._external[i] = 0
                self._decrement_live(i)
            self._kill_in_edges(i, data=True, cond=True)
        pending = self._pending
        readiness = self._readiness
        for consumer in plan.data_consumers[i]:
            pending[consumer] -= 1
            if pending[consumer] == 0 and readiness[consumer] == R_PENDING:
                self._mark_ready(consumer)
        for consumer in plan.enabling_consumers[i]:
            self._try_resolve_condition(consumer)

    def _try_resolve_condition(self, i: int) -> None:
        if self._enablement[i] != E_UNKNOWN:
            return
        plan = self.plan
        if self.strategy.propagation:
            result = plan.cond_eval[i](self._sv)
            if result == T_UNKNOWN:
                return
            truth = result == T_TRUE
        else:
            sv = self._sv
            for ref in plan.cond_refs[i]:
                if sv[ref] is UNRESOLVED:
                    return
            result = plan.cond_eval[i](sv)
            if result == T_UNKNOWN:
                # Mirrors Condition.eval_bool on an undetermined condition.
                raise ValueError(
                    f"condition of {plan.names[i]!r} is undetermined with stable inputs"
                )
            truth = result == T_TRUE
        self._resolve_condition(i, truth)

    def _resolve_condition(self, i: int, truth: bool) -> None:
        plan = self.plan
        was_computed = self._readiness[i] == R_COMPUTED
        if truth:
            self._enablement[i] = E_ENABLED
            stable = was_computed
            if stable:
                self._sv[i] = self._raw[i]
            elif (
                self._readiness[i] == R_READY
                and plan.is_query[i]
                and not self._launched[i]
            ):
                self._cand.add(i)
        else:
            self._enablement[i] = E_DISABLED
            stable = True
            self._sv[i] = NULL
            if was_computed and plan.names[i] in self.speculative_launch:
                # The speculative query already completed; its result is now
                # discarded — the full cost was wasted work.
                self.metrics.speculative_wasted_queries += 1
                self.metrics.speculative_wasted_units += plan.cost[i]
        if self._alive is not None:
            self._kill_in_edges(i, data=False, cond=True)
        if stable:
            self._queue.append(i)

    def _set_computed(self, i: int, value: object) -> None:
        if self._readiness[i] != R_READY:
            raise IllegalTransitionError(
                f"{self.plan.names[i]}: set_computed in readiness {Readiness(self._readiness[i])}"
            )
        self._readiness[i] = R_COMPUTED
        self._raw[i] = value
        enablement = self._enablement[i]
        if enablement == E_ENABLED:
            self._sv[i] = value
            self._queue.append(i)
        elif enablement == E_UNKNOWN and self._alive is not None:
            self._kill_in_edges(i, data=True, cond=False)

    def _run_inline_synthesis(self) -> bool:
        """Execute every currently eligible synthesis task; True if any ran."""
        ran = False
        plan = self.plan
        for i in plan.synth_idx:
            if not self._is_executable(i):
                continue
            values = self._input_values(i)
            self.metrics.synthesis_executed += 1
            self._set_computed(i, plan.tasks[i].compute(values))
            ran = True
        return ran

    def _is_executable(self, i: int) -> bool:
        if self._readiness[i] != R_READY:
            return False
        enablement = self._enablement[i]
        if enablement == E_DISABLED:
            return False
        if enablement == E_UNKNOWN and not self.strategy.speculative:
            return False
        if self._unneeded is not None and self._unneeded[i]:
            return False
        return True

    def _input_values(self, i: int) -> dict[str, object]:
        """Stable input values of attribute *i*'s task (READY invariant)."""
        sv = self._sv
        values: dict[str, object] = {}
        for name, j in self.plan.task_inputs[i]:
            value = sv[j]
            if value is UNRESOLVED:
                raise ExecutionError(f"{self.instance_id}: input {name!r} not stable")
            values[name] = value
        return values

    # -- backward propagation (dead-edge analysis over plan arrays) ---------
    #
    # Index-based twin of NeededTracker._kill_in_edges/_decrement/
    # _mark_unneeded (propagation.py) — change them together.  The
    # differential suite compares unneeded detection between the engines
    # on every scenario.

    def _kill_in_edges(self, child: int, data: bool, cond: bool) -> None:
        table = self.plan.edges
        alive = self._alive
        if data:
            for edge_id, parent in table.data_in[child]:
                if alive[edge_id]:
                    alive[edge_id] = 0
                    self._decrement_live(parent)
        if cond:
            for edge_id, parent in table.cond_in[child]:
                if alive[edge_id]:
                    alive[edge_id] = 0
                    self._decrement_live(parent)

    def _decrement_live(self, i: int) -> None:
        self._live_out[i] -= 1
        if self._live_out[i] == 0 and not self._unneeded[i]:
            self._unneeded[i] = 1
            self._kill_in_edges(i, data=True, cond=True)

    # -- query results --------------------------------------------------------

    def apply_query_result(self, name: str, value: object) -> bool:
        """Install a completed query's value.  Returns False if discarded
        (the attribute was disabled while the query was in flight)."""
        i = self.plan.index[name]
        if self._enablement[i] == E_DISABLED:
            if self._readiness[i] == R_READY:
                # retained as diagnostic only
                self._readiness[i] = R_COMPUTED
                self._raw[i] = value
            return False
        self._set_computed(i, value)
        return True

    # -- finalization -----------------------------------------------------------

    def finalize_metrics(self) -> None:
        """Fill end-of-instance attribute counters into the metrics record."""
        plan = self.plan
        value_count = disabled_count = unstable = 0
        readiness = self._readiness
        enablement = self._enablement
        for i in plan.non_source_idx:
            e = enablement[i]
            if e == E_DISABLED:
                disabled_count += 1
            elif e == E_ENABLED and readiness[i] == R_COMPUTED:
                value_count += 1
            else:
                unstable += 1
        self.metrics.attrs_value = value_count
        self.metrics.attrs_disabled = disabled_count
        self.metrics.attrs_unstable = unstable
        if self._unneeded is not None:
            sv = self._sv
            launched = self._launched
            detected = 0
            avoided = 0
            for i in range(plan.n):
                if self._unneeded[i] and sv[i] is UNRESOLVED:
                    detected += 1
                    if not launched[i]:
                        avoided += plan.cost[i]
            self.metrics.unneeded_detected = detected
            self.metrics.unneeded_cost_avoided = avoided

    # -- inspection -------------------------------------------------------------

    @property
    def cells(self) -> _CellMap:
        """Name-keyed cell view (adapter parity with InstanceRuntime)."""
        return _CellMap(self)

    def stable_values(self, names: Sequence[str]) -> dict[str, object]:
        values: dict[str, object] = {}
        for name in names:
            value = self._sv[self.plan.index[name]]
            if value is UNRESOLVED:
                raise ExecutionError(f"{self.instance_id}: input {name!r} not stable")
            values[name] = value
        return values

    def state_map(self) -> dict[str, AttributeState]:
        return {
            name: derive_state(
                Readiness(self._readiness[i]), Enablement(self._enablement[i])
            )
            for i, name in enumerate(self.plan.names)
        }

    def value_map(self) -> dict[str, object]:
        sv = self._sv
        return {
            name: sv[i]
            for i, name in enumerate(self.plan.names)
            if sv[i] is not UNRESOLVED
        }

    def __repr__(self) -> str:
        flag = " done" if self.done else ""
        return f"<BatchedInstance {self.instance_id}{flag}>"


class BatchedEngine(Engine):
    """Executes decision-flow instances via a compiled plan and flat state.

    A drop-in replacement for the reference :class:`Engine` (same
    constructor, same submit/run surface, same observer hooks, same
    error behavior) selected through
    ``ExecutionConfig(engine="batched")``.  The submit path, query
    completion, sharing, halting, and pooled-dispatch (``drain_pooled``)
    logic are inherited; only instance construction, the evaluation
    phase, and launch selection are replaced by their array-based
    equivalents.  Under instant pooling the cross-instance sweep lands
    one layer down: every fresh instance drawn from the same start
    valuation replays the plan-memoized first launch selection
    (:meth:`_select_for_launch`) instead of re-pruning and re-sorting
    its own candidate pool.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.plan = CompiledPlan(self.schema, self.strategy)

    def _make_instance(
        self,
        source_values: Mapping[str, object],
        instance_id: str,
        start_time: float,
    ) -> BatchedInstance:
        return BatchedInstance(self.plan, instance_id, source_values, start_time)

    def _tracks_unneeded(self, instance: BatchedInstance) -> bool:
        return instance._unneeded is not None

    def _is_unneeded(self, instance: BatchedInstance, name: str) -> bool:
        return bool(instance._unneeded[self.plan.index[name]])

    def _select(self, instance: BatchedInstance) -> Sequence[str]:
        names = self.plan.names
        return [names[i] for i in self._select_for_launch(instance)]

    def _select_for_launch(self, instance: BatchedInstance) -> Sequence[int]:
        """The scheduling phase over the incrementally maintained pool.

        A *fresh* instance (started, nothing launched, nothing in
        flight) is in a state fully determined by its start key, so its
        first scheduling round is memoized per plan: fleets of instances
        sharing a source valuation prune and sort the candidate pool
        once, then replay ``(selected, pruned)`` as plain tuples.
        """
        cand = instance._cand
        if not cand:
            return ()
        fresh_key = None
        if not instance._any_launched and not instance.inflight:
            fresh_key = instance._start_key
            if fresh_key is not None:
                cached = self.plan.lookup_select(fresh_key)
                if cached is not None:
                    selected, pruned = cached
                    for i in pruned:
                        cand.discard(i)
                    return selected
        readiness = instance._readiness
        enablement = instance._enablement
        launched = instance._launched
        unneeded = instance._unneeded
        speculative_ok = self.strategy.speculative
        pool: list[int] = []
        dead: list[int] = []
        for i in cand:
            if (
                launched[i]
                or readiness[i] != R_READY
                or enablement[i] == E_DISABLED
                or (unneeded is not None and unneeded[i])
            ):
                dead.append(i)
                continue
            if enablement[i] == E_UNKNOWN and not speculative_ok:
                continue  # stays a candidate: may enable later
            pool.append(i)
        for i in dead:
            cand.discard(i)
        if pool:
            inflight = sum(
                1
                for handle in instance.inflight.values()
                if getattr(handle, "counts_for_parallelism", True)
            )
            slots = permitted_slots(len(pool), inflight, self.strategy.permitted)
            if slots > 0:
                pool.sort(key=self.plan.rank.__getitem__)
                selected: Sequence[int] = pool[:slots]
            else:
                selected = ()
        else:
            selected = ()
        if fresh_key is not None:
            self.plan.remember_select(fresh_key, (tuple(selected), tuple(dead)))
        return selected

    def _stage_launch(self, instance: BatchedInstance, name: str):
        """Array-backed half of a launch; the inherited sharing/dispatch
        protocol in :meth:`Engine._launch` runs unchanged on top."""
        plan = self.plan
        i = plan.index[name]
        values = instance._input_values(i)
        speculative = instance._enablement[i] == E_UNKNOWN
        instance._launched[i] = 1
        instance._any_launched = True
        instance._cand.discard(i)
        return plan.tasks[i], values, speculative

    def __repr__(self) -> str:
        done = sum(1 for i in self.instances if i.done)
        shared = " shared" if self.share is not None else ""
        return (
            f"<BatchedEngine {self.schema.name!r} strategy={self.strategy.code}{shared} "
            f"instances={done}/{len(self.instances)} done>"
        )
