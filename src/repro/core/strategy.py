"""Execution strategies: the four optimization options of section 5.

A strategy is written as in the paper, e.g. ``PSE80``:

* ``P`` / ``N`` — Propagation Algorithm on (eager condition evaluation,
  forward/backward propagation, unneeded elimination) vs Naive.
* ``S`` / ``C`` — Speculative (READY attributes enter the candidate pool)
  vs Conservative (only READY+ENABLED).
* ``E`` / ``C`` — scheduling heuristic: topologically-Earliest first vs
  Cheapest first.
* ``%Permitted`` ∈ [0, 100] — the percentage of candidate attributes
  selected for execution; 0 means strictly sequential (at least one task
  is always selected), 100 launches every candidate.

``PC*100`` -style patterns (with ``*`` for "either heuristic") expand via
:func:`expand_pattern`.
"""

from __future__ import annotations

import re

from repro.errors import StrategyError

__all__ = ["Strategy", "expand_pattern", "ALL_STRATEGY_CODES"]

_STRATEGY_RE = re.compile(r"^([PN])([SC])([EC])(\d{1,3})%?$")

#: The 2×2×2 option codes (parallelism supplied separately).
ALL_STRATEGY_CODES = tuple(
    p + s + h for p in "PN" for s in "SC" for h in "EC"
)


class Strategy:
    """An immutable execution strategy (option combination)."""

    __slots__ = ("propagation", "speculative", "heuristic", "permitted", "cancel_unneeded")

    def __init__(
        self,
        propagation: bool = True,
        speculative: bool = False,
        heuristic: str = "earliest",
        permitted: int = 0,
        cancel_unneeded: bool = False,
    ):
        if heuristic not in ("earliest", "cheapest"):
            raise StrategyError(f"unknown heuristic {heuristic!r}")
        permitted = int(permitted)
        if not 0 <= permitted <= 100:
            raise StrategyError(f"%Permitted must be in [0, 100], got {permitted}")
        self.propagation = bool(propagation)
        self.speculative = bool(speculative)
        self.heuristic = heuristic
        self.permitted = permitted
        # Extension (not in the paper): cancel in-flight queries whose
        # attribute became unneeded.  Exercised by the ablation benchmark.
        self.cancel_unneeded = bool(cancel_unneeded)

    @classmethod
    def parse(cls, code: str, cancel_unneeded: bool = False) -> "Strategy":
        """Parse a paper-style strategy code such as ``"PSE80"`` or ``"NCC0%"``."""
        match = _STRATEGY_RE.match(code.strip())
        if not match:
            raise StrategyError(
                f"bad strategy code {code!r} (expected e.g. 'PSE80' or 'NCC0')"
            )
        p, s, h, permitted = match.groups()
        if int(permitted) > 100:
            raise StrategyError(f"%Permitted must be in [0, 100], got {permitted}")
        return cls(
            propagation=(p == "P"),
            speculative=(s == "S"),
            heuristic="earliest" if h == "E" else "cheapest",
            permitted=int(permitted),
            cancel_unneeded=cancel_unneeded,
        )

    @property
    def code(self) -> str:
        """The paper-style code, e.g. ``"PSE80"``."""
        return (
            ("P" if self.propagation else "N")
            + ("S" if self.speculative else "C")
            + ("E" if self.heuristic == "earliest" else "C")
            + str(self.permitted)
        )

    def replace(self, **kwargs: object) -> "Strategy":
        """A copy with the given option fields replaced.

        Accepts any constructor field (``propagation``, ``speculative``,
        ``heuristic``, ``permitted``, ``cancel_unneeded``); unknown names
        raise :class:`StrategyError`.
        """
        fields = {name: getattr(self, name) for name in self.__slots__}
        unknown = set(kwargs) - set(fields)
        if unknown:
            raise StrategyError(
                f"unknown strategy field(s) {sorted(unknown)}; "
                f"expected a subset of {sorted(fields)}"
            )
        fields.update(kwargs)
        return Strategy(**fields)

    def with_permitted(self, permitted: int) -> "Strategy":
        return self.replace(permitted=permitted)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Strategy) and (
            self.propagation,
            self.speculative,
            self.heuristic,
            self.permitted,
            self.cancel_unneeded,
        ) == (
            other.propagation,
            other.speculative,
            other.heuristic,
            other.permitted,
            other.cancel_unneeded,
        )

    def __hash__(self) -> int:
        return hash((self.propagation, self.speculative, self.heuristic, self.permitted, self.cancel_unneeded))

    def __repr__(self) -> str:
        suffix = "+cancel" if self.cancel_unneeded else ""
        return f"<Strategy {self.code}{suffix}>"


def expand_pattern(pattern: str, permitted: int | None = None) -> list[Strategy]:
    """Expand a pattern with ``*`` wildcards into concrete strategies.

    ``expand_pattern("PC*100")`` → ``[PCE100, PCC100]``;
    ``expand_pattern("P**", permitted=80)`` → the four P strategies at 80%.
    Patterns may or may not carry a trailing parallelism figure; if absent,
    *permitted* must be given.  The result never contains duplicates: a
    wildcard-free pattern expands to exactly one strategy.
    """
    match = re.match(r"^([PN*])([SC*])([EC*])(\d{1,3})?%?$", pattern.strip())
    if not match:
        raise StrategyError(f"bad strategy pattern {pattern!r}")
    p_options = "PN" if match.group(1) == "*" else match.group(1)
    s_options = "SC" if match.group(2) == "*" else match.group(2)
    h_options = "EC" if match.group(3) == "*" else match.group(3)
    if match.group(4) is not None:
        permitted = int(match.group(4))
    if permitted is None:
        raise StrategyError(f"pattern {pattern!r} has no %Permitted and none was given")
    expanded = [
        Strategy.parse(f"{p}{s}{h}{permitted}")
        for p in p_options
        for s in s_options
        for h in h_options
    ]
    return list(dict.fromkeys(expanded))
