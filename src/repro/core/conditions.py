"""Enabling-condition AST with Kleene (partial) evaluation.

Enabling conditions guard every non-source attribute of a decision flow
(section 2 of the paper).  The optimizer's *eager evaluation* (section 4)
evaluates conditions over partially known snapshots, so conditions evaluate
into the three-valued domain of :mod:`repro.core.tri`:

* a conjunction is FALSE as soon as one conjunct is FALSE;
* a disjunction is TRUE as soon as one disjunct is TRUE;
* otherwise, unresolved inputs leave the condition UNKNOWN.

A *resolver* is a callable mapping an attribute name to its stable value —
which may be the null value ⊥ for DISABLED attributes — or to the sentinel
:data:`UNRESOLVED` when the attribute is not yet stable.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping

from repro.core.tri import Tri, from_bool, tri_not
from repro.nulls import NULL

__all__ = [
    "UNRESOLVED",
    "Resolver",
    "Condition",
    "Literal",
    "TRUE",
    "FALSE",
    "And",
    "Or",
    "Not",
    "resolver_from_mapping",
]


class _Unresolved:
    """Sentinel returned by resolvers for attributes that are not stable."""

    _instance: "_Unresolved | None" = None

    def __new__(cls) -> "_Unresolved":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "UNRESOLVED"


#: Resolver result for attributes whose value is not yet known.
UNRESOLVED = _Unresolved()

#: Type of resolver callables.
Resolver = Callable[[str], object]


def resolver_from_mapping(values: Mapping[str, object]) -> Resolver:
    """Build a resolver from a mapping; missing keys resolve to UNRESOLVED."""

    def resolve(name: str) -> object:
        return values.get(name, UNRESOLVED)

    return resolve


class Condition:
    """Abstract base class of enabling-condition nodes."""

    __slots__ = ()

    def refs(self) -> frozenset[str]:
        """Names of all attributes this condition reads."""
        raise NotImplementedError

    def eval_tri(self, resolve: Resolver) -> Tri:
        """Evaluate under partial information (Kleene semantics)."""
        raise NotImplementedError

    def eval_bool(self, resolve: Resolver) -> bool:
        """Evaluate under complete information; raises if still UNKNOWN."""
        result = self.eval_tri(resolve)
        if not result.known:
            missing = sorted(
                name for name in self.refs() if resolve(name) is UNRESOLVED
            )
            raise ValueError(
                f"condition {self} is undetermined; unresolved inputs: {missing}"
            )
        return result is Tri.TRUE

    # Conditions are immutable value objects; subclasses define _key().
    def _key(self) -> tuple:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._key() == other._key()  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def __and__(self, other: "Condition") -> "Condition":
        return And(self, other)

    def __or__(self, other: "Condition") -> "Condition":
        return Or(self, other)

    def __invert__(self) -> "Condition":
        return Not(self)


class Literal(Condition):
    """A constant condition (used e.g. for always-enabled attributes)."""

    __slots__ = ("value",)

    def __init__(self, value: bool):
        self.value = bool(value)

    def refs(self) -> frozenset[str]:
        return frozenset()

    def eval_tri(self, resolve: Resolver) -> Tri:
        return from_bool(self.value)

    def _key(self) -> tuple:
        return (self.value,)

    def __repr__(self) -> str:
        return "TRUE" if self.value else "FALSE"


#: The always-true condition.
TRUE = Literal(True)
#: The always-false condition.
FALSE = Literal(False)


def _flatten(kind: type, children: Iterable[Condition]) -> tuple[Condition, ...]:
    """Flatten nested connectives of the same kind ((a∧b)∧c → a∧b∧c)."""
    out: list[Condition] = []
    for child in children:
        if not isinstance(child, Condition):
            raise TypeError(f"expected Condition, got {child!r}")
        if type(child) is kind:
            out.extend(child.children)  # type: ignore[attr-defined]
        else:
            out.append(child)
    return tuple(out)


class And(Condition):
    """Kleene conjunction of sub-conditions (TRUE on zero children)."""

    __slots__ = ("children",)

    def __init__(self, *children: Condition):
        self.children = _flatten(And, children)

    def refs(self) -> frozenset[str]:
        return frozenset().union(*(c.refs() for c in self.children)) if self.children else frozenset()

    def eval_tri(self, resolve: Resolver) -> Tri:
        unknown = False
        for child in self.children:
            result = child.eval_tri(resolve)
            if result is Tri.FALSE:
                return Tri.FALSE
            if result is Tri.UNKNOWN:
                unknown = True
        return Tri.UNKNOWN if unknown else Tri.TRUE

    def _key(self) -> tuple:
        return self.children

    def __repr__(self) -> str:
        return "(" + " and ".join(map(repr, self.children)) + ")" if self.children else "TRUE"


class Or(Condition):
    """Kleene disjunction of sub-conditions (FALSE on zero children)."""

    __slots__ = ("children",)

    def __init__(self, *children: Condition):
        self.children = _flatten(Or, children)

    def refs(self) -> frozenset[str]:
        return frozenset().union(*(c.refs() for c in self.children)) if self.children else frozenset()

    def eval_tri(self, resolve: Resolver) -> Tri:
        unknown = False
        for child in self.children:
            result = child.eval_tri(resolve)
            if result is Tri.TRUE:
                return Tri.TRUE
            if result is Tri.UNKNOWN:
                unknown = True
        return Tri.UNKNOWN if unknown else Tri.FALSE

    def _key(self) -> tuple:
        return self.children

    def __repr__(self) -> str:
        return "(" + " or ".join(map(repr, self.children)) + ")" if self.children else "FALSE"


class Not(Condition):
    """Kleene negation."""

    __slots__ = ("child",)

    def __init__(self, child: Condition):
        if not isinstance(child, Condition):
            raise TypeError(f"expected Condition, got {child!r}")
        self.child = child

    def refs(self) -> frozenset[str]:
        return self.child.refs()

    def eval_tri(self, resolve: Resolver) -> Tri:
        return tri_not(self.child.eval_tri(resolve))

    def _key(self) -> tuple:
        return (self.child,)

    def __repr__(self) -> str:
        return f"(not {self.child!r})"


def conjoin(a: Condition, b: Condition) -> Condition:
    """AND two conditions, simplifying literal TRUE/FALSE operands.

    Used by module flattening (section 2): the enabling condition of a
    module is "anded" into the condition of each task inside it.
    """
    if isinstance(a, Literal):
        return b if a.value else FALSE
    if isinstance(b, Literal):
        return a if b.value else FALSE
    return And(a, b)


__all__.append("conjoin")
