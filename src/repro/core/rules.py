"""Business-rule synthesis tasks (the Vortex "generalized business rules").

The decision-flow model of [HLS+99a] lets a synthesis attribute be defined
by a set of rules, each of the form *if condition then contribute value*,
whose fired contributions are merged by a *combining policy*.  The paper's
Figure-1 "decision" module (estimate expendable income, build the promo
hit list, decide whether to give promos) is naturally expressed this way.

Rule conditions are ordinary :class:`~repro.core.conditions.Condition`
objects; at synthesis time all inputs are stable, so they evaluate
two-valued.  Contributions may be constants or functions of the input
values.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from repro.core.conditions import Condition, TRUE, resolver_from_mapping
from repro.core.tasks import SynthesisTask
from repro.nulls import NULL

__all__ = ["Rule", "CombiningPolicy", "RuleSetTask", "rule_set"]


class Rule:
    """One business rule: ``if condition then contribute value``."""

    __slots__ = ("name", "condition", "contribution")

    def __init__(
        self,
        name: str,
        condition: Condition = TRUE,
        contribution: object | Callable[[Mapping[str, object]], object] = None,
    ):
        self.name = name
        self.condition = condition
        self.contribution = contribution

    def fires(self, values: Mapping[str, object]) -> bool:
        """Whether the rule's condition holds over the given stable values."""
        return self.condition.eval_bool(resolver_from_mapping(values))

    def contribute(self, values: Mapping[str, object]) -> object:
        if callable(self.contribution):
            return self.contribution(values)
        return self.contribution

    def __repr__(self) -> str:
        return f"<Rule {self.name}: if {self.condition!r}>"


class CombiningPolicy:
    """Named policies that merge the contributions of fired rules."""

    _REGISTRY: dict[str, Callable[[list[object]], object]] = {}

    @classmethod
    def register(cls, name: str, fn: Callable[[list[object]], object]) -> None:
        cls._REGISTRY[name] = fn

    @classmethod
    def get(cls, name: str) -> Callable[[list[object]], object]:
        try:
            return cls._REGISTRY[name]
        except KeyError:
            known = ", ".join(sorted(cls._REGISTRY))
            raise KeyError(f"unknown combining policy {name!r} (known: {known})") from None

    @classmethod
    def names(cls) -> list[str]:
        return sorted(cls._REGISTRY)


CombiningPolicy.register("collect", lambda contributions: list(contributions))
CombiningPolicy.register("first", lambda contributions: contributions[0])
CombiningPolicy.register("last", lambda contributions: contributions[-1])
CombiningPolicy.register("sum", lambda contributions: sum(contributions))
CombiningPolicy.register("max", lambda contributions: max(contributions))
CombiningPolicy.register("min", lambda contributions: min(contributions))
CombiningPolicy.register("any", lambda contributions: any(contributions))
CombiningPolicy.register("all", lambda contributions: all(contributions))


class RuleSetTask(SynthesisTask):
    """A synthesis task defined by a rule set and a combining policy.

    When no rule fires, the task returns ``default`` (⊥ unless overridden);
    downstream conditions can detect this with ``IsNull``-style tests on
    the *value* via comparisons, or the flow can route around it.
    """

    __slots__ = ("rules", "policy_name", "default")

    def __init__(
        self,
        name: str,
        inputs: Sequence[str],
        rules: Sequence[Rule],
        policy: str = "collect",
        default: object = NULL,
    ):
        self.rules = tuple(rules)
        self.policy_name = policy
        self.default = default
        combine = CombiningPolicy.get(policy)
        missing = {
            ref
            for rule in self.rules
            for ref in rule.condition.refs()
            if ref not in set(inputs)
        }
        if missing:
            raise ValueError(
                f"rule set {name!r} references attributes not in inputs: {sorted(missing)}"
            )

        def fn(values: Mapping[str, object]) -> object:
            contributions = [
                rule.contribute(values) for rule in self.rules if rule.fires(values)
            ]
            if not contributions:
                return self.default
            return combine(contributions)

        super().__init__(name, inputs, fn)

    def __repr__(self) -> str:
        return f"<RuleSetTask {self.name} rules={len(self.rules)} policy={self.policy_name}>"


def rule_set(
    name: str,
    inputs: Sequence[str],
    rules: Sequence[Rule],
    policy: str = "collect",
    default: object = NULL,
) -> RuleSetTask:
    """Convenience constructor for :class:`RuleSetTask`."""
    return RuleSetTask(name, inputs, rules, policy, default)
