"""The task scheduler: heuristic ordering and the %Permitted cut (section 4).

Given the candidate pool, the scheduler selects which queries to send to
the database:

* **topologically-earliest first** (option E) — prefer attributes closest
  to the sources (smallest longest-path depth in the dependency graph).
  Early results feed forward propagation, which uncovers eligible and
  DISABLED attributes sooner and seeds backward propagation.
* **cheapest first** (option C) — prefer the shortest estimated execution
  duration (the query's cost in units); results return sooner, and a
  misfired speculative query wastes less.

The **%Permitted** parallelism option bounds how much of the pool runs at
once: the per-instance in-flight target is ``max(1, ceil(p/100 · (|pool| +
inflight)))``, so p=0 is strictly sequential (the paper's "no parallelism",
with the guarantee that at least one task is always selected) and p=100
launches the entire pool.
"""

from __future__ import annotations

import math

from repro.core.instance import InstanceRuntime
from repro.core.prequalifier import candidate_pool

__all__ = ["rank_key", "permitted_slots", "select_for_launch"]


def permitted_slots(pool_size: int, inflight: int, permitted: int) -> int:
    """Launch slots the %Permitted cut grants right now (may be <= 0).

    The per-instance in-flight target is ``max(1, ceil(p/100 · (pool +
    inflight)))``; the slots are whatever of that target is not already
    in flight.  Shared by the reference scheduler and the batched
    engine's index-based selection, so the cut can never drift between
    engines.
    """
    total = pool_size + inflight
    target = max(1, math.ceil(permitted / 100.0 * total))
    return target - inflight


def rank_key(instance: InstanceRuntime, name: str):
    """Sort key implementing the strategy's scheduling heuristic.

    Ties break on topological index, then name, so runs are deterministic.
    """
    graph = instance.schema.graph
    if instance.strategy.heuristic == "earliest":
        primary = graph.depth[name]
    else:
        primary = instance.schema[name].cost
    return (primary, graph.topo_index[name], name)


def select_for_launch(instance: InstanceRuntime) -> list[str]:
    """The scheduling phase: choose pool members to dispatch right now.

    Only real database dispatches count as in flight: joined (shared)
    queries are zero-cost waits on another instance's query, so they are
    excluded from the %Permitted cut instead of throttling launches.
    """
    pool = candidate_pool(instance)
    if not pool:
        return []
    inflight = sum(
        1
        for handle in instance.inflight.values()
        if getattr(handle, "counts_for_parallelism", True)
    )
    slots = permitted_slots(len(pool), inflight, instance.strategy.permitted)
    if slots <= 0:
        return []
    pool.sort(key=lambda name: rank_key(instance, name))
    return pool[:slots]
