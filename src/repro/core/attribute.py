"""Attribute specifications.

A decision flow is *attribute-centric* (section 2): the schema is a family
of attributes, each non-source attribute produced by exactly one task and
guarded by an enabling condition.  Source attributes carry the instance's
input values; target attributes embody its output.
"""

from __future__ import annotations

from repro.core.conditions import Condition, TRUE
from repro.core.tasks import Task

__all__ = ["Attribute", "source_attribute"]


class Attribute:
    """Specification of one attribute in a decision-flow schema.

    * ``task is None`` marks a **source** attribute (value supplied at
      instance start); source attributes must have the literal TRUE
      condition.
    * ``is_target`` marks a **target** attribute: execution of an instance
      completes exactly when every target attribute is stable.
    """

    __slots__ = ("name", "task", "condition", "is_target", "doc")

    def __init__(
        self,
        name: str,
        task: Task | None = None,
        condition: Condition = TRUE,
        is_target: bool = False,
        doc: str = "",
    ):
        if not name or not isinstance(name, str):
            raise ValueError(f"attribute name must be a non-empty string, got {name!r}")
        if not isinstance(condition, Condition):
            raise TypeError(f"attribute {name!r}: condition must be a Condition")
        self.name = name
        self.task = task
        self.condition = condition
        self.is_target = bool(is_target)
        self.doc = doc

    @property
    def is_source(self) -> bool:
        return self.task is None

    @property
    def data_inputs(self) -> tuple[str, ...]:
        """Attributes this attribute's task reads (empty for sources)."""
        return self.task.inputs if self.task is not None else ()

    @property
    def condition_inputs(self) -> frozenset[str]:
        """Attributes read by the enabling condition."""
        return self.condition.refs()

    @property
    def cost(self) -> int:
        """Units of processing of the producing query (0 for non-queries)."""
        return self.task.cost if self.task is not None and self.task.is_query else 0

    def __repr__(self) -> str:
        kind = "source" if self.is_source else ("target" if self.is_target else "internal")
        return f"<Attribute {self.name} ({kind})>"


def source_attribute(name: str, doc: str = "") -> Attribute:
    """Convenience constructor for a source attribute."""
    return Attribute(name, task=None, condition=TRUE, is_target=False, doc=doc)
