"""Dependency graph of a decision-flow schema.

The dependency graph (section 2) has a node per attribute and two kinds of
edges: **data-flow** edges (A → B if A is an input of B's task) and
**enabling-flow** edges (A → B if A occurs in B's enabling condition).
A schema is *well-formed* iff this graph is acyclic; the graph also supplies
the topological machinery used by the scheduler ("topologically-earliest
first" ranks attributes by longest distance from the sources).
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Mapping

from repro.core.attribute import Attribute
from repro.errors import CycleError, UnknownAttributeError

__all__ = ["EdgeKind", "DependencyGraph"]


class EdgeKind:
    DATA = "data"
    ENABLING = "enabling"


class DependencyGraph:
    """Immutable dependency graph over a set of attributes.

    Exposes, per attribute: data inputs/consumers, condition (enabling)
    inputs/consumers, a deterministic topological order, and the *depth*
    (longest path from any attribute with no predecessors) used by the
    topologically-earliest-first scheduling heuristic.
    """

    def __init__(self, attributes: Mapping[str, Attribute]):
        self._names = list(attributes)
        name_set = set(self._names)
        self.data_inputs: dict[str, tuple[str, ...]] = {}
        self.cond_inputs: dict[str, frozenset[str]] = {}
        self.data_consumers: dict[str, list[str]] = {name: [] for name in self._names}
        self.enabling_consumers: dict[str, list[str]] = {name: [] for name in self._names}

        for name, spec in attributes.items():
            unknown = (set(spec.data_inputs) | set(spec.condition_inputs)) - name_set
            if unknown:
                raise UnknownAttributeError(
                    f"attribute {name!r} references undefined attributes: {sorted(unknown)}"
                )
            self.data_inputs[name] = tuple(dict.fromkeys(spec.data_inputs))
            self.cond_inputs[name] = frozenset(spec.condition_inputs)
            for parent in self.data_inputs[name]:
                self.data_consumers[parent].append(name)
            for parent in sorted(self.cond_inputs[name]):
                self.enabling_consumers[parent].append(name)

        self.parents: dict[str, frozenset[str]] = {
            name: frozenset(self.data_inputs[name]) | self.cond_inputs[name]
            for name in self._names
        }
        self.children: dict[str, frozenset[str]] = {
            name: frozenset(self.data_consumers[name]) | frozenset(self.enabling_consumers[name])
            for name in self._names
        }

        self.topo_order: tuple[str, ...] = self._topological_sort()
        self.topo_index: dict[str, int] = {
            name: index for index, name in enumerate(self.topo_order)
        }
        self.depth: dict[str, int] = self._longest_path_depths()

    def _topological_sort(self) -> tuple[str, ...]:
        """Kahn's algorithm; ties broken by schema declaration order."""
        indegree = {name: len(self.parents[name]) for name in self._names}
        position = {name: index for index, name in enumerate(self._names)}
        ready = deque(sorted((n for n in self._names if indegree[n] == 0), key=position.get))
        order: list[str] = []
        while ready:
            name = ready.popleft()
            order.append(name)
            newly_ready = []
            for child in self.children[name]:
                indegree[child] -= 1
                if indegree[child] == 0:
                    newly_ready.append(child)
            for child in sorted(newly_ready, key=position.get):
                ready.append(child)
        if len(order) != len(self._names):
            cycle = self._find_cycle({n for n in self._names if indegree[n] > 0})
            raise CycleError(
                "schema dependency graph is cyclic: " + " -> ".join(cycle)
            )
        return tuple(order)

    def _find_cycle(self, suspects: set[str]) -> list[str]:
        """Return one concrete cycle among the nodes left by Kahn's algorithm."""
        start = sorted(suspects)[0]
        path: list[str] = []
        seen: dict[str, int] = {}
        node = start
        while node not in seen:
            seen[node] = len(path)
            path.append(node)
            node = sorted(p for p in self.parents[node] if p in suspects)[0]
        return path[seen[node]:] + [node]

    def _longest_path_depths(self) -> dict[str, int]:
        depth: dict[str, int] = {}
        for name in self.topo_order:
            parents = self.parents[name]
            depth[name] = 1 + max((depth[p] for p in parents), default=-1)
        return depth

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._names)

    def edges(self) -> Iterable[tuple[str, str, str]]:
        """Yield (parent, child, kind) for every dependency edge."""
        for child in self._names:
            for parent in self.data_inputs[child]:
                yield parent, child, EdgeKind.DATA
            for parent in sorted(self.cond_inputs[child]):
                yield parent, child, EdgeKind.ENABLING

    def edge_count(self) -> int:
        return sum(1 for _ in self.edges())

    def diameter(self) -> int:
        """Longest path length in the graph (in edges)."""
        return max(self.depth.values(), default=0)

    def ancestors(self, name: str) -> frozenset[str]:
        """All attributes reachable backward from *name* (excluding it)."""
        seen: set[str] = set()
        frontier = list(self.parents[name])
        while frontier:
            node = frontier.pop()
            if node not in seen:
                seen.add(node)
                frontier.extend(self.parents[node])
        return frozenset(seen)

    def descendants(self, name: str) -> frozenset[str]:
        """All attributes reachable forward from *name* (excluding it)."""
        seen: set[str] = set()
        frontier = list(self.children[name])
        while frontier:
            node = frontier.pop()
            if node not in seen:
                seen.add(node)
                frontier.extend(self.children[node])
        return frozenset(seen)
