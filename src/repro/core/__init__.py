"""Core decision-flow model and execution engine."""

from repro.core.attribute import Attribute, source_attribute
from repro.core.conditions import (
    FALSE,
    TRUE,
    And,
    Condition,
    Literal,
    Not,
    Or,
    UNRESOLVED,
    conjoin,
    resolver_from_mapping,
)
from repro.core.batch_engine import BatchedEngine, BatchedInstance
from repro.core.engine import Engine
from repro.core.graph import DependencyGraph, EdgeKind
from repro.core.instance import InstanceRuntime
from repro.core.metrics import InstanceMetrics, MetricsSummary, summarize
from repro.core.plan import CompiledPlan, compile_condition
from repro.core.module import Module, flatten
from repro.core.predicates import (
    AttrRef,
    Comparison,
    IsException,
    IsNull,
    Op,
    UserPredicate,
    attr,
)
from repro.core.prequalifier import candidate_pool
from repro.core.propagation import EdgeTable, NeededTracker, edge_table
from repro.core.sharing import ResultShare, freeze, share_key
from repro.core.rules import CombiningPolicy, Rule, RuleSetTask, rule_set
from repro.core.scheduler import rank_key, select_for_launch
from repro.core.schema import DecisionFlowSchema
from repro.core.serialize import (
    SerializationError,
    config_from_dict,
    config_to_dict,
    dumps_schema,
    dumps_strategy,
    loads_schema,
    loads_strategy,
    schema_from_dict,
    schema_to_dict,
    strategy_from_dict,
    strategy_to_dict,
)
from repro.core.snapshot import CompleteSnapshot, check_against_snapshot, evaluate_schema
from repro.core.state import (
    AttributeCell,
    AttributeState,
    Enablement,
    Readiness,
    derive_state,
    legal_successors,
)
from repro.core.strategy import ALL_STRATEGY_CODES, Strategy, expand_pattern
from repro.core.tasks import QueryTask, SynthesisTask, Task, constant, query, synthesize
from repro.core.tri import Tri, from_bool, tri_all, tri_and, tri_any, tri_not, tri_or

__all__ = [
    "Attribute",
    "source_attribute",
    "Condition",
    "Literal",
    "TRUE",
    "FALSE",
    "And",
    "Or",
    "Not",
    "UNRESOLVED",
    "conjoin",
    "resolver_from_mapping",
    "Comparison",
    "IsNull",
    "IsException",
    "UserPredicate",
    "ResultShare",
    "freeze",
    "share_key",
    "AttrRef",
    "attr",
    "Op",
    "Tri",
    "from_bool",
    "tri_and",
    "tri_or",
    "tri_not",
    "tri_all",
    "tri_any",
    "Task",
    "QueryTask",
    "SynthesisTask",
    "query",
    "synthesize",
    "constant",
    "Rule",
    "RuleSetTask",
    "rule_set",
    "CombiningPolicy",
    "DependencyGraph",
    "EdgeKind",
    "DecisionFlowSchema",
    "Module",
    "flatten",
    "SerializationError",
    "dumps_schema",
    "loads_schema",
    "schema_to_dict",
    "schema_from_dict",
    "dumps_strategy",
    "loads_strategy",
    "strategy_to_dict",
    "strategy_from_dict",
    "config_to_dict",
    "config_from_dict",
    "CompleteSnapshot",
    "evaluate_schema",
    "check_against_snapshot",
    "AttributeState",
    "AttributeCell",
    "Readiness",
    "Enablement",
    "derive_state",
    "legal_successors",
    "Strategy",
    "expand_pattern",
    "ALL_STRATEGY_CODES",
    "Engine",
    "BatchedEngine",
    "BatchedInstance",
    "CompiledPlan",
    "compile_condition",
    "EdgeTable",
    "edge_table",
    "InstanceRuntime",
    "InstanceMetrics",
    "MetricsSummary",
    "summarize",
    "NeededTracker",
    "candidate_pool",
    "select_for_launch",
    "rank_key",
]
