"""Cross-instance query-result sharing ("overlapping data", paper §6).

The paper's conclusions raise "how to optimize when several decision flows
will be executed based on overlapping data, whether queries from one or
several decision flows should be clustered to reduce overall database
access time".  This module implements the natural first step: a shared
result table keyed by (task name, input values).  Under the paper's
fixed-data assumption a query's result is a pure function of its inputs
for the duration of an instance, so

* a query already **answered** for the same inputs is served from the
  table at zero database cost;
* a query currently **in flight** for the same inputs is joined — the
  second instance waits for the first's completion instead of issuing a
  duplicate;
* **failed** queries are not cached (the next instance retries).

Keys freeze input values structurally (dicts, lists, sets become hashable
forms), so tasks taking composite inputs share correctly.
"""

from __future__ import annotations

from typing import Callable, Mapping

__all__ = ["UNSET", "freeze", "share_key", "ResultShare"]


class _Unset:
    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self):
        return "UNSET"


#: Sentinel distinct from any cached value (including None and ⊥).
UNSET = _Unset()


def freeze(value: object) -> object:
    """A hashable, structural key for *value* (best effort).

    Dicts, lists, tuples and sets are converted recursively; unhashable
    leaves fall back to their repr, which is deterministic for the value
    types tasks sensibly exchange.
    """
    if isinstance(value, dict):
        return ("dict", tuple(sorted((k, freeze(v)) for k, v in value.items())))
    if isinstance(value, (list, tuple)):
        return ("seq", tuple(freeze(v) for v in value))
    if isinstance(value, (set, frozenset)):
        return ("set", frozenset(freeze(v) for v in value))
    try:
        hash(value)
    except TypeError:
        return ("repr", repr(value))
    return value


def share_key(task_name: str, values: Mapping[str, object]) -> tuple:
    """Cache key of one query invocation."""
    return (task_name, freeze(dict(values)))


class ResultShare:
    """The shared result table plus the pending-waiter registry."""

    def __init__(self):
        self._cache: dict[tuple, object] = {}
        self._waiters: dict[tuple, list[Callable[[object], None]]] = {}
        self.hits = 0
        self.joins = 0
        self.publishes = 0

    def get(self, key: tuple) -> object:
        """Cached value for *key*, or UNSET."""
        if key in self._cache:
            self.hits += 1
            return self._cache[key]
        return UNSET

    def is_pending(self, key: tuple) -> bool:
        return key in self._waiters

    def mark_pending(self, key: tuple) -> None:
        if key in self._waiters:
            raise ValueError(f"key already pending: {key!r}")
        self._waiters[key] = []

    def join(self, key: tuple, deliver: Callable[[object], None]) -> None:
        """Register a callback for when the pending query resolves."""
        self._waiters[key].append(deliver)
        self.joins += 1

    def waiter_count(self, key: tuple) -> int:
        return len(self._waiters.get(key, ()))

    def publish(self, key: tuple, value: object, cache: bool = True) -> int:
        """Resolve a pending key: optionally cache, then notify waiters.

        Returns the number of waiters notified.  ``cache=False`` is used
        for failed queries, so later instances retry instead of inheriting
        the failure forever.
        """
        waiters = self._waiters.pop(key, [])
        if cache:
            self._cache[key] = value
            self.publishes += 1
        for deliver in waiters:
            deliver(value)
        return len(waiters)

    def abandon(self, key: tuple) -> list[Callable[[object], None]]:
        """Drop a pending key without resolving it (issuer cancelled).

        Returns the stranded waiters so the caller can reissue the query
        on their behalf.
        """
        return self._waiters.pop(key, [])

    def __repr__(self) -> str:
        return (
            f"<ResultShare cached={len(self._cache)} pending={len(self._waiters)} "
            f"hits={self.hits} joins={self.joins}>"
        )
