"""Per-instance performance metrics.

The paper's three measures (section 5):

* **TimeInUnits** — response time of an instance in units of processing,
  used with the ideal (unbounded-resource) database where one unit takes
  exactly one tick of simulated time.
* **TimeInSeconds** — wall-clock response time on the bounded-resource
  simulated database (our simulated milliseconds / 1000).
* **Work** — total units of processing the database performed for the
  instance (speculative and unneeded work included).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from math import sqrt
from statistics import mean, pstdev
from typing import Iterable, Mapping, Sequence

__all__ = ["InstanceMetrics", "MetricsSummary", "summarize"]


@dataclass
class InstanceMetrics:
    """Counters for one decision-flow instance execution."""

    instance_id: str
    start_time: float
    finish_time: float | None = None
    work_units: int = 0
    queries_launched: int = 0
    queries_completed: int = 0
    queries_cancelled: int = 0
    queries_failed: int = 0
    shared_hits: int = 0
    shared_joins: int = 0
    speculative_launched: int = 0
    speculative_wasted_queries: int = 0
    speculative_wasted_units: int = 0
    synthesis_executed: int = 0
    unneeded_detected: int = 0
    unneeded_cost_avoided: int = 0
    attrs_value: int = 0
    attrs_disabled: int = 0
    attrs_unstable: int = 0

    @property
    def done(self) -> bool:
        return self.finish_time is not None

    @property
    def elapsed(self) -> float:
        """Response time in raw simulated time (units or ms, per database)."""
        if self.finish_time is None:
            raise ValueError(f"instance {self.instance_id} has not finished")
        return self.finish_time - self.start_time

    def time_in_units(self, unit_duration: float = 1.0) -> float:
        """TimeInUnits: response time divided by the ideal unit duration."""
        return self.elapsed / unit_duration

    def time_in_seconds(self, ms_per_time_unit: float = 1.0) -> float:
        """TimeInSeconds: response time when the clock is in milliseconds."""
        return self.elapsed * ms_per_time_unit / 1000.0


@dataclass
class MetricsSummary:
    """Aggregates over a set of finished instances.

    The ``query_cache_*`` and ``cohort_*`` counters are service-level
    (one :class:`~repro.simdb.database.QueryShareCache` and one cohort
    table per service/shard, not per instance): zero unless the feature
    is armed, filled in by ``DecisionService.summary()``, and summed —
    not averaged — by :meth:`merge` so sharded aggregations report fleet
    totals.
    """

    count: int
    mean_work: float
    std_work: float
    mean_elapsed: float
    std_elapsed: float
    mean_speculative_wasted_units: float
    mean_unneeded_detected: float
    total_work: int = 0
    mean_queries_launched: float = 0.0
    query_cache_hits: int = 0
    query_cache_misses: int = 0
    query_cache_coalesced: int = 0
    query_cache_l2_hits: int = 0
    query_cache_l2_misses: int = 0
    query_cache_l2_promotions: int = 0
    cohort_hits: int = 0
    cohort_splits: int = 0

    def mean_time_in_units(self, unit_duration: float = 1.0) -> float:
        return self.mean_elapsed / unit_duration

    def mean_time_in_seconds(self) -> float:
        return self.mean_elapsed / 1000.0

    def to_dict(self) -> dict:
        """A plain-dict (hence JSON-able) view of every field.

        The server's ``/metrics`` endpoint serves this; floats survive a
        JSON round trip exactly (Python serializes them via repr), so
        ``MetricsSummary.from_dict(json.loads(json.dumps(s.to_dict())))``
        equals ``s`` bit for bit — including the summed-not-averaged
        ``query_cache_*`` fleet totals of a sharded service.
        """
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping) -> "MetricsSummary":
        """Rebuild a summary from :meth:`to_dict` output (strict keys)."""
        field_names = {f.name for f in fields(cls)}
        unknown = set(data) - field_names
        if unknown:
            raise ValueError(
                f"unknown MetricsSummary field(s) {sorted(unknown)}; "
                f"expected a subset of {sorted(field_names)}"
            )
        return cls(**dict(data))

    @classmethod
    def empty(cls) -> "MetricsSummary":
        """The zeroed summary of no instances (``count == 0``)."""
        return cls(
            count=0,
            mean_work=0.0,
            std_work=0.0,
            mean_elapsed=0.0,
            std_elapsed=0.0,
            mean_speculative_wasted_units=0.0,
            mean_unneeded_detected=0.0,
        )

    @classmethod
    def merge(cls, *summaries: "MetricsSummary") -> "MetricsSummary":
        """Combine summaries of disjoint instance sets into one.

        Means are count-weighted; standard deviations pool the population
        variances.  Empty summaries (``count == 0``) contribute nothing,
        and merging none — or only empties — yields the same zeroed
        summary as ``summarize([], empty_ok=True)``.  A single non-empty
        input is returned as an exact copy, so one-shard aggregations
        reproduce their shard's summary bit for bit.
        """
        cache_totals = {
            name: sum(getattr(s, name) for s in summaries)
            for name in (
                "query_cache_hits",
                "query_cache_misses",
                "query_cache_coalesced",
                "query_cache_l2_hits",
                "query_cache_l2_misses",
                "query_cache_l2_promotions",
                "cohort_hits",
                "cohort_splits",
            )
        }
        live = [s for s in summaries if s.count > 0]
        if not live:
            return replace(cls.empty(), **cache_totals)
        if len(live) == 1:
            return replace(live[0], **cache_totals)
        count = sum(s.count for s in live)

        def weighted(attr: str) -> float:
            return sum(s.count * getattr(s, attr) for s in live) / count

        def pooled_std(mean_attr: str, std_attr: str, combined_mean: float) -> float:
            # E[x^2] per part is var + mean^2; recombine and re-center.
            second_moment = (
                sum(
                    s.count * (getattr(s, std_attr) ** 2 + getattr(s, mean_attr) ** 2)
                    for s in live
                )
                / count
            )
            return sqrt(max(0.0, second_moment - combined_mean**2))

        mean_work = weighted("mean_work")
        mean_elapsed = weighted("mean_elapsed")
        return cls(
            count=count,
            mean_work=mean_work,
            std_work=pooled_std("mean_work", "std_work", mean_work),
            mean_elapsed=mean_elapsed,
            std_elapsed=pooled_std("mean_elapsed", "std_elapsed", mean_elapsed),
            mean_speculative_wasted_units=weighted("mean_speculative_wasted_units"),
            mean_unneeded_detected=weighted("mean_unneeded_detected"),
            total_work=sum(s.total_work for s in live),
            mean_queries_launched=weighted("mean_queries_launched"),
            **cache_totals,
        )


def summarize(
    metrics: Iterable[InstanceMetrics], *, empty_ok: bool = False
) -> MetricsSummary:
    """Summarize finished instances.

    By default an empty (or entirely unfinished) input raises
    ``ValueError`` — a figure averaged over nothing is a bug in an
    experiment driver.  Pass ``empty_ok=True`` to get a well-defined
    zeroed summary (``count == 0``, all means ``0.0``) instead, which is
    what live services report before any instance completes.
    """
    finished: Sequence[InstanceMetrics] = [m for m in metrics if m.done]
    if not finished:
        if empty_ok:
            return MetricsSummary.empty()
        raise ValueError("no finished instances to summarize")
    works = [float(m.work_units) for m in finished]
    elapsed = [m.elapsed for m in finished]
    return MetricsSummary(
        count=len(finished),
        mean_work=mean(works),
        std_work=pstdev(works) if len(works) > 1 else 0.0,
        mean_elapsed=mean(elapsed),
        std_elapsed=pstdev(elapsed) if len(elapsed) > 1 else 0.0,
        mean_speculative_wasted_units=mean(
            float(m.speculative_wasted_units) for m in finished
        ),
        mean_unneeded_detected=mean(float(m.unneeded_detected) for m in finished),
        total_work=int(sum(works)),
        mean_queries_launched=mean(float(m.queries_launched) for m in finished),
    )
