"""Kleene three-valued logic used for eager evaluation of enabling conditions.

Partial evaluation of enabling conditions (section 4 of the paper) works on
three truth values: a condition whose inputs are not all stable may already
be known TRUE (some disjunct is true) or FALSE (some conjunct is false), or
still UNKNOWN.  This module provides the truth values and the Kleene
connectives over them.
"""

from __future__ import annotations

import enum

__all__ = ["Tri", "tri_and", "tri_or", "tri_not", "tri_all", "tri_any", "from_bool"]


class Tri(enum.Enum):
    """A Kleene truth value."""

    FALSE = 0
    UNKNOWN = 1
    TRUE = 2

    @property
    def known(self) -> bool:
        """True iff this value is decided (TRUE or FALSE)."""
        return self is not Tri.UNKNOWN

    def __repr__(self) -> str:
        return self.name


def from_bool(value: bool) -> Tri:
    """Lift a Python boolean into the three-valued domain."""
    return Tri.TRUE if value else Tri.FALSE


def tri_not(a: Tri) -> Tri:
    """Kleene negation."""
    if a is Tri.TRUE:
        return Tri.FALSE
    if a is Tri.FALSE:
        return Tri.TRUE
    return Tri.UNKNOWN


def tri_and(a: Tri, b: Tri) -> Tri:
    """Kleene conjunction: FALSE dominates, UNKNOWN absorbs TRUE."""
    if a is Tri.FALSE or b is Tri.FALSE:
        return Tri.FALSE
    if a is Tri.UNKNOWN or b is Tri.UNKNOWN:
        return Tri.UNKNOWN
    return Tri.TRUE


def tri_or(a: Tri, b: Tri) -> Tri:
    """Kleene disjunction: TRUE dominates, UNKNOWN absorbs FALSE."""
    if a is Tri.TRUE or b is Tri.TRUE:
        return Tri.TRUE
    if a is Tri.UNKNOWN or b is Tri.UNKNOWN:
        return Tri.UNKNOWN
    return Tri.FALSE


def tri_all(values) -> Tri:
    """Kleene conjunction over an iterable (TRUE on empty input)."""
    result = Tri.TRUE
    for value in values:
        result = tri_and(result, value)
        if result is Tri.FALSE:
            return Tri.FALSE
    return result


def tri_any(values) -> Tri:
    """Kleene disjunction over an iterable (FALSE on empty input)."""
    result = Tri.FALSE
    for value in values:
        result = tri_or(result, value)
        if result is Tri.TRUE:
            return Tri.TRUE
    return result
