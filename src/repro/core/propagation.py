"""The Propagation Algorithm: incremental detection of unneeded attributes.

Section 4 of the paper combines *forward propagation* (eagerly resolving
enabling conditions from the attribute values and DISABLED facts known so
far — handled by the Kleene evaluation in the instance runtime) with
*backward propagation*: inferring that an attribute's value is not needed
for the instance to complete, even though it is or may become enabled.

This module implements backward propagation as a monotone, counter-based
dead-edge analysis.  Every dependency edge (parent → child, data or
enabling) starts *alive* and dies exactly once, when its reason for
existing disappears:

* the child **stabilizes** (VALUE or DISABLED) — both kinds die;
* the child's **condition resolves** — its enabling in-edges die;
* the child's value is **computed** (speculatively) — its data in-edges die;
* the child becomes **unneeded** — all its in-edges die.

An attribute becomes *unneeded* when its last live out-edge dies (targets
carry one extra, external out-edge that dies on stabilization, so a live
target keeps its ancestors needed).  Each edge is touched a constant
number of times, so the total cost over an instance is linear in the size
of the decision flow — matching the paper's claim for its
Propagation_Algorithm.
"""

from __future__ import annotations

from repro.core.graph import EdgeKind
from repro.core.schema import DecisionFlowSchema

__all__ = ["EdgeTable", "edge_table", "NeededTracker"]


class EdgeTable:
    """Int-encoded dependency edges of a schema, shared by trackers.

    Both the name-keyed :class:`NeededTracker` (reference engine) and the
    index-based :class:`~repro.core.plan.CompiledPlan` (batched engine)
    run the same dead-edge analysis; this table is the common compiled
    form.  Edges are numbered in :meth:`DependencyGraph.edges` order; for
    every attribute index the table lists its incoming data and enabling
    edge ids together with the parent's attribute index.
    """

    __slots__ = (
        "names",
        "index",
        "edge_count",
        "data_in",
        "cond_in",
        "out_degree",
        "target_idx",
    )

    def __init__(self, schema: DecisionFlowSchema):
        graph = schema.graph
        self.names: tuple[str, ...] = graph.names
        self.index: dict[str, int] = {name: i for i, name in enumerate(self.names)}
        out_degree = [0] * len(self.names)
        data_in: list[tuple[tuple[int, int], ...]] = []
        cond_in: list[tuple[tuple[int, int], ...]] = []
        edge_id = 0
        for child in self.names:
            data: list[tuple[int, int]] = []
            for parent in graph.data_inputs[child]:
                parent_idx = self.index[parent]
                data.append((edge_id, parent_idx))
                out_degree[parent_idx] += 1
                edge_id += 1
            cond: list[tuple[int, int]] = []
            for parent in sorted(graph.cond_inputs[child]):
                parent_idx = self.index[parent]
                cond.append((edge_id, parent_idx))
                out_degree[parent_idx] += 1
                edge_id += 1
            data_in.append(tuple(data))
            cond_in.append(tuple(cond))
        self.edge_count = edge_id
        self.data_in = tuple(data_in)
        self.cond_in = tuple(cond_in)
        self.out_degree = out_degree
        self.target_idx = tuple(self.index[name] for name in schema.target_names)


def edge_table(schema: DecisionFlowSchema) -> EdgeTable:
    """The schema's :class:`EdgeTable`, cached on its dependency graph."""
    graph = schema.graph
    table = getattr(graph, "_edge_table", None)
    if table is None:
        table = EdgeTable(schema)
        graph._edge_table = table
    return table


class NeededTracker:
    """Tracks which attributes are still needed for instance completion."""

    __slots__ = ("_table", "_alive", "_live_out", "_external", "unneeded")

    def __init__(self, schema: DecisionFlowSchema):
        table = edge_table(schema)
        self._table = table
        self._alive = bytearray(b"\x01") * table.edge_count
        self._live_out = list(table.out_degree)
        self.unneeded: set[str] = set()

        # Each target has one external consumer (the caller of the flow),
        # which keeps the target and its ancestors needed until it is stable.
        self._external: set[int] = set(table.target_idx)
        for idx in self._external:
            self._live_out[idx] += 1

        # Attributes with no live path to a target are unneeded from the start.
        for idx in range(len(table.names)):
            if self._live_out[idx] == 0:
                self._mark_unneeded(idx)

    # -- event entry points ----------------------------------------------

    def on_stabilized(self, name: str) -> None:
        """The attribute reached VALUE or DISABLED: all its in-edges die."""
        idx = self._table.index[name]
        if idx in self._external:
            self._external.discard(idx)
            self._decrement(idx)
        self._kill_in_edges(idx, kinds=(EdgeKind.DATA, EdgeKind.ENABLING))

    def on_condition_resolved(self, name: str) -> None:
        """The enabling condition of *name* is decided: enabling in-edges die."""
        self._kill_in_edges(self._table.index[name], kinds=(EdgeKind.ENABLING,))

    def on_computed(self, name: str) -> None:
        """The value of *name* was computed (speculatively): data in-edges die."""
        self._kill_in_edges(self._table.index[name], kinds=(EdgeKind.DATA,))

    def is_unneeded(self, name: str) -> bool:
        return name in self.unneeded

    # -- internals ---------------------------------------------------------
    #
    # The batched engine keeps an index-based twin of this cascade
    # (BatchedInstance._kill_in_edges/_decrement_live) — change them
    # together.

    def _kill_in_edges(self, child: int, kinds: tuple[str, ...]) -> None:
        table = self._table
        if EdgeKind.DATA in kinds:
            for edge_id, parent in table.data_in[child]:
                if self._alive[edge_id]:
                    self._alive[edge_id] = 0
                    self._decrement(parent)
        if EdgeKind.ENABLING in kinds:
            for edge_id, parent in table.cond_in[child]:
                if self._alive[edge_id]:
                    self._alive[edge_id] = 0
                    self._decrement(parent)

    def _decrement(self, idx: int) -> None:
        self._live_out[idx] -= 1
        if self._live_out[idx] == 0:
            self._mark_unneeded(idx)

    def _mark_unneeded(self, idx: int) -> None:
        name = self._table.names[idx]
        if name in self.unneeded:
            return
        self.unneeded.add(name)
        # Nothing downstream needs *name*, so nothing *name* consumes is
        # needed on its account: cascade by killing its in-edges.
        self._kill_in_edges(idx, kinds=(EdgeKind.DATA, EdgeKind.ENABLING))

    def live_out_degree(self, name: str) -> int:
        """Remaining live out-edges (diagnostics and tests)."""
        return self._live_out[self._table.index[name]]
