"""The Propagation Algorithm: incremental detection of unneeded attributes.

Section 4 of the paper combines *forward propagation* (eagerly resolving
enabling conditions from the attribute values and DISABLED facts known so
far — handled by the Kleene evaluation in the instance runtime) with
*backward propagation*: inferring that an attribute's value is not needed
for the instance to complete, even though it is or may become enabled.

This module implements backward propagation as a monotone, counter-based
dead-edge analysis.  Every dependency edge (parent → child, data or
enabling) starts *alive* and dies exactly once, when its reason for
existing disappears:

* the child **stabilizes** (VALUE or DISABLED) — both kinds die;
* the child's **condition resolves** — its enabling in-edges die;
* the child's value is **computed** (speculatively) — its data in-edges die;
* the child becomes **unneeded** — all its in-edges die.

An attribute becomes *unneeded* when its last live out-edge dies (targets
carry one extra, external out-edge that dies on stabilization, so a live
target keeps its ancestors needed).  Each edge is touched a constant
number of times, so the total cost over an instance is linear in the size
of the decision flow — matching the paper's claim for its
Propagation_Algorithm.
"""

from __future__ import annotations

from repro.core.graph import DependencyGraph, EdgeKind
from repro.core.schema import DecisionFlowSchema

__all__ = ["NeededTracker"]


class NeededTracker:
    """Tracks which attributes are still needed for instance completion."""

    __slots__ = ("_alive", "_live_out", "_external", "unneeded", "_schema")

    def __init__(self, schema: DecisionFlowSchema):
        self._schema = schema
        graph: DependencyGraph = schema.graph
        self._alive: dict[tuple[str, str, str], bool] = {}
        self._live_out: dict[str, int] = {name: 0 for name in graph.names}
        self.unneeded: set[str] = set()

        for parent, child, kind in graph.edges():
            self._alive[(parent, child, kind)] = True
            self._live_out[parent] += 1

        # Each target has one external consumer (the caller of the flow),
        # which keeps the target and its ancestors needed until it is stable.
        self._external: set[str] = set(schema.target_names)
        for name in self._external:
            self._live_out[name] += 1

        # Attributes with no live path to a target are unneeded from the start.
        for name in graph.names:
            if self._live_out[name] == 0:
                self._mark_unneeded(name)

    # -- event entry points ----------------------------------------------

    def on_stabilized(self, name: str) -> None:
        """The attribute reached VALUE or DISABLED: all its in-edges die."""
        if name in self._external:
            self._external.discard(name)
            self._decrement(name)
        self._kill_in_edges(name, kinds=(EdgeKind.DATA, EdgeKind.ENABLING))

    def on_condition_resolved(self, name: str) -> None:
        """The enabling condition of *name* is decided: enabling in-edges die."""
        self._kill_in_edges(name, kinds=(EdgeKind.ENABLING,))

    def on_computed(self, name: str) -> None:
        """The value of *name* was computed (speculatively): data in-edges die."""
        self._kill_in_edges(name, kinds=(EdgeKind.DATA,))

    def is_unneeded(self, name: str) -> bool:
        return name in self.unneeded

    # -- internals ---------------------------------------------------------

    def _kill_in_edges(self, child: str, kinds: tuple[str, ...]) -> None:
        graph = self._schema.graph
        if EdgeKind.DATA in kinds:
            for parent in graph.data_inputs[child]:
                self._kill(parent, child, EdgeKind.DATA)
        if EdgeKind.ENABLING in kinds:
            for parent in graph.cond_inputs[child]:
                self._kill(parent, child, EdgeKind.ENABLING)

    def _kill(self, parent: str, child: str, kind: str) -> None:
        key = (parent, child, kind)
        if self._alive.get(key):
            self._alive[key] = False
            self._decrement(parent)

    def _decrement(self, name: str) -> None:
        self._live_out[name] -= 1
        if self._live_out[name] == 0:
            self._mark_unneeded(name)

    def _mark_unneeded(self, name: str) -> None:
        if name in self.unneeded:
            return
        self.unneeded.add(name)
        # Nothing downstream needs *name*, so nothing *name* consumes is
        # needed on its account: cascade by killing its in-edges.
        self._kill_in_edges(name, kinds=(EdgeKind.DATA, EdgeKind.ENABLING))

    def live_out_degree(self, name: str) -> int:
        """Remaining live out-edges (diagnostics and tests)."""
        return self._live_out[name]
