"""Runtime state of a single decision-flow instance.

The instance runtime owns the attribute cells (state automaton), the
data-input pending counters, and the condition-resolution machinery.  It
implements the *evaluation phase* of the paper's execution algorithm: each
time new information arrives (instance start, a query result), the runtime
propagates it to a fixpoint —

* stabilized attributes decrement their data consumers' pending counts
  (→ READY) and trigger re-evaluation of enabling conditions that read
  them;
* under option **P** conditions are evaluated eagerly (Kleene/partial),
  so a conjunction falsifies as soon as one conjunct does (forward
  propagation), while the :class:`~repro.core.propagation.NeededTracker`
  performs backward propagation of unneededness;
* under option **N** (naive) a condition is evaluated only after all of
  its inputs are stable;
* eligible synthesis tasks execute inline (zero simulated time).

Scheduling (what query to launch next) is *not* done here — see
:mod:`repro.core.scheduler` and :mod:`repro.core.engine`.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Mapping

from repro.core.conditions import UNRESOLVED
from repro.core.metrics import InstanceMetrics
from repro.core.propagation import NeededTracker
from repro.core.schema import DecisionFlowSchema
from repro.core.state import AttributeCell, AttributeState, Enablement, Readiness
from repro.core.strategy import Strategy
from repro.core.tri import Tri
from repro.errors import ExecutionError

__all__ = ["InstanceRuntime"]


class InstanceRuntime:
    """All mutable state of one running decision-flow instance."""

    __slots__ = (
        "schema",
        "strategy",
        "instance_id",
        "done",
        "metrics",
        "cells",
        "pending_inputs",
        "needed",
        "launched",
        "inflight",
        "speculative_launch",
        "_stable_queue",
        "_started",
    )

    def __init__(
        self,
        schema: DecisionFlowSchema,
        strategy: Strategy,
        instance_id: str,
        source_values: Mapping[str, object],
        start_time: float,
    ):
        self.schema = schema
        self.strategy = strategy
        self.instance_id = instance_id
        self.done = False
        self.metrics = InstanceMetrics(instance_id=instance_id, start_time=start_time)

        missing = set(schema.source_names) - set(source_values)
        if missing:
            raise ExecutionError(f"missing source values: {sorted(missing)}")

        self.cells: dict[str, AttributeCell] = {}
        for name in schema.names:
            if schema[name].is_source:
                self.cells[name] = AttributeCell.source(name, source_values[name])
            else:
                self.cells[name] = AttributeCell(name)

        graph = schema.graph
        self.pending_inputs: dict[str, int] = {}
        for name in schema.non_source_names:
            self.pending_inputs[name] = sum(
                1 for parent in graph.data_inputs[name] if not self.cells[parent].stable
            )

        self.needed: NeededTracker | None = (
            NeededTracker(schema) if strategy.propagation else None
        )

        #: query attributes dispatched to the database (never re-launched)
        self.launched: set[str] = set()
        #: in-flight query handles by attribute name
        self.inflight: dict[str, object] = {}
        #: attributes launched while their condition was still UNKNOWN
        self.speculative_launch: set[str] = set()

        self._stable_queue: deque[str] = deque()
        self._started = False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Initial evaluation phase: sources are stable, resolve what follows."""
        if self._started:
            raise ExecutionError(f"instance {self.instance_id} already started")
        self._started = True
        for name in self.schema.non_source_names:
            if self.pending_inputs[name] == 0:
                self.cells[name].mark_ready()
        for name in self.schema.non_source_names:
            self._try_resolve_condition(name)
        self.drain()

    def targets_stable(self) -> bool:
        return all(self.cells[t].stable for t in self.schema.target_names)

    # -- resolvers ----------------------------------------------------------

    def resolve_stable(self, name: str) -> object:
        """Resolver over *stable* attribute values (⊥ for DISABLED)."""
        cell = self.cells[name]
        return cell.value if cell.stable else UNRESOLVED

    def stable_values(self, names) -> dict[str, object]:
        values: dict[str, object] = {}
        for name in names:
            cell = self.cells[name]
            if not cell.stable:
                raise ExecutionError(
                    f"{self.instance_id}: input {name!r} not stable (state {cell.state})"
                )
            values[name] = cell.value
        return values

    # -- evaluation phase ----------------------------------------------------

    def drain(self) -> None:
        """Propagate stability/condition/synthesis consequences to a fixpoint."""
        while True:
            while self._stable_queue:
                self._on_stabilized(self._stable_queue.popleft())
            if not self._run_inline_synthesis():
                break

    def _on_stabilized(self, name: str) -> None:
        if self.needed is not None:
            self.needed.on_stabilized(name)
        graph = self.schema.graph
        for consumer in graph.data_consumers[name]:
            self.pending_inputs[consumer] -= 1
            if (
                self.pending_inputs[consumer] == 0
                and self.cells[consumer].readiness is Readiness.PENDING
            ):
                self.cells[consumer].mark_ready()
        for consumer in graph.enabling_consumers[name]:
            self._try_resolve_condition(consumer)

    def _try_resolve_condition(self, name: str) -> None:
        cell = self.cells[name]
        if cell.enablement is not Enablement.UNKNOWN:
            return
        condition = self.schema[name].condition
        if self.strategy.propagation:
            result = condition.eval_tri(self.resolve_stable)
            if not result.known:
                return
            truth = result is Tri.TRUE
        else:
            if any(self.resolve_stable(ref) is UNRESOLVED for ref in condition.refs()):
                return
            truth = condition.eval_bool(self.resolve_stable)
        self._resolve_condition(name, truth)

    def _resolve_condition(self, name: str, truth: bool) -> None:
        cell = self.cells[name]
        was_computed = cell.readiness is Readiness.COMPUTED
        state = cell.mark_enabled() if truth else cell.mark_disabled()
        if not truth and was_computed and name in self.speculative_launch:
            # The speculative query already completed; its result is now
            # discarded — the full cost was wasted work.
            self.metrics.speculative_wasted_queries += 1
            self.metrics.speculative_wasted_units += self.schema[name].cost
        if self.needed is not None:
            self.needed.on_condition_resolved(name)
        if state.stable:
            # DISABLED, or COMPUTED promoted to VALUE by a true condition.
            self._stable_queue.append(name)

    def set_computed(self, name: str, value: object) -> AttributeState:
        """Record a computed task value; returns the new derived state."""
        cell = self.cells[name]
        state = cell.set_computed(value)
        if state is AttributeState.VALUE:
            self._stable_queue.append(name)
        elif state is AttributeState.COMPUTED and self.needed is not None:
            self.needed.on_computed(name)
        return state

    def _run_inline_synthesis(self) -> bool:
        """Execute every currently eligible synthesis task; True if any ran."""
        ran = False
        for name in self.schema.non_source_names:
            spec = self.schema[name]
            if spec.task is None or spec.task.is_query:
                continue
            if not self._is_executable(name):
                continue
            values = self.stable_values(spec.task.inputs)
            self.metrics.synthesis_executed += 1
            self.set_computed(name, spec.task.compute(values))
            ran = True
        return ran

    def _is_executable(self, name: str) -> bool:
        """Shared eligibility test (prequalifier rules, S/C and P options)."""
        cell = self.cells[name]
        if cell.readiness is not Readiness.READY:
            return False
        if cell.enablement is Enablement.DISABLED:
            return False
        if cell.enablement is Enablement.UNKNOWN and not self.strategy.speculative:
            return False
        if self.needed is not None and self.needed.is_unneeded(name):
            return False
        return True

    # -- query results --------------------------------------------------------

    def apply_query_result(self, name: str, value: object) -> bool:
        """Install a completed query's value.  Returns False if discarded
        (the attribute was disabled while the query was in flight)."""
        cell = self.cells[name]
        if cell.enablement is Enablement.DISABLED:
            if cell.readiness is Readiness.READY:
                cell.set_computed(value)  # retained as diagnostic only
            return False
        self.set_computed(name, value)
        return True

    # -- finalization -----------------------------------------------------------

    def finalize_metrics(self) -> None:
        """Fill end-of-instance attribute counters into the metrics record."""
        value_count = disabled_count = unstable = 0
        for name in self.schema.non_source_names:
            state = self.cells[name].state
            if state is AttributeState.VALUE:
                value_count += 1
            elif state is AttributeState.DISABLED:
                disabled_count += 1
            else:
                unstable += 1
        self.metrics.attrs_value = value_count
        self.metrics.attrs_disabled = disabled_count
        self.metrics.attrs_unstable = unstable
        if self.needed is not None:
            skipped = [
                name
                for name in self.needed.unneeded
                if not self.cells[name].stable
            ]
            self.metrics.unneeded_detected = len(skipped)
            self.metrics.unneeded_cost_avoided = sum(
                self.schema[name].cost
                for name in skipped
                if name not in self.launched
            )

    def state_map(self) -> dict[str, AttributeState]:
        return {name: cell.state for name, cell in self.cells.items()}

    def value_map(self) -> dict[str, object]:
        return {
            name: cell.value for name, cell in self.cells.items() if cell.stable
        }

    def __repr__(self) -> str:
        flag = " done" if self.done else ""
        return f"<InstanceRuntime {self.instance_id}{flag}>"
