"""Attribute states and the runtime state automaton (Figure 3 of the paper).

An attribute's runtime state is the product of two independent dimensions:

* **readiness** — have the data inputs of its task stabilized, and has the
  task's value been computed?  PENDING → READY → COMPUTED, one way.
* **enablement** — what is known about its enabling condition?
  UNKNOWN → ENABLED or UNKNOWN → DISABLED, one way.

The seven states of the paper's finite-state automaton are derived from the
pair, which makes illegal histories unrepresentable: the paper's partial
order (e.g. READY ⊑ COMPUTED) falls out of the one-way dimension moves.

=============  ==========  ===========
derived state  readiness   enablement
=============  ==========  ===========
UNINITIALIZED  PENDING     UNKNOWN
READY          READY       UNKNOWN
COMPUTED       COMPUTED    UNKNOWN
ENABLED        PENDING     ENABLED
READY_ENABLED  READY       ENABLED
VALUE          COMPUTED    ENABLED
DISABLED       any         DISABLED
=============  ==========  ===========

VALUE and DISABLED are the terminal ("stable") states.  A DISABLED
attribute takes the null value ⊥ regardless of any speculatively computed
value.
"""

from __future__ import annotations

import enum

from repro.errors import IllegalTransitionError
from repro.nulls import NULL

__all__ = [
    "Readiness",
    "Enablement",
    "AttributeState",
    "derive_state",
    "legal_successors",
    "AttributeCell",
]


class Readiness(enum.Enum):
    PENDING = 0
    READY = 1
    COMPUTED = 2


class Enablement(enum.Enum):
    UNKNOWN = 0
    ENABLED = 1
    DISABLED = 2


class AttributeState(enum.Enum):
    """The seven states of the paper's Figure-3 automaton."""

    UNINITIALIZED = "UNINITIALIZED"
    READY = "READY"
    COMPUTED = "COMPUTED"
    ENABLED = "ENABLED"
    READY_ENABLED = "READY+ENABLED"
    VALUE = "VALUE"
    DISABLED = "DISABLED"

    @property
    def stable(self) -> bool:
        """Terminal states: the attribute's value will never change again."""
        return self in (AttributeState.VALUE, AttributeState.DISABLED)

    def __repr__(self) -> str:
        return self.value


def derive_state(readiness: Readiness, enablement: Enablement) -> AttributeState:
    """Map a (readiness, enablement) pair to the derived Figure-3 state."""
    if enablement is Enablement.DISABLED:
        return AttributeState.DISABLED
    if enablement is Enablement.ENABLED:
        return {
            Readiness.PENDING: AttributeState.ENABLED,
            Readiness.READY: AttributeState.READY_ENABLED,
            Readiness.COMPUTED: AttributeState.VALUE,
        }[readiness]
    return {
        Readiness.PENDING: AttributeState.UNINITIALIZED,
        Readiness.READY: AttributeState.READY,
        Readiness.COMPUTED: AttributeState.COMPUTED,
    }[readiness]


def _reachable_pairs(readiness: Readiness, enablement: Enablement):
    """Pairs reachable from the given pair in one dimension step."""
    if readiness is Readiness.PENDING:
        yield Readiness.READY, enablement
    elif readiness is Readiness.READY:
        yield Readiness.COMPUTED, enablement
    if enablement is Enablement.UNKNOWN:
        yield readiness, Enablement.ENABLED
        yield readiness, Enablement.DISABLED


def legal_successors(state: AttributeState) -> frozenset[AttributeState]:
    """Derived states reachable from *state* in one or more dimension moves.

    This is the transition relation of the paper's automaton (Fig. 3),
    closed under multi-step moves that may look atomic to an observer
    (e.g. an UNINITIALIZED attribute whose condition resolves in the same
    event that stabilizes its last input appears to jump straight to
    READY+ENABLED).
    """
    pairs = {
        (readiness, enablement)
        for readiness in Readiness
        for enablement in Enablement
        if derive_state(readiness, enablement) is state
    }
    seen: set[tuple[Readiness, Enablement]] = set()
    frontier = set(pairs)
    while frontier:
        current = frontier.pop()
        for nxt in _reachable_pairs(*current):
            if nxt not in seen:
                seen.add(nxt)
                frontier.add(nxt)
    return frozenset(derive_state(r, e) for r, e in seen) - {state}


class AttributeCell:
    """Mutable runtime record of a single attribute in one flow instance.

    The cell enforces the automaton: each mutator performs exactly one
    one-way dimension move and raises :class:`IllegalTransitionError`
    otherwise.  Values: when the state is VALUE the cell holds the task's
    value; when DISABLED the observable value is ⊥ (a speculatively
    computed value, if any, is retained for diagnostics only).
    """

    __slots__ = ("name", "readiness", "enablement", "_value", "is_source")

    def __init__(self, name: str):
        self.name = name
        self.readiness = Readiness.PENDING
        self.enablement = Enablement.UNKNOWN
        self._value: object = None
        self.is_source = False

    @classmethod
    def source(cls, name: str, value: object) -> "AttributeCell":
        """A source attribute: starts stable in state VALUE."""
        cell = cls(name)
        cell.readiness = Readiness.COMPUTED
        cell.enablement = Enablement.ENABLED
        cell._value = value
        cell.is_source = True
        return cell

    @property
    def state(self) -> AttributeState:
        return derive_state(self.readiness, self.enablement)

    @property
    def stable(self) -> bool:
        return self.state.stable

    @property
    def value(self) -> object:
        """Observable value: task value if VALUE, ⊥ if DISABLED.

        Raises ValueError in non-stable states — callers must check
        :attr:`stable` first (this catches engine bugs early).
        """
        state = self.state
        if state is AttributeState.VALUE:
            return self._value
        if state is AttributeState.DISABLED:
            return NULL
        raise ValueError(f"attribute {self.name!r} is not stable (state {state})")

    @property
    def speculative_value(self) -> object:
        """The computed value regardless of enablement (diagnostics only)."""
        if self.readiness is not Readiness.COMPUTED:
            raise ValueError(f"attribute {self.name!r} has no computed value")
        return self._value

    def mark_ready(self) -> AttributeState:
        """All data inputs stabilized (PENDING → READY)."""
        if self.readiness is not Readiness.PENDING:
            raise IllegalTransitionError(
                f"{self.name}: mark_ready in readiness {self.readiness}"
            )
        self.readiness = Readiness.READY
        return self.state

    def set_computed(self, value: object) -> AttributeState:
        """The task produced a value (READY → COMPUTED)."""
        if self.readiness is not Readiness.READY:
            raise IllegalTransitionError(
                f"{self.name}: set_computed in readiness {self.readiness}"
            )
        self.readiness = Readiness.COMPUTED
        self._value = value
        return self.state

    def mark_enabled(self) -> AttributeState:
        """The enabling condition resolved to true (UNKNOWN → ENABLED)."""
        if self.enablement is not Enablement.UNKNOWN:
            raise IllegalTransitionError(
                f"{self.name}: mark_enabled in enablement {self.enablement}"
            )
        self.enablement = Enablement.ENABLED
        return self.state

    def mark_disabled(self) -> AttributeState:
        """The enabling condition resolved to false (UNKNOWN → DISABLED)."""
        if self.enablement is not Enablement.UNKNOWN:
            raise IllegalTransitionError(
                f"{self.name}: mark_disabled in enablement {self.enablement}"
            )
        self.enablement = Enablement.DISABLED
        return self.state

    def __repr__(self) -> str:
        return f"<AttributeCell {self.name} {self.state.value}>"
