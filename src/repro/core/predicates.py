"""Leaf predicates for enabling conditions.

Predicates follow SQL-like null semantics: any comparison whose operand is
the null value ⊥ (a DISABLED attribute) evaluates to false; only the
explicit :class:`IsNull` test is true on ⊥.  This matches the paper's
requirement that tasks and conditions cope with ⊥ inputs — e.g. the
condition ``give_promo(s)? = true`` of Figure 1 is false when
``give_promo(s)?`` is disabled.
"""

from __future__ import annotations

import enum
import operator
from typing import Callable, Mapping, Sequence

from repro.core.conditions import Condition, Resolver, UNRESOLVED
from repro.core.tri import Tri, from_bool
from repro.nulls import NULL, ExceptionValue

__all__ = ["Op", "AttrRef", "Comparison", "IsNull", "IsException", "UserPredicate", "attr"]


class Op(enum.Enum):
    """Comparison operators usable in :class:`Comparison` predicates."""

    EQ = "="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    IN = "in"

    @property
    def fn(self) -> Callable[[object, object], bool]:
        return _OP_FUNCTIONS[self]


_OP_FUNCTIONS: dict[Op, Callable[[object, object], bool]] = {
    Op.EQ: operator.eq,
    Op.NE: operator.ne,
    Op.LT: operator.lt,
    Op.LE: operator.le,
    Op.GT: operator.gt,
    Op.GE: operator.ge,
    Op.IN: lambda a, b: a in b,
}


class AttrRef:
    """Reference to another attribute used as the right operand of a comparison."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, AttrRef) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("AttrRef", self.name))

    def __repr__(self) -> str:
        return f"@{self.name}"


def attr(name: str) -> AttrRef:
    """Convenience constructor for :class:`AttrRef`."""
    return AttrRef(name)


class Comparison(Condition):
    """``left <op> right`` where *left* is an attribute and *right* a constant
    or another attribute.

    UNKNOWN while any referenced attribute is unresolved; FALSE when any
    resolved operand is ⊥.
    """

    __slots__ = ("left", "op", "right")

    def __init__(self, left: str, op: Op, right: object):
        self.left = left
        self.op = op
        self.right = right

    def refs(self) -> frozenset[str]:
        if isinstance(self.right, AttrRef):
            return frozenset((self.left, self.right.name))
        return frozenset((self.left,))

    def eval_tri(self, resolve: Resolver) -> Tri:
        left_value = resolve(self.left)
        if left_value is UNRESOLVED:
            return Tri.UNKNOWN
        if isinstance(self.right, AttrRef):
            right_value = resolve(self.right.name)
            if right_value is UNRESOLVED:
                return Tri.UNKNOWN
        else:
            right_value = self.right
        if left_value is NULL or right_value is NULL:
            return Tri.FALSE
        if isinstance(left_value, ExceptionValue) or isinstance(right_value, ExceptionValue):
            # Comparisons over failed evaluations are false, like ⊥; use
            # IsException to branch on outages explicitly.
            return Tri.FALSE
        return from_bool(self.op.fn(left_value, right_value))

    def _key(self) -> tuple:
        right = self.right
        # Unhashable constant operands (e.g. lists for IN) are keyed by repr.
        try:
            hash(right)
        except TypeError:
            right = repr(right)
        return (self.left, self.op, right)

    def __repr__(self) -> str:
        return f"({self.left} {self.op.value} {self.right!r})"


class IsNull(Condition):
    """True iff the referenced attribute is DISABLED (its value is ⊥)."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def refs(self) -> frozenset[str]:
        return frozenset((self.name,))

    def eval_tri(self, resolve: Resolver) -> Tri:
        value = resolve(self.name)
        if value is UNRESOLVED:
            return Tri.UNKNOWN
        return from_bool(value is NULL)

    def _key(self) -> tuple:
        return (self.name,)

    def __repr__(self) -> str:
        return f"({self.name} is null)"


class IsException(Condition):
    """True iff the referenced attribute's evaluation failed (EXC value)."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def refs(self) -> frozenset[str]:
        return frozenset((self.name,))

    def eval_tri(self, resolve: Resolver) -> Tri:
        value = resolve(self.name)
        if value is UNRESOLVED:
            return Tri.UNKNOWN
        return from_bool(isinstance(value, ExceptionValue))

    def _key(self) -> tuple:
        return (self.name,)

    def __repr__(self) -> str:
        return f"({self.name} is exception)"


class UserPredicate(Condition):
    """Arbitrary boolean function over a fixed set of attributes.

    The function receives a mapping from attribute name to stable value
    (possibly ⊥) and must return a boolean.  It is evaluated only once all
    referenced attributes are stable, so it contributes nothing to eager
    partial evaluation — use comparisons and null-tests when early
    resolution matters.
    """

    __slots__ = ("name", "_refs", "fn")

    def __init__(self, name: str, refs: Sequence[str], fn: Callable[[Mapping[str, object]], bool]):
        self.name = name
        self._refs = tuple(refs)
        self.fn = fn

    def refs(self) -> frozenset[str]:
        return frozenset(self._refs)

    def eval_tri(self, resolve: Resolver) -> Tri:
        values: dict[str, object] = {}
        for ref in self._refs:
            value = resolve(ref)
            if value is UNRESOLVED:
                return Tri.UNKNOWN
            values[ref] = value
        return from_bool(bool(self.fn(values)))

    def _key(self) -> tuple:
        return (self.name, self._refs, id(self.fn))

    def __repr__(self) -> str:
        return f"{self.name}({', '.join(self._refs)})"
