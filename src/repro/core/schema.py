"""Flattened decision-flow schemas (the 4-tuple ⟨A, Source, Target, E⟩).

A flattened schema is the execution-level representation of a decision flow
(section 2): a set of attributes, the subsets of source and target
attributes, and an enabling condition per non-source attribute.  The schema
validates well-formedness on construction: unique names, every non-source
attribute has exactly one producing task, all references resolve, and the
dependency graph is acyclic.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.core.attribute import Attribute
from repro.core.conditions import Literal
from repro.core.graph import DependencyGraph
from repro.errors import SchemaError

__all__ = ["DecisionFlowSchema"]


class DecisionFlowSchema:
    """A validated, flattened decision-flow schema.

    Iteration and lookups are by attribute name; declaration order is
    preserved (and used for deterministic tie-breaking downstream).
    """

    def __init__(self, attributes: Iterable[Attribute], name: str = "decision-flow"):
        self.name = name
        self._attributes: dict[str, Attribute] = {}
        for spec in attributes:
            if spec.name in self._attributes:
                raise SchemaError(f"duplicate attribute name {spec.name!r}")
            self._attributes[spec.name] = spec
        if not self._attributes:
            raise SchemaError("schema must declare at least one attribute")

        self.source_names: tuple[str, ...] = tuple(
            n for n, a in self._attributes.items() if a.is_source
        )
        self.target_names: tuple[str, ...] = tuple(
            n for n, a in self._attributes.items() if a.is_target
        )
        self._validate_roles()
        self.graph = DependencyGraph(self._attributes)

    def _validate_roles(self) -> None:
        for name, spec in self._attributes.items():
            if spec.is_source:
                if spec.is_target:
                    raise SchemaError(
                        f"attribute {name!r} cannot be both source and target"
                    )
                if not (isinstance(spec.condition, Literal) and spec.condition.value):
                    raise SchemaError(
                        f"source attribute {name!r} must have the literal TRUE condition"
                    )
            elif spec.task is None:
                raise SchemaError(f"non-source attribute {name!r} has no task")
        if not self.target_names:
            raise SchemaError("schema must declare at least one target attribute")

    # -- mapping-style access -------------------------------------------------

    def __getitem__(self, name: str) -> Attribute:
        return self._attributes[name]

    def __contains__(self, name: str) -> bool:
        return name in self._attributes

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes.values())

    def __len__(self) -> int:
        return len(self._attributes)

    @property
    def attributes(self) -> Mapping[str, Attribute]:
        return self._attributes

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._attributes)

    @property
    def non_source_names(self) -> tuple[str, ...]:
        return tuple(n for n in self._attributes if not self._attributes[n].is_source)

    @property
    def internal_names(self) -> tuple[str, ...]:
        """Attributes that are neither source nor target."""
        return tuple(
            n
            for n, a in self._attributes.items()
            if not a.is_source and not a.is_target
        )

    # -- aggregates -----------------------------------------------------------

    def total_query_cost(self) -> int:
        """Sum of query costs over all attributes (upper bound on Work)."""
        return sum(spec.cost for spec in self)

    def query_names(self) -> tuple[str, ...]:
        return tuple(n for n, a in self._attributes.items() if a.task is not None and a.task.is_query)

    def describe(self) -> str:
        """Human-readable summary (for examples and docs)."""
        lines = [
            f"schema {self.name!r}: {len(self)} attributes "
            f"({len(self.source_names)} source, {len(self.internal_names)} internal, "
            f"{len(self.target_names)} target)",
            f"  queries: {len(self.query_names())}, total cost {self.total_query_cost()} units, "
            f"diameter {self.graph.diameter()} edges",
        ]
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"<DecisionFlowSchema {self.name!r} |A|={len(self)}>"
