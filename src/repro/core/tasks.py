"""Tasks: the units of computation that produce attribute values.

The paper distinguishes *foreign tasks* (external to the engine — here,
database queries with a cost in units of processing) and *synthesis tasks*
(user-defined functions or business-rule sets evaluated inside the engine;
see :mod:`repro.core.rules`).  As in the paper, each task produces exactly
one attribute value.

Tasks must be able to execute even when some inputs hold the null value ⊥
(their producing attribute was DISABLED); the supplied function receives
⊥ like any other value.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

__all__ = ["Task", "SynthesisTask", "QueryTask", "constant", "query", "synthesize"]


class Task:
    """Base class for tasks.  ``inputs`` are the data-input attribute names."""

    __slots__ = ("name", "inputs")

    def __init__(self, name: str, inputs: Sequence[str]):
        self.name = name
        self.inputs = tuple(inputs)
        if len(set(self.inputs)) != len(self.inputs):
            raise ValueError(f"task {name!r} has duplicate inputs: {self.inputs}")

    def compute(self, values: Mapping[str, object]) -> object:
        """Produce the attribute value from stable input values."""
        raise NotImplementedError

    @property
    def is_query(self) -> bool:
        return isinstance(self, QueryTask)


class SynthesisTask(Task):
    """An in-engine task: a user-defined function over its inputs.

    Synthesis tasks consume no database resources; the engine executes
    them inline in zero simulated time as soon as they are eligible.
    """

    __slots__ = ("fn",)

    def __init__(self, name: str, inputs: Sequence[str], fn: Callable[[Mapping[str, object]], object]):
        super().__init__(name, inputs)
        self.fn = fn

    def compute(self, values: Mapping[str, object]) -> object:
        return self.fn({name: values[name] for name in self.inputs})

    def __repr__(self) -> str:
        return f"<SynthesisTask {self.name}({', '.join(self.inputs)})>"


class QueryTask(Task):
    """A foreign task: a database query with a cost in units of processing.

    ``fn`` models the query's result as a function of the (stable) input
    values — deterministic per the paper's fixed-data assumption, which is
    what makes speculative execution safe.  ``cost`` is the number of units
    of processing the database performs to answer the query (Table 1:
    ``module_cost``, uniform in [1, 5] for generated workloads).
    """

    __slots__ = ("fn", "cost", "description")

    def __init__(
        self,
        name: str,
        inputs: Sequence[str],
        fn: Callable[[Mapping[str, object]], object],
        cost: int,
        description: str = "",
    ):
        super().__init__(name, inputs)
        if cost < 1:
            raise ValueError(f"query task {name!r} must have cost >= 1, got {cost}")
        self.fn = fn
        self.cost = int(cost)
        self.description = description

    def compute(self, values: Mapping[str, object]) -> object:
        return self.fn({name: values[name] for name in self.inputs})

    def __repr__(self) -> str:
        return f"<QueryTask {self.name} cost={self.cost}>"


def constant(value: object) -> Callable[[Mapping[str, object]], object]:
    """A task function returning a fixed value regardless of inputs.

    The value is exposed as ``fn.constant_value`` so constant tasks are
    introspectable (the schema serializer uses this).
    """

    def fn(values: Mapping[str, object]) -> object:
        return value

    fn.constant_value = value  # type: ignore[attr-defined]
    return fn


def query(
    name: str,
    inputs: Sequence[str] = (),
    cost: int = 1,
    fn: Callable[[Mapping[str, object]], object] | None = None,
    value: object = None,
    description: str = "",
) -> QueryTask:
    """Convenience constructor: pass either ``fn`` or a constant ``value``."""
    if fn is None:
        fn = constant(value)
    return QueryTask(name, inputs, fn, cost, description)


def synthesize(
    name: str,
    inputs: Sequence[str],
    fn: Callable[[Mapping[str, object]], object],
) -> SynthesisTask:
    """Convenience constructor for :class:`SynthesisTask`."""
    return SynthesisTask(name, inputs, fn)
